//! Minimal in-tree `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` subset. Handles exactly the shapes this workspace uses:
//! non-generic structs (named, tuple/newtype, unit) and non-generic enums
//! (unit, newtype, tuple, and struct variants), with serde's default
//! externally-tagged representation. `#[serde(...)]` attributes are not
//! supported (none appear in this workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (Value-tree based, see the vendored `serde`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (Value-tree based, see the vendored `serde`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

enum Fields {
    /// `struct S;`
    Unit,
    /// `struct S(T, ...)` — the count of unnamed fields.
    Tuple(usize),
    /// `struct S { a: T, ... }` — the field names in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Parsing (no syn available offline; the token shapes are simple because the
// workspace has no generic or attributed derive targets)
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_top_level_items(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body, found {other}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("derive target must be a struct or enum, found `{other}`"),
    }
}

/// Advances past leading attributes (`#[...]`, including doc comments) and a
/// visibility qualifier (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the `[...]` group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `(crate)` etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Splits a group's stream at top-level commas (groups are atomic tokens, so
/// nested commas never appear).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' => chunks.push(Vec::new()),
            _ => chunks.last_mut().expect("nonempty").push(tt),
        }
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn count_top_level_items(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            match &chunk[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected field name, found {other}"),
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            let name = match &chunk[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected variant name, found {other}"),
            };
            i += 1;
            let fields = match chunk.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_top_level_items(g.stream()))
                }
                // Bare variant, possibly with `= discriminant` (ignored).
                _ => Fields::Unit,
            };
            Variant { name, fields }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Named(names) => {
                    let items: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!("({f:?}.to_string(), ::serde::Serialize::serialize(&self.{f}))")
                        })
                        .collect();
                    format!("::serde::Value::Object(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Serialize::serialize(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), ::serde::Serialize::serialize({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Object(vec![{}]))]),",
                                fields.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("{{ let _ = __v; Ok({name}) }}"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::deserialize(__v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                        .collect();
                    format!(
                        "{{ let __items = ::serde::expect_array(__v, {name:?}, {n})?;\n\
                            Ok({name}({})) }}",
                        items.join(", ")
                    )
                }
                Fields::Named(names) => {
                    let items: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::deserialize(::serde::field(__v, {name:?}, {f:?})?)?,"
                            )
                        })
                        .collect();
                    format!("Ok({name} {{\n{}\n}})", items.join("\n"))
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("{vn:?} => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!("{vn:?} => Ok({name}::{vn}),"),
                        Fields::Tuple(1) => format!(
                            "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::deserialize(__inner)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize(&__items[{i}])?")
                                })
                                .collect();
                            format!(
                                "{vn:?} => {{ let __items = ::serde::expect_array(__inner, {name:?}, {n})?;\n\
                                    Ok({name}::{vn}({})) }}",
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deserialize(::serde::field(__inner, {name:?}, {f:?})?)?,"
                                    )
                                })
                                .collect();
                            format!(
                                "{vn:?} => Ok({name}::{vn} {{\n{}\n}}),",
                                items.join("\n")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit}\n\
                                 __other => Err(::serde::DeError::unknown_variant({name:?}, __other)),\n\
                             }},\n\
                             ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__fields[0];\n\
                                 let _ = __inner;\n\
                                 match __tag.as_str() {{\n\
                                     {tagged}\n\
                                     __other => Err(::serde::DeError::unknown_variant({name:?}, __other)),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(::serde::DeError::type_mismatch({name:?}, \"enum tag\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    }
}
