//! Minimal in-tree `proptest` subset: deterministic strategy-based random
//! testing with the `proptest!` macro, `prop_assert*`/`prop_assume!`,
//! `prop_oneof!`, range/tuple/collection strategies, and `any::<T>()`.
//! Failing inputs are reported in the panic message; there is no shrinking.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Case execution: configuration, RNG, and the case loop.

    /// Run-count configuration, set via
    /// `#![proptest_config(ProptestConfig::with_cases(n))]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the whole test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; another case is drawn.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic generator (splitmix64) seeded from the test name, so
    /// every run of a given test explores the same sequence.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary byte string (FNV-1a).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `0..n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            // Rejection sampling to avoid modulo bias.
            let zone = u64::MAX - u64::MAX % n;
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % n;
                }
            }
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Drives one property: draws inputs and runs the body until `cases`
    /// successes, panicking on the first failure (inputs are included in
    /// the assertion message built by the `prop_assert*` macros).
    pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::from_name(name);
        let mut passed = 0u32;
        let mut rejected = 0u64;
        let max_rejects = u64::from(config.cases).saturating_mul(32).max(4096);
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "property `{name}`: too many prop_assume! rejections ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property `{name}` failed after {passed} passing cases: {msg}");
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy; see [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice among alternatives; built by `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Wraps a non-empty set of alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    if span > u64::MAX as u128 {
                        // Only reachable for the full u64/i64 domain.
                        rng.next_u64() as $t
                    } else {
                        (lo as i128 + rng.below(span as u64) as i128) as $t
                    }
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.unit_f64() as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// `&str` patterns act as string strategies. Only the pattern shape this
    /// workspace uses is supported: `.{m,n}` (any chars, length `m..=n`);
    /// any other pattern is generated as `0..=16` arbitrary chars.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 16));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| {
                    // Mostly printable ASCII, sometimes a wider char.
                    if rng.below(8) == 0 {
                        char::from_u32(0x00A1 + rng.below(0x2000) as u32).unwrap_or('¿')
                    } else {
                        char::from(b' ' + rng.below(95) as u8)
                    }
                })
                .collect()
        }
    }

    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
        (lo <= hi).then_some((lo, hi))
    }
}

pub mod arbitrary {
    //! The [`any`] entry point for canonical whole-domain strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value of `Self`.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary_value(rng: &mut TestRng) -> char {
            loop {
                if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                    return c;
                }
            }
        }
    }

    /// Strategy over the full domain of `T`; see [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec`]: a `usize` range.
    pub trait SizeRange {
        /// Draws a length.
        fn sample(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    impl SizeRange for usize {
        fn sample(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Box<dyn SizeRange>,
    }

    /// Generates vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange + 'static) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: Box::new(size),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: traits, config, `any`, and the macros.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws inputs and checks the body repeatedly.
#[macro_export]
macro_rules! proptest {
    (@body ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                __outcome
            });
        }
        $crate::proptest!(@body ($cfg); $($rest)*);
    };
    (@body ($cfg:expr);) => {};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Uniform choice among strategy alternatives (all arms must generate the
/// same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Like `assert!`, but fails only the current property (with the offending
/// expression in the message) instead of panicking mid-case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
}

/// Like `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Discards the current case (draws a fresh one) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        for _ in 0..500 {
            let x = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&x));
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
            let v = Strategy::generate(&crate::collection::vec(0u8..5, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 5));
        }
    }

    #[test]
    fn union_covers_every_arm() {
        let strat = prop_oneof![(0u32..1).prop_map(|_| 'a'), (0u32..1).prop_map(|_| 'b')];
        let mut rng = crate::test_runner::TestRng::from_name("union");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(Strategy::generate(&strat, &mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn string_pattern_honours_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("strings");
        for _ in 0..200 {
            let s = Strategy::generate(&".{2,5}", &mut rng);
            let n = s.chars().count();
            assert!((2..=5).contains(&n), "length {n}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        #[allow(clippy::iter_count)]
        fn macro_end_to_end(x in 0u64..100, ys in crate::collection::vec(any::<u8>(), 0..8)) {
            prop_assume!(x != 99);
            prop_assert!(x < 99);
            prop_assert_eq!(ys.len(), ys.iter().count());
            prop_assert_ne!(x, 99);
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_property_panics_with_context() {
        crate::test_runner::run_cases(&ProptestConfig::with_cases(8), "always_fails", |_rng| {
            Err(TestCaseError::fail("forced"))
        });
    }
}
