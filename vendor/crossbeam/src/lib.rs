//! Minimal in-tree subset of `crossbeam`: [`thread::scope`] (scoped
//! spawning with crossbeam's `Result`-on-panic semantics, built on
//! `std::thread::scope`) and [`channel`] (a blocking MPMC queue with
//! bounded/unbounded variants, cloneable senders *and* receivers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod thread {
    //! Scoped threads with crossbeam's API shape.

    /// Result of a scope: `Err` carries the payload of a panicked child.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A handle for spawning scoped threads; the closure passed to
    /// [`Scope::spawn`] receives it again for nested spawning.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread; `Err` carries its panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure may borrow from the
        /// enclosing scope and receives the [`Scope`] for nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// returning. Unlike `std::thread::scope`, a panicking child makes this
    /// return `Err` (with the first panic's payload) instead of panicking.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let wrapper = Scope { inner: s };
                f(&wrapper)
            })
        }))
    }
}

pub mod channel {
    //! A blocking multi-producer multi-consumer FIFO channel.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent value is returned inside.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (each message is delivered to exactly
    /// one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Creates a bounded channel; `send` blocks while `cap` messages are
    /// queued.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().expect("channel lock");
            loop {
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match self.shared.cap {
                    Some(cap) if queue.len() >= cap => {
                        queue = self.shared.not_full.wait(queue).expect("channel lock");
                    }
                    _ => break,
                }
            }
            queue.push_back(value);
            drop(queue);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().expect("channel lock").len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// Fails once the channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = queue.pop_front() {
                    drop(queue);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.not_empty.wait(queue).expect("channel lock");
            }
        }

        /// Receives without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] if nothing is queued,
        /// [`TryRecvError::Disconnected`] if additionally all senders are
        /// gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().expect("channel lock");
            if let Some(v) = queue.pop_front() {
                drop(queue);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives, blocking at most `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when the timeout elapses,
        /// [`RecvTimeoutError::Disconnected`] when all senders are gone and
        /// the channel is empty.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = queue.pop_front() {
                    drop(queue);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(queue, deadline - now)
                    .expect("channel lock");
                queue = q;
            }
        }

        /// Blocking iterator over messages until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().expect("channel lock").len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_delivers_every_message_once() {
            let (tx, rx) = unbounded::<u64>();
            let mut handles = Vec::new();
            for _ in 0..3 {
                let rx = rx.clone();
                handles.push(std::thread::spawn(move || rx.iter().sum::<u64>()));
            }
            for i in 1..=100 {
                tx.send(i).expect("send");
            }
            drop(tx);
            drop(rx);
            let total: u64 = handles.into_iter().map(|h| h.join().expect("join")).sum();
            assert_eq!(total, 5050);
        }

        #[test]
        fn bounded_blocks_then_drains() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).expect("send");
            tx.send(2).expect("send");
            let t = {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(3).expect("send blocked then ok"))
            };
            assert_eq!(rx.recv(), Ok(1));
            t.join().expect("join");
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());

            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_returns_err_on_child_panic() {
        let ok = crate::thread::scope(|s| {
            s.spawn(|_| 41);
            1
        });
        assert_eq!(ok.expect("no panic"), 1);

        let err = crate::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(err.is_err());
    }

    #[test]
    fn scoped_threads_may_borrow() {
        let data = [1u64, 2, 3, 4];
        let sum = crate::thread::scope(|s| {
            let h1 = s.spawn(|_| data[..2].iter().sum::<u64>());
            let h2 = s.spawn(|_| data[2..].iter().sum::<u64>());
            h1.join().expect("join") + h2.join().expect("join")
        })
        .expect("scope");
        assert_eq!(sum, 10);
    }
}
