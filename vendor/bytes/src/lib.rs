//! Minimal in-tree subset of the `bytes` crate: cheaply cloneable byte
//! buffers ([`Bytes`]), a growable builder ([`BytesMut`]), and the
//! [`Buf`]/[`BufMut`] cursor traits — exactly the surface the workspace's
//! wire codec uses. No unsafe code; sharing is `Arc<[u8]>` slices.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of bytes.
///
/// Cloning and sub-slicing (`copy_to_bytes`) share the underlying
/// allocation instead of copying. The storage is an `Arc<Vec<u8>>`, so
/// converting an owned `Vec<u8>` (or freezing a [`BytesMut`]) moves the
/// buffer behind the `Arc` without copying its contents.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::new(Vec::new()),
            start: 0,
            end: 0,
        }
    }

    /// Wraps a static byte slice (copied into shared storage).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Shares a sub-range `[at, len)` and truncates `self` to `[0, at)`.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = Bytes {
            data: Arc::clone(&self.data),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        tail
    }

    /// Shares a sub-range of this buffer without copying.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    /// Zero-copy: the vector is moved behind the `Arc`, not copied.
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref().iter().take(64) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.len() > 64 {
            write!(f, "…({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer for building frames.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty builder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Clears the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Converts into an immutable [`Bytes`] without copying: the backing
    /// vector is moved behind the `Bytes` refcount.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { buf: v }
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read-cursor over a byte source: sequential typed reads that consume.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "get_u8 on empty buffer");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 bytes remain.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Copies `dst.len()` bytes out, consuming them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice past end of buffer"
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consumes `len` bytes and returns them as [`Bytes`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than `len` bytes remain.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "copy_to_bytes past end of buffer");
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "copy_to_bytes past end of buffer");
        let out = self.slice(0..len);
        self.start += len;
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Write-cursor: sequential typed appends.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_typed_reads() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u32_le(0xDEADBEEF);
        b.put_u64_le(42);
        b.put_slice(b"xy");
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 15);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32_le(), 0xDEADBEEF);
        assert_eq!(bytes.get_u64_le(), 42);
        assert_eq!(bytes.copy_to_bytes(2), b"xy"[..]);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn shared_slices_do_not_copy() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let s = b.slice(1..3);
        assert_eq!(&s[..], &[2, 3]);
        assert_eq!(&b[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn split_off_shares_tail() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let tail = b.clone().split_off(2);
        assert_eq!(&tail[..], &[3, 4]);
        assert_eq!(b.len(), 4);
    }
}
