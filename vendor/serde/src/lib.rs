//! Minimal in-tree `serde` subset: a JSON-shaped [`Value`] tree, the
//! [`Serialize`]/[`Deserialize`] traits defined over it, impls for the
//! std types this workspace uses, and re-exported derive macros. The
//! companion `serde_json` crate renders and parses the `Value` tree.
//!
//! Semantics follow real serde's JSON data model: structs are objects,
//! newtype structs are transparent, enums are externally tagged.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree; the interchange format between the traits and
/// the `serde_json` text layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative (or any signed) integer.
    Int(i64),
    /// Non-negative integer (kept separate so `u64::MAX` round-trips).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved so serialized field order
    /// matches declaration order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when a [`Value`] tree does not match the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// A mismatch between the expected shape and the value found.
    pub fn type_mismatch(ty: &str, expected: &str, found: &Value) -> Self {
        DeError(format!("{ty}: expected {expected}, found {}", found.kind()))
    }

    /// An enum tag that names no variant of the target enum.
    pub fn unknown_variant(ty: &str, tag: &str) -> Self {
        DeError(format!("{ty}: unknown variant `{tag}`"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Fails when the tree's shape does not match `Self`.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

static NULL: Value = Value::Null;

/// Fetches a struct field from an object value; a missing key yields `Null`
/// so `Option` fields tolerate omission. Used by derived impls.
///
/// # Errors
///
/// Fails when `v` is not an object at all.
pub fn field<'a>(v: &'a Value, ty: &str, name: &str) -> Result<&'a Value, DeError> {
    match v {
        Value::Object(_) => Ok(v.get(name).unwrap_or(&NULL)),
        other => Err(DeError::type_mismatch(ty, "object", other)),
    }
}

/// Expects an array of exactly `len` items. Used by derived impls for tuple
/// structs and tuple enum variants.
///
/// # Errors
///
/// Fails when `v` is not an array or has the wrong length.
pub fn expect_array<'a>(v: &'a Value, ty: &str, len: usize) -> Result<&'a [Value], DeError> {
    match v {
        Value::Array(items) if items.len() == len => Ok(items),
        Value::Array(items) => Err(DeError(format!(
            "{ty}: expected {len} elements, found {}",
            items.len()
        ))),
        other => Err(DeError::type_mismatch(ty, "array", other)),
    }
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize(&self) -> Value {
        let v = *self as i64;
        if v >= 0 {
            Value::UInt(v as u64)
        } else {
            Value::Int(v)
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
    )*};
}
ser_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

fn as_u64(v: &Value, ty: &str) -> Result<u64, DeError> {
    match v {
        Value::UInt(n) => Ok(*n),
        Value::Int(n) if *n >= 0 => Ok(*n as u64),
        other => Err(DeError::type_mismatch(ty, "unsigned integer", other)),
    }
}

fn as_i64(v: &Value, ty: &str) -> Result<i64, DeError> {
    match v {
        Value::Int(n) => Ok(*n),
        Value::UInt(n) => {
            i64::try_from(*n).map_err(|_| DeError(format!("{ty}: {n} overflows i64")))
        }
        other => Err(DeError::type_mismatch(ty, "integer", other)),
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let n = as_u64(v, stringify!($t))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!(concat!(stringify!($t), ": {} out of range"), n)))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let n = as_i64(v, stringify!($t))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!(concat!(stringify!($t), ": {} out of range"), n)))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(DeError::type_mismatch("f64", "number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        f64::deserialize(v).map(|x| x as f32)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::type_mismatch("bool", "bool", other)),
        }
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::type_mismatch("String", "string", other)),
        }
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::type_mismatch("char", "single-char string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::type_mismatch("Vec", "array", other)),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = expect_array(v, "array", N)?;
        let parsed: Vec<T> = items.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError(format!("array: expected {N} elements")))
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let items = expect_array(v, "tuple", $len)?;
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1; A.0)
    (2; A.0, B.1)
    (3; A.0, B.1, C.2)
    (4; A.0, B.1, C.2, D.3)
    (5; A.0, B.1, C.2, D.3, E.4)
    (6; A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&42u64.serialize()), Ok(42));
        assert_eq!(i64::deserialize(&(-7i64).serialize()), Ok(-7));
        assert_eq!(f64::deserialize(&1.5f64.serialize()), Ok(1.5));
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v: Option<u32> = None;
        assert_eq!(v.serialize(), Value::Null);
        assert_eq!(Option::<u32>::deserialize(&Value::Null), Ok(None));
        let xs = vec![(1u64, 2.0f64), (3, 4.0)];
        assert_eq!(Vec::<(u64, f64)>::deserialize(&xs.serialize()), Ok(xs));
    }

    #[test]
    fn missing_object_key_reads_as_null() {
        let obj = Value::Object(vec![("a".to_string(), Value::UInt(1))]);
        assert_eq!(field(&obj, "T", "b"), Ok(&Value::Null));
        assert_eq!(
            Option::<u32>::deserialize(field(&obj, "T", "b").expect("object")),
            Ok(None)
        );
    }

    #[test]
    fn u64_max_survives() {
        assert_eq!(u64::deserialize(&u64::MAX.serialize()), Ok(u64::MAX));
    }
}
