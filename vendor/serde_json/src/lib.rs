//! Minimal in-tree `serde_json` subset: renders the vendored `serde`
//! [`Value`] tree to JSON text and parses JSON text back into it.
//! Covers `to_string`, `to_string_pretty`, and `from_str`.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

/// Error for JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Fails on non-finite floats, which JSON cannot represent.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0)?;
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Fails on non-finite floats, which JSON cannot represent.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into a value.
///
/// # Errors
///
/// Fails on malformed JSON or when the parsed tree does not match `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::deserialize(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error::new("JSON cannot represent non-finite floats"));
            }
            // `{}` on f64 is the shortest representation that round-trips;
            // append `.0` when it looks like an integer so the value parses
            // back as a float.
            let s = format!("{x}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        for &b in lit.as_bytes() {
            self.expect(b)?;
        }
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self
            .peek()
            .ok_or_else(|| Error::new("unexpected end of input"))?
        {
            b'n' => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bump()? {
                        b',' => continue,
                        b']' => return Ok(Value::Array(items)),
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `]`, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.bump()? {
                        b',' => continue,
                        b'}' => return Ok(Value::Object(fields)),
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}`, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{08}'),
                    b'f' => out.push('\u{0C}'),
                    b'u' => {
                        let hi = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    other => {
                        return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                    }
                },
                _ => return Err(Error::new("unescaped control character in string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::UInt(7)),
            (
                "b".to_string(),
                Value::Array(vec![Value::Int(-1), Value::Float(2.5)]),
            ),
            ("c".to_string(), Value::Str("x\"\\\n✓".to_string())),
            ("d".to_string(), Value::Null),
            ("e".to_string(), Value::Bool(true)),
        ]);
        let text = to_string(&StubSer(v.clone())).expect("serialize");
        let back: StubDe = from_str(&text).expect("parse");
        assert_eq!(back.0, v);
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v = Value::Object(vec![(
            "xs".to_string(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
        )]);
        let text = to_string_pretty(&StubSer(v.clone())).expect("serialize");
        assert!(text.contains("\n  \"xs\": [\n    1,\n    2\n  ]"));
        let back: StubDe = from_str(&text).expect("parse");
        assert_eq!(back.0, v);
    }

    #[test]
    fn float_integers_keep_their_type() {
        let text = to_string(&StubSer(Value::Float(3.0))).expect("serialize");
        assert_eq!(text, "3.0");
        let back: StubDe = from_str(&text).expect("parse");
        assert_eq!(back.0, Value::Float(3.0));
    }

    #[test]
    fn unicode_escapes_parse() {
        let back: StubDe = from_str(r#""é😀""#).expect("parse");
        assert_eq!(back.0, Value::Str("é😀".to_string()));
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "tru", "1 2", "nul"] {
            assert!(from_str::<StubDe>(bad).is_err(), "accepted {bad:?}");
        }
    }

    /// Test-only pass-throughs so the tests can exercise raw `Value` trees.
    struct StubSer(Value);
    impl Serialize for StubSer {
        fn serialize(&self) -> Value {
            self.0.clone()
        }
    }
    struct StubDe(Value);
    impl Deserialize for StubDe {
        fn deserialize(v: &Value) -> Result<Self, serde::DeError> {
            Ok(StubDe(v.clone()))
        }
    }
}
