//! Minimal in-tree `criterion` subset: enough to run the workspace's
//! `harness = false` benchmarks and print per-iteration timings with
//! optional throughput. Statistical machinery is reduced to median-of-samples
//! with an adaptive iteration count.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Logical elements per iteration.
    Elements(u64),
}

/// How much setup output to batch per timed run in
/// [`Bencher::iter_batched`]. The subset times one setup/routine pair per
/// measurement regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Cheap setup; batch freely.
    SmallInput,
    /// Expensive setup.
    LargeInput,
    /// Re-run setup every iteration.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            measure_for: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            sample_size: None,
        }
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut bencher = Bencher {
            budget: self.criterion.measure_for,
            samples,
            median_ns: 0.0,
        };
        f(&mut bencher);
        let per_iter = bencher.median_ns;
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) if per_iter > 0.0 => {
                let gib = b as f64 / per_iter * 1e9 / (1u64 << 30) as f64;
                format!("  ({gib:.3} GiB/s)")
            }
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                let eps = n as f64 / per_iter * 1e9;
                format!("  ({eps:.0} elem/s)")
            }
            _ => String::new(),
        };
        eprintln!("  {}/{id}  median {}{rate}", self.name, format_ns(per_iter));
        self
    }

    /// Ends the group (kept for API parity; settings die with the value).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    budget: Duration,
    samples: usize,
    median_ns: f64,
}

impl Bencher {
    /// Times `routine`, called in a loop.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: how many iterations fit in one sample slot.
        let slot = self.budget.as_secs_f64() / self.samples as f64;
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= slot / 4.0 || iters_per_sample >= 1 << 30 {
                break;
            }
            iters_per_sample *= 8;
        }

        let mut samples_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            samples_ns.push(start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
        self.median_ns = median(&mut samples_ns);
    }

    /// Times `routine` over fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples_ns = Vec::with_capacity(self.samples);
        // One setup/routine pair per measurement keeps setup cost out of the
        // timing without criterion's batch bookkeeping.
        let per_sample = 8usize;
        for _ in 0..self.samples {
            let inputs: Vec<I> = (0..per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            samples_ns.push(start.elapsed().as_secs_f64() * 1e9 / per_sample as f64);
        }
        self.median_ns = median(&mut samples_ns);
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
    samples[samples.len() / 2]
}

/// Declares a benchmark entry point composed of `fn(&mut Criterion)` stages.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something_positive() {
        let mut c = Criterion {
            sample_size: 3,
            measure_for: Duration::from_millis(6),
        };
        let mut group = c.benchmark_group("t");
        group.sample_size(3).throughput(Throughput::Elements(1));
        group.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.into_iter().map(u64::from).sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
    }
}
