//! Minimal in-tree subset of `rand`: the [`RngCore`] trait and its error
//! type. The workspace's own generators (`bh-simcore`) implement this so
//! they stay drop-in compatible with the real crate's adapters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Error type for fallible RNG operations (infallible here; kept for
/// signature compatibility).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    ///
    /// # Errors
    ///
    /// Implementations may report source failure; the default delegates to
    /// the infallible method and never fails.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn default_try_fill_delegates() {
        let mut c = Counter(0);
        let mut buf = [0u8; 3];
        c.try_fill_bytes(&mut buf).expect("infallible");
        assert_eq!(buf, [1, 2, 3]);
    }
}
