//! Minimal in-tree subset of the `parking_lot` API: non-poisoning
//! [`Mutex`], [`RwLock`], and [`Condvar`] built on `std::sync`. A poisoned
//! std lock (a panic while held) is recovered transparently, which matches
//! `parking_lot`'s no-poisoning semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing the guard.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner
            .wait(guard)
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Blocks until notified or `timeout` elapses; returns the guard and
    /// whether the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match self.inner.wait_timeout(guard, timeout) {
            Ok((g, to)) => (g, to.timed_out()),
            Err(p) => {
                let (g, to) = p.into_inner();
                (g, to.timed_out())
            }
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
