//! Chaos drill: watch the resilience layer recover a live mesh.
//!
//! Spawns a 4-node mesh on loopback, seeds objects, then walks through
//! the two canonical failures end to end:
//!
//! 1. **Crash** — node 1 is crash-stopped (hint table lost). Survivors'
//!    heartbeats confirm the death, garbage-collect every stale hint
//!    naming the corpse, and repair their Plaxton metadata tables by
//!    exactly the analytic changed-entry count. The node then
//!    warm-restarts on its old port and rebuilds its hint table with one
//!    anti-entropy resync round.
//! 2. **Partition** — the 0↔2 link is severed; a hinted fetch across it
//!    degrades to a clean origin fetch (one wasted probe, no client
//!    error), then peer hits resume once the link heals.
//!
//! ```bash
//! cargo run --release --example chaos_drill
//! ```

use bh_proto::chaos::{analytic_churn_for, ChaosMesh, FaultKind};
use bh_proto::liveness::PeerHealth;
use bh_proto::node::NodeConfig;
use std::time::{Duration, Instant};

fn main() {
    let mut mesh = ChaosMesh::spawn(4, |c: NodeConfig| {
        let mut c = c
            .with_flush_max(Duration::from_secs(3600)) // flushes driven manually
            .with_heartbeat_interval(Duration::from_secs(3600)) // heartbeats too
            .with_suspicion_threshold(2)
            .with_confirm_death_after(Duration::from_millis(150))
            .with_shutdown_deadline(Duration::from_secs(2));
        c.io_timeout = Duration::from_millis(500);
        c
    })
    .expect("spawn mesh");
    let addrs = mesh.addrs().to_vec();
    println!("mesh up: 4 nodes + origin on loopback");

    // Seed 8 objects at node 1 and advertise them everywhere.
    for i in 0..8 {
        bh_proto::fetch(addrs[1], &format!("http://drill.test/obj/{i}")).expect("seed");
    }
    mesh.flush_all();
    let hints_before = mesh.node(0).expect("node 0").hint_entries().len();
    println!("seeded 8 objects at node 1; node 0 now holds {hints_before} hints");

    // --- Act 1: crash ---
    println!("\n[crash] killing node 1 (hint table lost, no goodbye)");
    mesh.crash(1);
    // bh-lint: allow(no-wall-clock, reason = "deadline-bounded wait on a live mesh; failure detection is wall-clock here")
    let deadline = Instant::now() + Duration::from_secs(10);
    while mesh.node(0).expect("node 0").peer_health(addrs[1]) != PeerHealth::Dead {
        // bh-lint: allow(no-wall-clock, reason = "loop bound against the same live-mesh deadline")
        assert!(Instant::now() < deadline, "death never confirmed");
        mesh.heartbeat_all();
        std::thread::sleep(Duration::from_millis(25));
    }
    let s = mesh.node(0).expect("node 0").stats();
    let analytic = analytic_churn_for(&addrs, 1);
    println!(
        "[crash] node 0 confirmed the death: {} stale hints GC'd, \
         {} Plaxton entries repaired (analytic count: {analytic})",
        s.stale_hints_gc, s.plaxton_repair_entries
    );

    // A fetch of the dead node's object now goes straight to origin —
    // the stale hint is gone, so no probe is wasted.
    let fp_before = mesh.node(0).expect("node 0").stats().false_positives;
    let (src, _) = bh_proto::fetch(addrs[0], "http://drill.test/obj/0").expect("fetch");
    let fp_after = mesh.node(0).expect("node 0").stats().false_positives;
    println!(
        "[crash] post-GC fetch served from {src:?} with {} wasted probes",
        fp_after - fp_before
    );

    let rebuilt = mesh.restart(1).expect("warm restart");
    println!("[crash] node 1 restarted on its old port; resync rebuilt {rebuilt} hint records");

    // --- Act 2: partition ---
    println!("\n[partition] severing the 0 <-> 2 link");
    bh_proto::fetch(addrs[2], "http://drill.test/island").expect("seed at node 2");
    mesh.flush_all();
    mesh.inject(FaultKind::Partition { a: 0, b: 2 })
        .expect("inject");
    let (src, _) = bh_proto::fetch(addrs[0], "http://drill.test/island").expect("no error");
    println!("[partition] hinted fetch across the cut degraded cleanly to {src:?}");
    mesh.lift(FaultKind::Partition { a: 0, b: 2 })
        .expect("lift");
    bh_proto::fetch(addrs[2], "http://drill.test/healed").expect("seed at node 2");
    mesh.flush_all();
    let (src, _) = bh_proto::fetch(addrs[0], "http://drill.test/healed").expect("fetch");
    println!("[partition] after healing, fresh hints flow again: served from {src:?}");

    mesh.shutdown();
    println!("\nmesh shut down cleanly — see RESILIENCE.md for the full fault model");
}
