//! Scenario: a dial-up ISP (the paper's Prodigy workload) is provisioning
//! a cooperative cache farm and must size the per-proxy **hint store**.
//!
//! The paper's arithmetic (§3.1.1): at 16 bytes/record, dedicating 10% of a
//! 5 GB proxy to hints indexes ~two orders of magnitude more data than the
//! proxy stores. This example measures the real trade-off on the Prodigy
//! workload model: hit rate and remote-hit reach as a function of hint
//! store size, plus the update bandwidth the hints cost.
//!
//! ```text
//! cargo run --release --example isp_cache_farm
//! ```

use beyond_hierarchies::core::experiments::hint_size_sweep;
use beyond_hierarchies::core::experiments::update_load;
use beyond_hierarchies::trace::WorkloadSpec;

fn main() {
    let spec = WorkloadSpec::prodigy().scaled(0.01);
    println!(
        "Prodigy-style workload: {} requests over {:.1} days, dynamic client IDs,\n{} L1 proxies × {} lines\n",
        spec.requests,
        spec.duration_days,
        spec.l1_groups(),
        spec.clients_per_l1
    );

    // Sweep hint-store sizes (labels in full-scale MB; simulated at scale).
    let scale = 0.01;
    let axis = [0.5, 5.0, 50.0, 200.0, f64::INFINITY];
    let sizes: Vec<f64> = axis
        .iter()
        .map(|mb| if mb.is_finite() { mb * scale } else { *mb })
        .collect();
    let points = hint_size_sweep(&spec, 7, &sizes);

    println!(
        "{:>12} {:>10} {:>13} {:>12}",
        "hint store", "hit-rate", "remote-hits", "false-pos"
    );
    for (p, label) in points.iter().zip(axis.iter()) {
        println!(
            "{:>10}MB {:>10.3} {:>13.3} {:>12.4}",
            if label.is_finite() {
                format!("{label:.1}")
            } else {
                "inf".into()
            },
            p.hit_ratio,
            p.remote_hit_fraction,
            p.false_positive_rate
        );
    }

    // What does maintaining the hints cost? (Table 5's machinery.)
    let load = update_load(&spec, 7);
    println!(
        "\nhint maintenance: {:.2} updates/s at the root ({:.2} at a centralized directory)",
        load.hierarchy_rate, load.centralized_rate
    );
    println!(
        "at 20 bytes/update that is {:.0} B/s of root bandwidth — the paper's point: \
         \"even a modestly-well connected host will handle hint updates with little effort\"",
        load.hierarchy_rate * 20.0
    );

    // Provisioning recommendation, as an ops teammate would read it.
    let knee = points
        .windows(2)
        .find(|w| w[1].hit_ratio - w[0].hit_ratio < 0.005)
        .map(|w| w[0].x)
        .unwrap_or(f64::INFINITY);
    println!(
        "\nrecommendation: provision ≈{:.0} MB of hint store per proxy (full-scale \
         equivalent {:.0} MB) — beyond that the hit-rate curve is flat.",
        knee,
        knee / scale
    );
}
