//! Scenario: a cache operator with spare inter-site bandwidth wants to know
//! which push-caching policy (§4) to enable, and what it costs.
//!
//! Push algorithms trade bandwidth for latency: update push is efficient
//! but moves little; hierarchical push-on-miss buys real latency at up to
//! ~4x the demand bandwidth. This example runs all of them on a DEC-style
//! workload and prints a decision table.
//!
//! ```text
//! cargo run --release --example push_planner
//! ```

use beyond_hierarchies::core::experiments::push_comparison;
use beyond_hierarchies::netmodel::{CostModel, RousskovModel, TestbedModel};
use beyond_hierarchies::trace::WorkloadSpec;

fn main() {
    let spec = WorkloadSpec::dec().scaled(0.01);
    println!(
        "DEC-style workload: {} requests, {} L1 proxies, space-constrained caches\n",
        spec.requests,
        spec.l1_groups()
    );

    let tb = TestbedModel::new();
    let max = RousskovModel::max();
    let models: Vec<&dyn CostModel> = vec![&tb, &max];
    let rows = push_comparison(&spec, 42, &models);

    let base = rows
        .iter()
        .find(|r| r.strategy == "Hints")
        .expect("hint baseline present")
        .response_ms[0]
        .1;
    println!(
        "{:<14} {:>9} {:>9} {:>11} {:>11} {:>11}",
        "policy", "Testbed", "vs hints", "efficiency", "push KB/s", "demand KB/s"
    );
    for r in &rows {
        let t = r.response_ms[0].1;
        println!(
            "{:<14} {:>8.0}m {:>8.2}x {:>11.3} {:>11.1} {:>11.1}",
            r.strategy,
            t,
            base / t,
            r.efficiency,
            r.push_bw_kbps,
            r.demand_bw_kbps
        );
    }

    // The operator's decision rule: best latency subject to a bandwidth cap.
    let demand = rows
        .iter()
        .map(|r| r.demand_bw_kbps)
        .fold(f64::NAN, f64::max);
    for budget_factor in [0.25, 1.0, 4.0] {
        let budget = demand * budget_factor;
        let best = rows
            .iter()
            .filter(|r| r.push_bw_kbps <= budget)
            .filter(|r| r.strategy != "Push-ideal" && r.strategy != "Hierarchy")
            .min_by(|a, b| a.response_ms[0].1.total_cmp(&b.response_ms[0].1))
            .expect("some policy fits");
        println!(
            "\nwith push budget ≤ {budget_factor}x demand bandwidth: enable {} \
             ({:.0} ms mean response)",
            best.strategy, best.response_ms[0].1
        );
    }
    println!("\n(paper: update push ≈ no-push; push algorithms buy up to 1.25x over hints;");
    println!(" ideal push bounds the whole family)");
}
