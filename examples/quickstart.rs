//! Quickstart: simulate a small cooperative cache system and compare the
//! paper's hint architecture against a traditional data hierarchy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use beyond_hierarchies::core::sim::{SimConfig, Simulator};
use beyond_hierarchies::core::strategies::StrategyKind;
use beyond_hierarchies::netmodel::{CostModel, RousskovModel, TestbedModel};
use beyond_hierarchies::trace::WorkloadSpec;

fn main() {
    // A 1024-client workload: 4 L1 proxies of 256 clients, 2 L1s per L2.
    let spec = WorkloadSpec::small().with_requests(100_000);
    println!(
        "workload: {} requests, {} clients, {} L1 proxies",
        spec.requests,
        spec.clients,
        spec.l1_groups()
    );

    let testbed = TestbedModel::new();
    let min = RousskovModel::min();
    let max = RousskovModel::max();
    let models: Vec<&dyn CostModel> = vec![&testbed, &min, &max];

    let sim = Simulator::new(SimConfig::infinite(&spec));
    println!(
        "\n{:<12} {:>10} {:>8} {:>8} {:>9}",
        "strategy", "hit-rate", "Testbed", "Min", "Max"
    );
    let mut baseline: Option<Vec<f64>> = None;
    for kind in [
        StrategyKind::DataHierarchy,
        StrategyKind::CentralDirectory,
        StrategyKind::HintHierarchy,
        StrategyKind::HintIdealPush,
    ] {
        let report = sim.run(&spec, 42, kind, &models);
        let times: Vec<f64> = ["Testbed", "Min", "Max"]
            .iter()
            .map(|m| report.mean_response_ms(m).expect("model present"))
            .collect();
        println!(
            "{:<12} {:>10.3} {:>7.0}ms {:>6.0}ms {:>7.0}ms",
            kind.label(),
            report.metrics.hit_ratio(),
            times[0],
            times[1],
            times[2]
        );
        if kind == StrategyKind::DataHierarchy {
            baseline = Some(times);
        } else if let Some(base) = &baseline {
            let speedups: Vec<String> = base
                .iter()
                .zip(&times)
                .map(|(b, t)| format!("{:.2}x", b / t))
                .collect();
            println!("{:<12} speedup vs hierarchy: {}", "", speedups.join(" / "));
        }
    }
    println!("\nThe paper reports 1.27–2.43x overall; the shape — hints win on every");
    println!("parameterization, ideal push bounds them — should match.");
}
