//! Workload tooling: generate a synthetic trace, archive it in both
//! supported formats (JSON lines and Squid-style access log), re-read it,
//! and print a Table 4-style summary.
//!
//! ```text
//! cargo run --release --example trace_tools
//! ```

use beyond_hierarchies::trace::logio;
use beyond_hierarchies::trace::{TraceGenerator, TraceSummary, WorkloadSpec};

fn main() -> std::io::Result<()> {
    let spec = WorkloadSpec::berkeley().scaled(0.002);
    println!(
        "generating a Berkeley-style trace: {} requests, {} clients",
        spec.requests, spec.clients
    );
    let records: Vec<_> = TraceGenerator::new(&spec, 2024).collect();

    let dir = std::env::temp_dir().join("bh-trace-tools");
    std::fs::create_dir_all(&dir)?;

    // Archive as JSON lines (lossless).
    let jsonl_path = dir.join("trace.jsonl");
    logio::write_jsonl(std::fs::File::create(&jsonl_path)?, records.iter().copied())?;
    println!(
        "wrote {} ({} bytes)",
        jsonl_path.display(),
        std::fs::metadata(&jsonl_path)?.len()
    );

    // Archive as a Squid-style access log (interoperable).
    let log_path = dir.join("access.log");
    logio::write_squid_log(std::fs::File::create(&log_path)?, records.iter().copied())?;
    println!(
        "wrote {} ({} bytes)",
        log_path.display(),
        std::fs::metadata(&log_path)?.len()
    );

    // Round-trip both and summarize.
    let from_jsonl = logio::read_jsonl(std::io::BufReader::new(std::fs::File::open(&jsonl_path)?))?;
    assert_eq!(
        from_jsonl, records,
        "JSON lines round trip must be lossless"
    );
    let from_log = logio::read_squid_log(std::io::BufReader::new(std::fs::File::open(&log_path)?))?;

    println!("\nTable 4-style summaries:");
    println!(
        "{:<12} {:>9} {:>12} {:>14} {:>7}",
        "Source", "Clients", "Accesses", "DistinctURLs", "Days"
    );
    for (name, recs) in [("generated", &records), ("squid-log", &from_log)] {
        let s = TraceSummary::compute(recs.iter().copied());
        println!("{}", s.table4_row(name));
        if name == "generated" {
            println!(
                "{:<12} uncachable {:.1}%, errors {:.1}%, mean object {:.1} KB",
                "",
                s.uncachable_fraction * 100.0,
                s.error_fraction * 100.0,
                s.mean_request_bytes / 1024.0
            );
        }
    }
    Ok(())
}
