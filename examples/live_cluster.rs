//! Spin up a **real** cooperative cache cluster on localhost — an origin
//! server plus three cache-node daemons exchanging 20-byte hint updates —
//! and watch the data paths the paper describes: local hit, direct
//! cache-to-cache transfer, origin fetch, false positive, and a push.
//!
//! ```text
//! cargo run --release --example live_cluster
//! ```

use beyond_hierarchies::proto::client::{Connection, Source};
use beyond_hierarchies::proto::node::{CacheNode, NodeConfig};
use beyond_hierarchies::proto::origin::OriginServer;
use std::net::SocketAddr;
use std::time::Duration;

fn main() -> std::io::Result<()> {
    let origin = OriginServer::spawn("127.0.0.1:0")?;
    println!("origin server at {}", origin.addr());

    // Spawn three caches in two steps so every node knows its neighbors.
    let provisional: Vec<CacheNode> = (0..3)
        .map(|_| CacheNode::spawn(NodeConfig::new("127.0.0.1:0", origin.addr())))
        .collect::<Result<_, _>>()?;
    let addrs: Vec<SocketAddr> = provisional.iter().map(|n| n.addr()).collect();
    drop(provisional);
    let nodes: Vec<CacheNode> = (0..3)
        .map(|i| {
            let neighbors = addrs
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, a)| *a)
                .collect();
            CacheNode::spawn(
                NodeConfig::new("127.0.0.1:0", origin.addr())
                    .with_neighbors(neighbors)
                    .with_flush_max(Duration::from_millis(10)),
            )
        })
        .collect::<Result<_, _>>()?;
    // (The provisional nodes only existed to reserve address knowledge; the
    // real cluster is `nodes`, re-wired as a full mesh.)
    let addrs: Vec<SocketAddr> = nodes.iter().map(|n| n.addr()).collect();
    for (i, n) in nodes.iter().enumerate() {
        println!(
            "cache node {i} at {} (machine id {:#018x})",
            n.addr(),
            n.machine_id().0
        );
    }

    let url = "http://www.example.com/popular/page.html";
    let key = beyond_hierarchies::md5::url_key(url);

    // 1. First fetch through node 0: compulsory miss, served by the origin.
    let (src, body) = beyond_hierarchies::proto::fetch(addrs[0], url)?;
    println!("\nfetch #1 via node0 → {src:?} ({} bytes)", body.len());
    assert_eq!(src, Source::Origin);

    // 2. Same node again: local hit.
    let (src, _) = beyond_hierarchies::proto::fetch(addrs[0], url)?;
    println!("fetch #2 via node0 → {src:?}");
    assert_eq!(src, Source::Local);

    // 3. Let the hint batch flush, then fetch via node 1: the hint names
    //    node 0 and the transfer is direct cache-to-cache.
    nodes[0].flush_updates_now();
    let (src, _) = beyond_hierarchies::proto::fetch(addrs[1], url)?;
    println!("fetch #3 via node1 → {src:?} (direct cache-to-cache)");
    assert!(matches!(src, Source::Peer(_)));

    // 4. find-nearest from node 2's hint store.
    let loc = nodes[2].find_nearest(key);
    println!("node2 find_nearest → {loc:?}");

    // 5. Kill the copies and watch a false positive: node 0 invalidates,
    //    node 2 still holds a stale hint until the next batch lands.
    nodes[0].invalidate(url);
    nodes[1].invalidate(url);
    let (src, _) = beyond_hierarchies::proto::fetch(addrs[2], url)?;
    println!(
        "fetch #4 via node2 (stale hint) → {src:?}; false positives so far: {}",
        nodes[2].stats().false_positives
    );

    // 6. Push caching: hand node 1 a copy it never asked for.
    let mut conn = Connection::open(addrs[1])?;
    conn.push(
        "http://www.example.com/pushed.html",
        1,
        &b"pushed content"[..],
    )?;
    let (src, body) =
        beyond_hierarchies::proto::fetch(addrs[1], "http://www.example.com/pushed.html")?;
    println!(
        "fetch of pushed object via node1 → {src:?} ({} bytes)",
        body.len()
    );
    assert_eq!(src, Source::Local);

    println!("\nper-node stats:");
    for (i, n) in nodes.iter().enumerate() {
        println!("  node{i}: {:?}", n.stats());
    }
    println!("origin served {} requests total", origin.request_count());
    Ok(())
}
