//! Chaos-layer integration: crash/restart with anti-entropy hint
//! recovery, partitions degrading to the origin and healing, and live
//! Plaxton-table repair matching the analytic reconfiguration count.

use bh_plaxton::NodeSpec;
use bh_proto::chaos::{analytic_churn_for, ChaosMesh, FaultKind};
use bh_proto::client::Source;
use bh_proto::liveness::PeerHealth;
use bh_proto::node::{mesh_tree_for, NodeConfig};
use std::time::{Duration, Instant};

/// Fast failure detection, manual flush/heartbeat driving, bounded
/// teardown — the tuning every test here shares.
fn tuned(c: NodeConfig) -> NodeConfig {
    let mut c = c
        .with_flush_max(Duration::from_secs(3600))
        .with_heartbeat_interval(Duration::from_secs(3600))
        .with_suspicion_threshold(2)
        .with_confirm_death_after(Duration::from_millis(100))
        .with_shutdown_deadline(Duration::from_secs(2));
    c.io_timeout = Duration::from_millis(500);
    c
}

/// Drives heartbeat rounds until every survivor has confirmed `dead`
/// dead, panicking if that takes more than 10 seconds.
fn drive_to_death(mesh: &ChaosMesh, dead: usize) {
    let addr = mesh.addrs()[dead];
    // bh-lint: allow(no-wall-clock, reason = "deadline-bounded wait on a live mesh; failure detection is wall-clock here")
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        mesh.heartbeat_all();
        let confirmed = (0..mesh.addrs().len())
            .filter(|&i| i != dead)
            .filter_map(|i| mesh.node(i))
            .all(|n| n.peer_health(addr) == PeerHealth::Dead);
        if confirmed {
            return;
        }
        assert!(
            // bh-lint: allow(no-wall-clock, reason = "loop bound against the same live-mesh deadline")
            Instant::now() < deadline,
            "survivors never confirmed node {dead} dead"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// A node that crash-stops (hint table lost, no goodbye) and warm-restarts
/// on the same port rebuilds its hint table via anti-entropy resync and
/// converges to a never-crashed witness, entry for entry.
#[test]
fn crash_restart_resync_rebuilds_the_hint_table() {
    let mut mesh = ChaosMesh::spawn(4, tuned).expect("mesh");
    // Objects live on nodes 0 and 2; nodes 1 (victim) and 3 (witness)
    // learn of them only through hint batches.
    for i in 0..6 {
        bh_proto::fetch(
            mesh.node(0).expect("node 0").addr(),
            &format!("http://chaos.test/a/{i}"),
        )
        .expect("seed at node 0");
        bh_proto::fetch(
            mesh.node(2).expect("node 2").addr(),
            &format!("http://chaos.test/b/{i}"),
        )
        .expect("seed at node 2");
    }
    mesh.flush_all();

    let witness = mesh.node(3).expect("witness").hint_entries();
    assert_eq!(witness.len(), 12, "witness learned every advertised object");
    assert_eq!(mesh.node(1).expect("victim").hint_entries(), witness);

    mesh.crash(1);
    let rebuilt = mesh.restart(1).expect("restart on the old port");
    assert_eq!(rebuilt, 12, "resync re-learned every advertised object");
    assert_eq!(
        mesh.node(1).expect("restarted victim").hint_entries(),
        witness,
        "restarted node converged to the never-crashed witness"
    );

    // The recovered hints are live: the restarted node serves a hinted
    // object with a single successful peer probe.
    let (src, body) = bh_proto::fetch(
        mesh.node(1).expect("restarted victim").addr(),
        "http://chaos.test/a/0",
    )
    .expect("fetch through recovered hint");
    assert!(
        matches!(src, Source::Peer(_)),
        "recovered hint routed to the peer copy, got {src:?}"
    );
    assert!(!body.is_empty());
    mesh.shutdown();
}

/// While a link is partitioned, a hinted fetch across it degrades to a
/// clean origin fetch (one wasted probe, no error); after the partition
/// heals, fresh hints flow and peer hits resume.
#[test]
fn partition_degrades_to_origin_then_heals() {
    let mut mesh = ChaosMesh::spawn(3, tuned).expect("mesh");
    let node0 = mesh.node(0).expect("node 0").addr();
    let node1 = mesh.node(1).expect("node 1").addr();

    // Healthy baseline: a hint at node 0 for node 1's object peer-hits.
    bh_proto::fetch(node1, "http://chaos.test/x").expect("seed x");
    // Seed the object fetched *during* the partition now, while hints
    // still propagate.
    bh_proto::fetch(node1, "http://chaos.test/y").expect("seed y");
    mesh.flush_all();
    let (src, _) = bh_proto::fetch(node0, "http://chaos.test/x").expect("fetch x");
    assert!(
        matches!(src, Source::Peer(_)),
        "baseline peer hit, got {src:?}"
    );

    mesh.inject(FaultKind::Partition { a: 0, b: 1 })
        .expect("inject partition");
    let before = mesh.node(0).expect("node 0").stats();
    let (src, body) = bh_proto::fetch(node0, "http://chaos.test/y").expect("no client error");
    assert_eq!(src, Source::Origin, "partitioned probe degraded to origin");
    assert!(!body.is_empty());
    let during = mesh.node(0).expect("node 0").stats();
    assert_eq!(
        during.degraded_to_origin,
        before.degraded_to_origin + 1,
        "degradation is accounted"
    );
    assert_eq!(
        during.false_positives,
        before.false_positives + 1,
        "the unreachable hint cost exactly one wasted probe"
    );

    mesh.lift(FaultKind::Partition { a: 0, b: 1 })
        .expect("lift partition");
    // A fresh object advertised after healing peer-hits again.
    bh_proto::fetch(node1, "http://chaos.test/z").expect("seed z");
    mesh.flush_all();
    let (src, _) = bh_proto::fetch(node0, "http://chaos.test/z").expect("fetch z");
    assert!(
        matches!(src, Source::Peer(_)),
        "healed link carries hints again, got {src:?}"
    );
    mesh.shutdown();
}

/// A one-way partition blocks exactly one direction: the blocked side
/// degrades its hinted fetches to the origin while the reverse path keeps
/// peer-hitting, and lifting the fault restores hint flow cleanly.
#[test]
fn one_way_partition_degrades_only_the_blocked_direction() {
    let mut mesh = ChaosMesh::spawn(3, tuned).expect("mesh");
    let node0 = mesh.node(0).expect("node 0").addr();
    let node1 = mesh.node(1).expect("node 1").addr();

    // Seed objects on both sides while the mesh is healthy so both nodes
    // hold hints across the soon-to-be-severed direction.
    bh_proto::fetch(node0, "http://chaos.test/w").expect("seed w at node 0");
    bh_proto::fetch(node1, "http://chaos.test/y").expect("seed y at node 1");
    mesh.flush_all();

    mesh.inject(FaultKind::PartitionOneWay { from: 0, to: 1 })
        .expect("inject one-way partition");

    // Blocked direction (0 -> 1): the hinted probe fails and the fetch
    // degrades to a clean origin hit.
    let before = mesh.node(0).expect("node 0").stats();
    let (src, body) = bh_proto::fetch(node0, "http://chaos.test/y").expect("no client error");
    assert_eq!(src, Source::Origin, "blocked direction degraded to origin");
    assert!(!body.is_empty());
    let during = mesh.node(0).expect("node 0").stats();
    assert_eq!(
        during.degraded_to_origin,
        before.degraded_to_origin + 1,
        "degradation is accounted on the blocked side"
    );
    assert_eq!(
        during.false_positives,
        before.false_positives + 1,
        "the unreachable hint cost exactly one wasted probe"
    );

    // Reverse direction (1 -> 0) is untouched: node 1 still peer-hits
    // node 0's object through the same physical link.
    let reverse_before = mesh.node(1).expect("node 1").stats();
    let (src, _) = bh_proto::fetch(node1, "http://chaos.test/w").expect("fetch w");
    assert!(
        matches!(src, Source::Peer(_)),
        "unblocked direction still peer-hits, got {src:?}"
    );
    let reverse_during = mesh.node(1).expect("node 1").stats();
    assert_eq!(
        reverse_during.degraded_to_origin, reverse_before.degraded_to_origin,
        "no degradation on the unblocked side"
    );

    mesh.lift(FaultKind::PartitionOneWay { from: 0, to: 1 })
        .expect("lift one-way partition");
    // A fresh object advertised after healing peer-hits in the direction
    // that was blocked.
    bh_proto::fetch(node1, "http://chaos.test/z").expect("seed z");
    mesh.flush_all();
    let (src, _) = bh_proto::fetch(node0, "http://chaos.test/z").expect("fetch z");
    assert!(
        matches!(src, Source::Peer(_)),
        "healed direction carries hints again, got {src:?}"
    );
    mesh.shutdown();
}

/// When a peer's death is confirmed, every survivor repairs its Plaxton
/// routing table in place — and the number of rewritten entries matches
/// the analytic count from replaying the same membership change on a
/// fresh tree. Revival repairs are counted the same way.
#[test]
fn live_plaxton_repair_matches_analytic_churn() {
    let mut mesh = ChaosMesh::spawn(4, tuned).expect("mesh");
    let addrs = mesh.addrs().to_vec();
    let removed = analytic_churn_for(&addrs, 2);

    mesh.crash(2);
    drive_to_death(&mesh, 2);
    for i in [0usize, 1, 3] {
        let s = mesh.node(i).expect("survivor").stats();
        assert_eq!(s.peers_confirmed_dead, 1, "node {i} confirmed one death");
        assert_eq!(
            s.plaxton_repair_entries as usize, removed,
            "node {i}: live removal churn must equal the analytic count"
        );
    }

    // Restart the dead node; survivors notice on their next heartbeat
    // round and splice it back into their trees.
    mesh.restart(2).expect("restart node 2");
    mesh.heartbeat_all();
    let readded = {
        let mut tree = mesh_tree_for(&addrs);
        tree.remove_node(2).expect("analytic removal");
        let (_, changed) = tree
            .add_node(NodeSpec::from_address(&addrs[2].to_string(), (2.0, 0.0)))
            .expect("analytic re-add");
        changed
    };
    for i in [0usize, 1, 3] {
        let s = mesh.node(i).expect("survivor").stats();
        assert_eq!(
            s.plaxton_repair_entries as usize,
            removed + readded,
            "node {i}: revival churn must equal the analytic count"
        );
    }
    mesh.shutdown();
}
