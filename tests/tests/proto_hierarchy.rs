//! Integration tests of the prototype's hierarchical metadata propagation
//! (§3.1.2): updates climb to a parent with first-copy filtering and
//! descend to sibling subtrees.

use bh_proto::node::{CacheNode, NodeConfig};
use bh_proto::origin::OriginServer;
use std::time::Duration;

/// Builds a 2-level metadata tree: leaves A, B under metadata parent P.
/// P stores no client data; it only relays hints.
fn tree() -> (OriginServer, CacheNode, CacheNode, CacheNode) {
    let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
    let long = Duration::from_secs(3600); // manual flushes only
    let parent =
        CacheNode::spawn(NodeConfig::new("127.0.0.1:0", origin.addr()).with_flush_max(long))
            .expect("parent");
    let a = CacheNode::spawn(
        NodeConfig::new("127.0.0.1:0", origin.addr())
            .with_parent(parent.addr())
            .with_flush_max(long),
    )
    .expect("leaf a");
    let b = CacheNode::spawn(
        NodeConfig::new("127.0.0.1:0", origin.addr())
            .with_parent(parent.addr())
            .with_flush_max(long),
    )
    .expect("leaf b");
    parent.set_neighbors(Vec::new());
    // Parent's children list must point at the live leaves; NodeConfig is
    // fixed at spawn, so the parent was created first and wired via a
    // respawn-free path: children are only used for downward flushes, which
    // we trigger manually after setting them.
    (origin, parent, a, b)
}

#[test]
fn updates_climb_to_parent_and_descend_to_sibling() {
    let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
    let long = Duration::from_secs(3600);
    // Spawn leaves first so the parent can list them as children.
    let a = CacheNode::spawn(NodeConfig::new("127.0.0.1:0", origin.addr()).with_flush_max(long))
        .expect("leaf a");
    let b = CacheNode::spawn(NodeConfig::new("127.0.0.1:0", origin.addr()).with_flush_max(long))
        .expect("leaf b");
    let parent = CacheNode::spawn(
        NodeConfig::new("127.0.0.1:0", origin.addr())
            .with_children(vec![a.addr(), b.addr()])
            .with_flush_max(long),
    )
    .expect("parent");
    // Leaves flush to the parent (their neighbor set).
    a.set_neighbors(vec![parent.addr()]);
    b.set_neighbors(vec![parent.addr()]);

    let url = "http://t.test/hier";
    let key = bh_md5::url_key(url);

    // A fetches: compulsory miss, then advertises.
    bh_proto::fetch(a.addr(), url).expect("fetch via a");
    a.flush_updates_now();
    // The parent learned the first copy...
    assert_eq!(parent.find_nearest(key), Some(a.machine_id()));
    // ...and queued a downward advertisement; flush it.
    parent.flush_updates_now();
    assert_eq!(
        b.find_nearest(key),
        Some(a.machine_id()),
        "sibling must learn via the parent"
    );

    // B now fetches — directly from A (cache-to-cache through the hint).
    let (src, _) = bh_proto::fetch(b.addr(), url).expect("fetch via b");
    assert_eq!(src, bh_proto::client::Source::Peer(a.machine_id()));

    // B advertises its new copy; the parent already knows a copy → the
    // second-copy update is filtered, not forwarded.
    let filtered_before = parent.stats().updates_filtered;
    b.flush_updates_now();
    assert_eq!(
        parent.stats().updates_filtered,
        filtered_before + 1,
        "second copy must be filtered at the parent (§3.1.2)"
    );
}

#[test]
fn removal_propagates_when_it_changes_knowledge() {
    let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
    let long = Duration::from_secs(3600);
    let a = CacheNode::spawn(NodeConfig::new("127.0.0.1:0", origin.addr()).with_flush_max(long))
        .expect("leaf a");
    let b = CacheNode::spawn(NodeConfig::new("127.0.0.1:0", origin.addr()).with_flush_max(long))
        .expect("leaf b");
    let parent = CacheNode::spawn(
        NodeConfig::new("127.0.0.1:0", origin.addr())
            .with_children(vec![a.addr(), b.addr()])
            .with_flush_max(long),
    )
    .expect("parent");
    a.set_neighbors(vec![parent.addr()]);
    b.set_neighbors(vec![parent.addr()]);

    let url = "http://t.test/hier-rm";
    let key = bh_md5::url_key(url);
    bh_proto::fetch(a.addr(), url).expect("fetch");
    a.flush_updates_now();
    parent.flush_updates_now();
    assert!(b.find_nearest(key).is_some());

    // A drops the copy: the non-presence climbs and descends.
    a.invalidate(url);
    a.flush_updates_now();
    assert_eq!(parent.find_nearest(key), None);
    parent.flush_updates_now();
    assert_eq!(b.find_nearest(key), None, "sibling must unlearn the hint");
}

#[test]
fn filtering_reduces_parent_egress() {
    // Many copies of the same object: the parent forwards the first Add
    // and filters the rest — the Table 5 effect, on the wire.
    let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
    let long = Duration::from_secs(3600);
    let leaves: Vec<CacheNode> = (0..4)
        .map(|_| {
            CacheNode::spawn(NodeConfig::new("127.0.0.1:0", origin.addr()).with_flush_max(long))
                .expect("leaf")
        })
        .collect();
    let parent = CacheNode::spawn(
        NodeConfig::new("127.0.0.1:0", origin.addr())
            .with_children(leaves.iter().map(|l| l.addr()).collect())
            .with_flush_max(long),
    )
    .expect("parent");
    for l in &leaves {
        l.set_neighbors(vec![parent.addr()]);
    }

    let url = "http://t.test/popular";
    for l in &leaves {
        bh_proto::fetch(l.addr(), url).expect("fetch");
        l.flush_updates_now();
    }
    let stats = parent.stats();
    // 4 adds received; only the first changed knowledge.
    assert_eq!(stats.updates_received, 4);
    assert_eq!(stats.updates_filtered, 3, "three duplicate copies filtered");
}

#[test]
fn tree_helper_smoke() {
    // The simple helper (leaves know parent, parent knows nobody) still
    // lets updates climb.
    let (_origin, parent, a, _b) = tree();
    a.set_neighbors(vec![parent.addr()]);
    let url = "http://t.test/smoke";
    bh_proto::fetch(a.addr(), url).expect("fetch");
    a.flush_updates_now();
    assert_eq!(
        parent.find_nearest(bh_md5::url_key(url)),
        Some(a.machine_id())
    );
}
