//! End-to-end simulation invariants across all three workload models —
//! the paper's headline claims, asserted as (loose) quantitative bands.

use bh_core::sim::{SimConfig, Simulator};
use bh_core::strategies::StrategyKind;
use bh_netmodel::{CostModel, RousskovModel, TestbedModel};
use bh_trace::WorkloadSpec;

const SEED: u64 = 20260706;

fn specs() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::dec().scaled(0.004),
        WorkloadSpec::berkeley().scaled(0.01),
        WorkloadSpec::prodigy().scaled(0.02),
    ]
}

#[test]
fn hints_beat_hierarchy_on_every_workload_and_model() {
    let tb = TestbedModel::new();
    let min = RousskovModel::min();
    let max = RousskovModel::max();
    let models: Vec<&dyn CostModel> = vec![&tb, &min, &max];
    for spec in specs() {
        let sim = Simulator::new(SimConfig::infinite(&spec));
        let hier = sim.run(&spec, SEED, StrategyKind::DataHierarchy, &models);
        let hint = sim.run(&spec, SEED, StrategyKind::HintHierarchy, &models);
        for model in ["Testbed", "Min", "Max"] {
            let h = hier.mean_response_ms(model).unwrap();
            let s = hint.mean_response_ms(model).unwrap();
            let speedup = h / s;
            // Paper Table 6: 1.28–2.79 across workloads and models. Allow a
            // wide band; the *direction* must never flip.
            assert!(
                (1.05..4.0).contains(&speedup),
                "{} {model}: speedup {speedup:.2} outside band (hier {h:.0} ms, hints {s:.0} ms)",
                spec.name
            );
        }
    }
}

#[test]
fn speedup_largest_under_max_load_parameters() {
    // The paper: "the largest speedups come when the cost of accessing
    // remote data is high such as the Max value in Rousskov's measurements."
    let tb = TestbedModel::new();
    let min = RousskovModel::min();
    let max = RousskovModel::max();
    let models: Vec<&dyn CostModel> = vec![&tb, &min, &max];
    let spec = WorkloadSpec::dec().scaled(0.004);
    let sim = Simulator::new(SimConfig::infinite(&spec));
    let hier = sim.run(&spec, SEED, StrategyKind::DataHierarchy, &models);
    let hint = sim.run(&spec, SEED, StrategyKind::HintHierarchy, &models);
    let speedup = |m: &str| hier.mean_response_ms(m).unwrap() / hint.mean_response_ms(m).unwrap();
    assert!(
        speedup("Max") > speedup("Min"),
        "Max speedup {:.2} should exceed Min speedup {:.2}",
        speedup("Max"),
        speedup("Min")
    );
}

#[test]
fn directory_sits_between_hierarchy_and_hints() {
    // The synchronous central lookup costs the directory architecture a
    // round trip the hint architecture answers locally.
    let tb = TestbedModel::new();
    let models: Vec<&dyn CostModel> = vec![&tb];
    let spec = WorkloadSpec::dec().scaled(0.004);
    let sim = Simulator::new(SimConfig::infinite(&spec));
    let hier = sim
        .run(&spec, SEED, StrategyKind::DataHierarchy, &models)
        .mean_response_ms("Testbed")
        .unwrap();
    let dir = sim
        .run(&spec, SEED, StrategyKind::CentralDirectory, &models)
        .mean_response_ms("Testbed")
        .unwrap();
    let hint = sim
        .run(&spec, SEED, StrategyKind::HintHierarchy, &models)
        .mean_response_ms("Testbed")
        .unwrap();
    assert!(
        hint < dir,
        "hints ({hint:.0}) should beat the directory ({dir:.0})"
    );
    assert!(
        dir < hier,
        "the directory ({dir:.0}) should beat the hierarchy ({hier:.0})"
    );
}

#[test]
fn push_improves_hints_and_ideal_bounds_push() {
    let tb = TestbedModel::new();
    let models: Vec<&dyn CostModel> = vec![&tb];
    let spec = WorkloadSpec::dec().scaled(0.004);
    let sim = Simulator::new(SimConfig::constrained(&spec));
    let t = |kind: StrategyKind| {
        sim.run(&spec, SEED, kind, &models)
            .mean_response_ms("Testbed")
            .unwrap()
    };
    let hints = t(StrategyKind::HintHierarchy);
    let push_all = t(StrategyKind::HintHierarchicalPush(
        bh_core::push::PushFraction::All,
    ));
    let ideal = t(StrategyKind::HintIdealPush);
    assert!(
        push_all < hints,
        "push-all ({push_all:.0}) should beat no-push hints ({hints:.0})"
    );
    assert!(
        ideal <= push_all + 1.0,
        "ideal ({ideal:.0}) must bound push-all ({push_all:.0})"
    );
    let gain = hints / push_all;
    assert!(gain < 2.0, "push gain {gain:.2} implausibly large");
}

#[test]
fn warmup_and_determinism() {
    let tb = TestbedModel::new();
    let models: Vec<&dyn CostModel> = vec![&tb];
    let spec = WorkloadSpec::berkeley().scaled(0.003);
    let sim = Simulator::new(SimConfig::infinite(&spec));
    let a = sim.run(&spec, 9, StrategyKind::HintHierarchy, &models);
    let b = sim.run(&spec, 9, StrategyKind::HintHierarchy, &models);
    assert_eq!(a.metrics.l1_hits, b.metrics.l1_hits);
    assert_eq!(a.metrics.server_fetches, b.metrics.server_fetches);
    assert_eq!(
        a.mean_response_ms("Testbed").unwrap(),
        b.mean_response_ms("Testbed").unwrap(),
        "identical seeds must give identical results"
    );
    assert_eq!(
        a.metrics.warmup_skipped,
        (spec.requests as f64 * 0.10) as u64
    );
}

#[test]
fn hit_rates_rise_with_sharing_on_all_traces() {
    for spec in specs() {
        let r = bh_core::experiments::sharing(&spec, SEED);
        assert!(
            r.hit_ratio[0] < r.hit_ratio[2],
            "{}: L3 ({:.3}) must out-hit L1 ({:.3})",
            spec.name,
            r.hit_ratio[2],
            r.hit_ratio[0]
        );
    }
}

#[test]
fn dec_hit_rates_in_paper_band() {
    // Paper Figure 3 (DEC): ~50% L1, ~62% L2, ~78% L3. The synthetic
    // workload is calibrated to land near those; allow generous slack.
    let spec = WorkloadSpec::dec().scaled(0.004);
    let r = bh_core::experiments::sharing(&spec, SEED);
    assert!(
        (0.30..0.68).contains(&r.hit_ratio[0]),
        "L1 {:.3}",
        r.hit_ratio[0]
    );
    assert!(
        (0.40..0.78).contains(&r.hit_ratio[1]),
        "L2 {:.3}",
        r.hit_ratio[1]
    );
    assert!(
        (0.55..0.90).contains(&r.hit_ratio[2]),
        "L3 {:.3}",
        r.hit_ratio[2]
    );
    assert!(
        r.hit_ratio[2] - r.hit_ratio[0] > 0.08,
        "sharing gradient too flat"
    );
}
