//! Golden regression tests: pin the paper-facing numbers digit-for-digit
//! so a refactor that drifts the analytics is caught immediately.
//!
//! * Table 3 (Rousskov Squid measurements): all 24 derived totals —
//!   {Min, Max} × {Leaf, Intermediate, Root, Miss} ×
//!   {hierarchical, client-direct, via-L1} — exactly as printed in the
//!   paper.
//! * Figure 2 (miss-class breakdown): per-read rates for the DEC workload
//!   at a tiny `--scale 0.05`, pinned to three decimals, plus the
//!   orderings the paper's discussion rests on (capacity dominates at
//!   1 GB, hits dominate at 5 GB, compulsory is scale-invariant).

use bh_core::experiments::{miss_breakdown, MissBreakdownPoint};
use bh_netmodel::{Level, RousskovModel};
use bh_trace::WorkloadSpec;

/// The totals printed in the paper's Table 3, in milliseconds:
/// rows are Leaf (L1 hit), Intermediate (L2 hit), Root (L3 hit), Miss;
/// columns are (hierarchical, client-direct, via-L1).
const TABLE3_MIN: [(f64, f64, f64); 4] = [
    (163.0, 163.0, 163.0),
    (271.0, 180.0, 271.0),
    (531.0, 320.0, 411.0),
    (981.0, 550.0, 641.0),
];
const TABLE3_MAX: [(f64, f64, f64); 4] = [
    (352.0, 352.0, 352.0),
    (2767.0, 2550.0, 2767.0),
    (4667.0, 2850.0, 3067.0),
    (7217.0, 3200.0, 3417.0),
];

fn table3_totals(m: &RousskovModel) -> [(f64, f64, f64); 4] {
    let row = |level: Level| {
        (
            m.total_hierarchical_ms(level),
            m.total_direct_ms(level),
            m.total_via_l1_ms(level),
        )
    };
    [
        row(Level::L1),
        row(Level::L2),
        row(Level::L3),
        (
            m.total_hierarchical_miss_ms(),
            m.direct_miss_ms(),
            m.via_l1_miss_ms(),
        ),
    ]
}

fn assert_totals_exact(got: [(f64, f64, f64); 4], want: [(f64, f64, f64); 4], variant: &str) {
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(g, w, "{variant} row {i}: got {g:?}, paper says {w:?}");
    }
}

#[test]
fn table3_min_totals_match_paper_digit_for_digit() {
    assert_totals_exact(table3_totals(&RousskovModel::min()), TABLE3_MIN, "Min");
}

#[test]
fn table3_max_totals_match_paper_digit_for_digit() {
    assert_totals_exact(table3_totals(&RousskovModel::max()), TABLE3_MAX, "Max");
}

/// Per-read rate of a named miss class, rounded to three decimals (the
/// resolution Figure 2 is read at).
fn rate3(p: &MissBreakdownPoint, class: &str) -> f64 {
    let v = p
        .read_rates
        .iter()
        .find(|(n, _)| n == class)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("missing class {class}"));
    (v * 1000.0).round() / 1000.0
}

/// Figure 2, DEC, `--scale 0.05`, seed 42: the same call `fig2` makes for
/// its 1 GB and 5 GB points (full-scale-equivalent sizes, so the simulated
/// caches are 0.05 and 0.25 GB).
fn fig2_dec_points() -> Vec<MissBreakdownPoint> {
    let spec = WorkloadSpec::dec().scaled(0.05);
    miss_breakdown(&spec, 42, &[1.0 * 0.05, 5.0 * 0.05], 0.1)
}

#[test]
fn fig2_dec_rates_pinned_at_tiny_scale() {
    let points = fig2_dec_points();
    let (gb1, gb5) = (&points[0], &points[1]);

    assert_eq!(rate3(gb1, "hit"), 0.267);
    assert_eq!(rate3(gb1, "compulsory"), 0.180);
    assert_eq!(rate3(gb1, "capacity"), 0.487);
    assert_eq!(rate3(gb1, "error"), 0.020);
    assert_eq!(rate3(gb1, "uncachable"), 0.047);

    assert_eq!(rate3(gb5, "hit"), 0.540);
    assert_eq!(rate3(gb5, "compulsory"), 0.180);
    assert_eq!(rate3(gb5, "capacity"), 0.213);
    assert_eq!(rate3(gb5, "error"), 0.020);
    assert_eq!(rate3(gb5, "uncachable"), 0.047);

    assert_eq!((gb1.total_miss_ratio * 1000.0).round() / 1000.0, 0.733);
    assert_eq!((gb5.total_miss_ratio * 1000.0).round() / 1000.0, 0.460);
}

#[test]
fn fig2_dec_miss_class_orderings_match_paper() {
    let points = fig2_dec_points();
    let (gb1, gb5) = (&points[0], &points[1]);

    // At 1 GB the cache is capacity-starved: capacity > hit > compulsory.
    assert!(rate3(gb1, "capacity") > rate3(gb1, "hit"));
    assert!(rate3(gb1, "hit") > rate3(gb1, "compulsory"));

    // At 5 GB hits dominate and capacity falls below compulsory-adjacent
    // levels: hit > capacity and capacity shrank vs the 1 GB point.
    assert!(rate3(gb5, "hit") > rate3(gb5, "capacity"));
    assert!(rate3(gb5, "capacity") < rate3(gb1, "capacity"));
    assert!(rate3(gb5, "hit") > rate3(gb1, "hit"));

    // Compulsory misses are a property of the trace, not the cache size.
    assert_eq!(rate3(gb1, "compulsory"), rate3(gb5, "compulsory"));
}
