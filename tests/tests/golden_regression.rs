//! Golden regression tests: pin the paper-facing numbers digit-for-digit
//! so a refactor that drifts the analytics is caught immediately.
//!
//! * Table 3 (Rousskov Squid measurements): all 24 derived totals —
//!   {Min, Max} × {Leaf, Intermediate, Root, Miss} ×
//!   {hierarchical, client-direct, via-L1} — exactly as printed in the
//!   paper.
//! * Figure 2 (miss-class breakdown): per-read rates for the DEC workload
//!   at a tiny `--scale 0.05`, pinned to three decimals, plus the
//!   orderings the paper's discussion rests on (capacity dominates at
//!   1 GB, hits dominate at 5 GB, compulsory is scale-invariant).

use bh_core::experiments::{miss_breakdown, MissBreakdownPoint};
use bh_netmodel::{Level, RousskovModel};
use bh_trace::WorkloadSpec;

/// The totals printed in the paper's Table 3, in milliseconds:
/// rows are Leaf (L1 hit), Intermediate (L2 hit), Root (L3 hit), Miss;
/// columns are (hierarchical, client-direct, via-L1).
const TABLE3_MIN: [(f64, f64, f64); 4] = [
    (163.0, 163.0, 163.0),
    (271.0, 180.0, 271.0),
    (531.0, 320.0, 411.0),
    (981.0, 550.0, 641.0),
];
const TABLE3_MAX: [(f64, f64, f64); 4] = [
    (352.0, 352.0, 352.0),
    (2767.0, 2550.0, 2767.0),
    (4667.0, 2850.0, 3067.0),
    (7217.0, 3200.0, 3417.0),
];

fn table3_totals(m: &RousskovModel) -> [(f64, f64, f64); 4] {
    let row = |level: Level| {
        (
            m.total_hierarchical_ms(level),
            m.total_direct_ms(level),
            m.total_via_l1_ms(level),
        )
    };
    [
        row(Level::L1),
        row(Level::L2),
        row(Level::L3),
        (
            m.total_hierarchical_miss_ms(),
            m.direct_miss_ms(),
            m.via_l1_miss_ms(),
        ),
    ]
}

fn assert_totals_exact(got: [(f64, f64, f64); 4], want: [(f64, f64, f64); 4], variant: &str) {
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(g, w, "{variant} row {i}: got {g:?}, paper says {w:?}");
    }
}

#[test]
fn table3_min_totals_match_paper_digit_for_digit() {
    assert_totals_exact(table3_totals(&RousskovModel::min()), TABLE3_MIN, "Min");
}

#[test]
fn table3_max_totals_match_paper_digit_for_digit() {
    assert_totals_exact(table3_totals(&RousskovModel::max()), TABLE3_MAX, "Max");
}

/// Per-read rate of a named miss class, rounded to three decimals (the
/// resolution Figure 2 is read at).
fn rate3(p: &MissBreakdownPoint, class: &str) -> f64 {
    let v = p
        .read_rates
        .by_name(class)
        .unwrap_or_else(|| panic!("missing class {class}"));
    (v * 1000.0).round() / 1000.0
}

/// Figure 2, DEC, `--scale 0.05`, seed 42: the same call `fig2` makes for
/// its 1 GB and 5 GB points (full-scale-equivalent sizes, so the simulated
/// caches are 0.05 and 0.25 GB).
fn fig2_dec_points() -> Vec<MissBreakdownPoint> {
    let spec = WorkloadSpec::dec().scaled(0.05);
    miss_breakdown(&spec, 42, &[1.0 * 0.05, 5.0 * 0.05], 0.1)
}

#[test]
fn fig2_dec_rates_pinned_at_tiny_scale() {
    let points = fig2_dec_points();
    let (gb1, gb5) = (&points[0], &points[1]);

    assert_eq!(rate3(gb1, "hit"), 0.267);
    assert_eq!(rate3(gb1, "compulsory"), 0.180);
    assert_eq!(rate3(gb1, "capacity"), 0.487);
    assert_eq!(rate3(gb1, "error"), 0.020);
    assert_eq!(rate3(gb1, "uncachable"), 0.047);

    assert_eq!(rate3(gb5, "hit"), 0.540);
    assert_eq!(rate3(gb5, "compulsory"), 0.180);
    assert_eq!(rate3(gb5, "capacity"), 0.213);
    assert_eq!(rate3(gb5, "error"), 0.020);
    assert_eq!(rate3(gb5, "uncachable"), 0.047);

    assert_eq!((gb1.total_miss_ratio * 1000.0).round() / 1000.0, 0.733);
    assert_eq!((gb5.total_miss_ratio * 1000.0).round() / 1000.0, 0.460);
}

#[test]
fn fig2_dec_miss_class_orderings_match_paper() {
    let points = fig2_dec_points();
    let (gb1, gb5) = (&points[0], &points[1]);

    // At 1 GB the cache is capacity-starved: capacity > hit > compulsory.
    assert!(rate3(gb1, "capacity") > rate3(gb1, "hit"));
    assert!(rate3(gb1, "hit") > rate3(gb1, "compulsory"));

    // At 5 GB hits dominate and capacity falls below compulsory-adjacent
    // levels: hit > capacity and capacity shrank vs the 1 GB point.
    assert!(rate3(gb5, "hit") > rate3(gb5, "capacity"));
    assert!(rate3(gb5, "capacity") < rate3(gb1, "capacity"));
    assert!(rate3(gb5, "hit") > rate3(gb1, "hit"));

    // Compulsory misses are a property of the trace, not the cache size.
    assert_eq!(rate3(gb1, "compulsory"), rate3(gb5, "compulsory"));
}

/// The same Figure 2 pins, but routed through the *parallel engine* the
/// suite uses: one shared [`bh_trace::TraceCache`] arena per workload and
/// per-point jobs on an 8-worker [`bh_simcore::par::sweep`]. A drift here
/// with `fig2_dec_rates_pinned_at_tiny_scale` green would mean the arena
/// replay or the sweep changed the numbers.
#[test]
fn fig2_dec_rates_survive_the_parallel_engine() {
    use bh_core::experiments::miss_breakdown_point;
    use bh_trace::TraceCache;

    let spec = WorkloadSpec::dec().scaled(0.05);
    let sizes = vec![1.0 * 0.05, 5.0 * 0.05];
    let points: Vec<MissBreakdownPoint> = bh_simcore::par::sweep(8, sizes, |_, gb| {
        miss_breakdown_point(&TraceCache::get(&spec, 42), gb, 0.1)
    });

    let serial = fig2_dec_points();
    for (parallel, serial) in points.iter().zip(&serial) {
        for class in ["hit", "compulsory", "capacity", "error", "uncachable"] {
            assert_eq!(
                rate3(parallel, class),
                rate3(serial, class),
                "class {class} differs between parallel and serial engines"
            );
        }
        assert_eq!(parallel.total_miss_ratio, serial.total_miss_ratio);
    }
    assert_eq!(rate3(&points[0], "hit"), 0.267);
    assert_eq!(rate3(&points[0], "capacity"), 0.487);
    assert_eq!(rate3(&points[1], "hit"), 0.540);
    assert_eq!(rate3(&points[1], "capacity"), 0.213);
}

/// The replacement-policy ablation rows at `--scale 0.05`, seed 42, as
/// computed by `replacement_sweep` — LRU and GreedyDual-Size next to the
/// seeded-Random arm, pinned digit for digit. GDS must beat LRU must
/// beat Random on request hit rate (Random evicts hot objects as readily
/// as cold ones), and none of the three may drift by a single bit.
#[test]
fn ablation_replacement_rows_pinned_through_the_parallel_engine() {
    use bh_bench::runners::ablations::replacement_sweep;

    let spec = WorkloadSpec::dec().scaled(0.05);
    let rows_at = |jobs: usize| -> Vec<Vec<(String, f64)>> {
        bh_simcore::par::sweep(jobs, vec![42u64, 43, 44, 45], |_, seed| {
            replacement_sweep(&spec, seed)
        })
    };
    let serial = rows_at(1);
    let parallel = rows_at(8);
    assert_eq!(
        serial, parallel,
        "replacement rows differ between --jobs 1 and --jobs 8"
    );

    let seed42 = &serial[0];
    assert_eq!(
        *seed42,
        vec![
            ("LRU".to_string(), 0.666707696244146),
            ("GreedyDual-Size".to_string(), 0.7558791830784977),
            ("Random".to_string(), 0.6188329637440685),
        ],
        "seed-42 replacement rows must match digit for digit"
    );
    for (seed, rows) in [42u64, 43, 44, 45].into_iter().zip(&serial) {
        let rate = |label: &str| {
            rows.iter()
                .find(|(l, _)| l == label)
                .unwrap_or_else(|| panic!("missing {label} row"))
                .1
        };
        assert!(
            rate("GreedyDual-Size") > rate("LRU") && rate("LRU") > rate("Random"),
            "seed {seed}: expected GDS > LRU > Random, got {rows:?}"
        );
    }
}

/// Partial mirror of the `table3` JSON artifact (extra fields are ignored
/// by the derived deserializer).
#[derive(serde::Deserialize)]
struct Table3ArtifactRow {
    total_hierarchical_ms: f64,
    total_direct_ms: f64,
    total_via_l1_ms: f64,
}

#[derive(serde::Deserialize)]
struct Table3Artifact {
    variant: String,
    rows: Vec<Table3ArtifactRow>,
}

/// The versioned Report envelope every artifact ships in (see
/// `bh_bench::report`); the payload is the pre-envelope artifact body.
#[derive(serde::Deserialize)]
struct Table3Envelope {
    schema_version: u64,
    artifact: String,
    payload: Vec<Table3Artifact>,
}

/// Table 3 through the suite engine end-to-end: plan → 8-worker sweep →
/// finish → JSON artifact, then assert the artifact carries the paper's
/// 24 totals digit for digit.
#[test]
fn table3_artifact_from_suite_engine_matches_paper() {
    use bh_bench::suite::Experiment;

    let out = std::env::temp_dir().join(format!("bh-golden-table3-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    let exp = bh_bench::runners::table3::Table3;
    let args = bh_bench::Args {
        scale: 1.0,
        seed: 42,
        trace: "all".to_string(),
        out: out.clone(),
        jobs: 8,
    };
    let plan = exp.plan(&args);
    let results = bh_simcore::par::sweep(args.jobs, plan, |_, j| j());
    exp.finish(&args, results);

    let json = std::fs::read_to_string(out.join("table3.json")).expect("table3 artifact");
    let envelope: Table3Envelope = serde_json::from_str(&json).expect("parse table3 artifact");
    assert_eq!(envelope.schema_version, bh_bench::report::SCHEMA_VERSION);
    assert_eq!(envelope.artifact, "table3");
    let tables = envelope.payload;
    assert_eq!(tables.len(), 2);
    for (table, want) in tables.iter().zip([TABLE3_MIN, TABLE3_MAX]) {
        assert_eq!(table.rows.len(), 4, "{}", table.variant);
        for (row, (h, d, v)) in table.rows.iter().zip(want) {
            assert_eq!(
                row.total_hierarchical_ms, h,
                "{} hierarchical",
                table.variant
            );
            assert_eq!(row.total_direct_ms, d, "{} direct", table.variant);
            assert_eq!(row.total_via_l1_ms, v, "{} via-L1", table.variant);
        }
    }
}
