//! Determinism of the parallel experiment engine.
//!
//! The suite's contract is that `--jobs` is invisible in the results: jobs
//! are independent deterministic simulations and the work-stealing sweep
//! preserves submission order. These tests pin that contract:
//!
//! * the fig2, fig5, and fig8 grids produce **byte-identical** JSON
//!   artifacts at `--jobs 1` and `--jobs 8`;
//! * replaying a [`MaterializedTrace`] arena yields exactly the record
//!   stream a fresh [`TraceGenerator`] produces, for all three workloads.

use bh_bench::suite::Experiment;
use bh_bench::Args;
use std::path::PathBuf;

/// A per-test scratch directory under the target dir (unique per process,
/// so parallel test binaries don't collide).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bh-determinism-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Plans, sweeps (over `jobs` workers), and finishes one experiment, then
/// returns the raw bytes of its JSON artifact.
fn artifact_bytes(exp: &dyn Experiment, jobs: usize, out: PathBuf) -> Vec<u8> {
    let args = Args {
        scale: 0.002,
        seed: 42,
        trace: "all".to_string(),
        out: out.clone(),
        jobs,
    };
    let plan = exp.plan(&args);
    let results = bh_simcore::par::sweep(jobs, plan, |_, j| j());
    exp.finish(&args, results);
    std::fs::read(out.join(format!("{}.json", exp.name()))).expect("read artifact")
}

fn assert_jobs_invisible(exp: &dyn Experiment) {
    let serial = artifact_bytes(exp, 1, scratch(&format!("{}-j1", exp.name())));
    let parallel = artifact_bytes(exp, 8, scratch(&format!("{}-j8", exp.name())));
    assert!(!serial.is_empty(), "{}: empty artifact", exp.name());
    assert_eq!(
        serial,
        parallel,
        "{}: --jobs 1 and --jobs 8 artifacts differ",
        exp.name()
    );
}

#[test]
fn fig2_artifact_is_identical_at_jobs_1_and_8() {
    assert_jobs_invisible(&bh_bench::runners::fig2::Fig2);
}

#[test]
fn fig5_artifact_is_identical_at_jobs_1_and_8() {
    assert_jobs_invisible(&bh_bench::runners::fig5::Fig5);
}

#[test]
fn fig8_artifact_is_identical_at_jobs_1_and_8() {
    assert_jobs_invisible(&bh_bench::runners::fig8::Fig8);
}

#[test]
fn materialized_replay_matches_fresh_generation_for_all_workloads() {
    use bh_trace::{MaterializedTrace, TraceGenerator, WorkloadSpec};
    for spec in [
        WorkloadSpec::dec(),
        WorkloadSpec::berkeley(),
        WorkloadSpec::prodigy(),
    ] {
        let spec = spec.scaled(0.002);
        let seed = 42;
        let arena = MaterializedTrace::generate(&spec, seed);
        let fresh: Vec<_> = TraceGenerator::new(&spec, seed).collect();
        assert_eq!(arena.len(), fresh.len(), "{}: record count", spec.name);
        for (i, (replayed, generated)) in arena.iter().zip(fresh).enumerate() {
            assert_eq!(
                replayed, generated,
                "{}: record {i} diverges between replay and generation",
                spec.name
            );
        }
    }
}
