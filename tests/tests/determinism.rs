//! Determinism of the parallel experiment engine.
//!
//! The suite's contract is that `--jobs` is invisible in the results: jobs
//! are independent deterministic simulations and the work-stealing sweep
//! preserves submission order. These tests pin that contract:
//!
//! * the fig2, fig5, and fig8 grids produce **byte-identical** JSON
//!   artifacts at `--jobs 1` and `--jobs 8`;
//! * replaying a [`MaterializedTrace`] arena yields exactly the record
//!   stream a fresh [`TraceGenerator`] produces, for all three workloads;
//! * two chaos runs of the same seeded plan produce byte-identical
//!   `loadgen_chaos.json`, `loadgen_chaos_events.log`, and
//!   `obs_dump.json` artifacts, even though they drive two distinct live
//!   meshes (the measured numbers go to `loadgen_chaos_metrics.json`,
//!   which makes no such promise);
//! * the same contract for the scenario harness: two runs of the seeded
//!   flash-crowd scenario (two-level hierarchy, `CrashParent` window)
//!   produce byte-identical `scenario_flash_crowd.json`, event log, and
//!   `obs_dump.json`, and the scenario lag experiment's artifact is
//!   identical at `--jobs 1` and `--jobs 8`;
//! * the suite's `obs_dump.json` — the `Determinism::Deterministic`
//!   slice of the obs registry — is byte-identical at `--jobs 1` and
//!   `--jobs 8`.

use bh_bench::suite::Experiment;
use bh_bench::Args;
use std::path::PathBuf;

/// A per-test scratch directory under the target dir (unique per process,
/// so parallel test binaries don't collide).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bh-determinism-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Plans, sweeps (over `jobs` workers), and finishes one experiment, then
/// returns the raw bytes of its JSON artifact.
fn artifact_bytes(exp: &dyn Experiment, jobs: usize, out: PathBuf) -> Vec<u8> {
    let args = Args {
        scale: 0.002,
        seed: 42,
        trace: "all".to_string(),
        out: out.clone(),
        jobs,
    };
    let plan = exp.plan(&args);
    let results = bh_simcore::par::sweep(jobs, plan, |_, j| j());
    exp.finish(&args, results);
    std::fs::read(out.join(format!("{}.json", exp.name()))).expect("read artifact")
}

fn assert_jobs_invisible(exp: &dyn Experiment) {
    let serial = artifact_bytes(exp, 1, scratch(&format!("{}-j1", exp.name())));
    let parallel = artifact_bytes(exp, 8, scratch(&format!("{}-j8", exp.name())));
    assert!(!serial.is_empty(), "{}: empty artifact", exp.name());
    assert_eq!(
        serial,
        parallel,
        "{}: --jobs 1 and --jobs 8 artifacts differ",
        exp.name()
    );
}

#[test]
fn fig2_artifact_is_identical_at_jobs_1_and_8() {
    assert_jobs_invisible(&bh_bench::runners::fig2::Fig2);
}

#[test]
fn fig5_artifact_is_identical_at_jobs_1_and_8() {
    assert_jobs_invisible(&bh_bench::runners::fig5::Fig5);
}

#[test]
fn fig8_artifact_is_identical_at_jobs_1_and_8() {
    assert_jobs_invisible(&bh_bench::runners::fig8::Fig8);
}

/// Runs the chaos harness once into a scratch dir and returns the bytes
/// of the deterministic artifact, the event log, and the obs dump.
fn chaos_artifacts(tag: &str) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    use bh_bench::chaos::{run_chaos, ChaosOptions};
    use bh_proto::chaos::{FaultKind, FaultPlan, FaultWindow};

    let out = scratch(tag);
    let args = Args {
        scale: 1.0,
        seed: 7,
        trace: "custom".to_string(),
        out: out.clone(),
        jobs: 1,
    };
    // Partition-only plan: no crash windows, so the run never waits on
    // wall-clock failure detection and stays fast.
    let plan = FaultPlan {
        seed: 7,
        windows: vec![FaultWindow {
            fault: FaultKind::Partition { a: 0, b: 2 },
            pre: 200,
            hold: 200,
            post: 200,
        }],
    };
    let opts = ChaosOptions {
        nodes: 3,
        clients: 4,
        ..ChaosOptions::default()
    };
    assert!(run_chaos(&args, &opts, plan), "chaos run must recover");
    let json = std::fs::read(out.join("loadgen_chaos.json")).expect("read chaos artifact");
    let log = std::fs::read(out.join("loadgen_chaos_events.log")).expect("read event log");
    let obs = std::fs::read(out.join("obs_dump.json")).expect("read obs dump");
    (json, log, obs)
}

/// The statically-guarded byte-identity contract: `loadgen_chaos.json`,
/// the event log, and `obs_dump.json` (the deterministic slice of the
/// chaos obs registry) are pure functions of the plan and seed, so two
/// independent live-mesh runs must produce them byte for byte.
#[test]
fn chaos_plan_artifacts_are_byte_identical_across_runs() {
    let (json_a, log_a, obs_a) = chaos_artifacts("chaos-a");
    let (json_b, log_b, obs_b) = chaos_artifacts("chaos-b");
    assert!(!json_a.is_empty(), "empty chaos artifact");
    assert_eq!(
        json_a, json_b,
        "loadgen_chaos.json differs between two runs of the same plan"
    );
    assert_eq!(
        log_a, log_b,
        "loadgen_chaos_events.log differs between two runs of the same plan"
    );
    assert!(!obs_a.is_empty(), "empty obs dump");
    assert_eq!(
        obs_a, obs_b,
        "obs_dump.json differs between two runs of the same plan"
    );
}

/// Runs the flash-crowd scenario (two-level hierarchy, `CrashParent`
/// window) into a scratch dir and returns the bytes of its deterministic
/// artifact, event log, and obs dump.
fn scenario_artifacts(tag: &str) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    use bh_bench::scenario::{run_scenario, Scenario};

    let out = scratch(tag);
    let args = Args {
        scale: 1.0,
        seed: 7,
        trace: "custom".to_string(),
        out: out.clone(),
        jobs: 1,
    };
    let scenario = Scenario::flash_crowd(7);
    assert!(
        run_scenario(&args, &scenario),
        "scenario run must recover (children re-homed, churn parity held)"
    );
    let json = std::fs::read(out.join("scenario_flash_crowd.json")).expect("read artifact");
    let log = std::fs::read(out.join("scenario_flash_crowd_events.log")).expect("read log");
    let obs = std::fs::read(out.join("obs_dump.json")).expect("read obs dump");
    (json, log, obs)
}

/// The scenario harness extends the chaos byte-identity contract to the
/// hierarchy: `scenario_flash_crowd.json`, its event log, and the obs
/// dump are pure functions of the seeded scenario, byte-identical across
/// two live-mesh runs — even though each run kills and revives a parent.
#[test]
fn scenario_artifacts_are_byte_identical_across_runs() {
    let (json_a, log_a, obs_a) = scenario_artifacts("scenario-a");
    let (json_b, log_b, obs_b) = scenario_artifacts("scenario-b");
    assert!(!json_a.is_empty(), "empty scenario artifact");
    assert_eq!(
        json_a, json_b,
        "scenario_flash_crowd.json differs between two runs of the same scenario"
    );
    assert_eq!(
        log_a, log_b,
        "scenario_flash_crowd_events.log differs between two runs"
    );
    assert!(!obs_a.is_empty(), "empty obs dump");
    assert_eq!(obs_a, obs_b, "obs_dump.json differs between two runs");
}

/// The scenario lag experiment writes `scenario_flash_crowd_lag.json`
/// (not `<name>.json`), so it gets its own jobs-invisibility pin.
#[test]
fn scenario_lag_artifact_is_identical_at_jobs_1_and_8() {
    let exp = bh_bench::runners::scenario::ScenarioLag;
    let bytes_at = |jobs: usize, tag: &str| {
        let out = scratch(tag);
        let args = Args {
            scale: 0.002,
            seed: 42,
            trace: "all".to_string(),
            out: out.clone(),
            jobs,
        };
        let plan = exp.plan(&args);
        let results = bh_simcore::par::sweep(jobs, plan, |_, j| j());
        exp.finish(&args, results);
        std::fs::read(out.join("scenario_flash_crowd_lag.json")).expect("read artifact")
    };
    let serial = bytes_at(1, "scenlag-j1");
    let parallel = bytes_at(8, "scenlag-j8");
    assert!(!serial.is_empty(), "empty scenario lag artifact");
    assert_eq!(
        serial, parallel,
        "scenario_flash_crowd_lag.json differs between --jobs 1 and --jobs 8"
    );
}

/// Runs a one-experiment suite at tiny scale and returns the bytes of
/// the `obs_dump.json` it writes (the `Determinism::Deterministic` slice
/// of the suite registry — job counts, not timings).
fn suite_obs_dump_bytes(jobs: usize, tag: &str) -> Vec<u8> {
    use bh_bench::report::write_obs_dump;
    use bh_bench::suite::{obs_registry, run_suite};

    let out = scratch(tag);
    let args = Args {
        scale: 0.002,
        seed: 42,
        trace: "all".to_string(),
        out: out.clone(),
        jobs,
    };
    let experiments: Vec<Box<dyn Experiment>> = vec![Box::new(bh_bench::runners::fig2::Fig2)];
    let timings = run_suite(&experiments, std::slice::from_ref(&args), jobs);
    write_obs_dump(&args, &obs_registry(&timings));
    std::fs::read(out.join("obs_dump.json")).expect("read obs dump")
}

/// `write_obs_dump` keeps only `Determinism::Deterministic` metrics, so
/// the suite's obs dump must be byte-identical at `--jobs 1` and `--jobs
/// 8` even though the measured phase timings in the registry differ.
#[test]
fn suite_obs_dump_is_identical_at_jobs_1_and_8() {
    let serial = suite_obs_dump_bytes(1, "obs-j1");
    let parallel = suite_obs_dump_bytes(8, "obs-j8");
    assert!(!serial.is_empty(), "empty suite obs dump");
    assert_eq!(
        serial, parallel,
        "obs_dump.json differs between --jobs 1 and --jobs 8"
    );
}

#[test]
fn materialized_replay_matches_fresh_generation_for_all_workloads() {
    use bh_trace::{MaterializedTrace, TraceGenerator, WorkloadSpec};
    for spec in [
        WorkloadSpec::dec(),
        WorkloadSpec::berkeley(),
        WorkloadSpec::prodigy(),
    ] {
        let spec = spec.scaled(0.002);
        let seed = 42;
        let arena = MaterializedTrace::generate(&spec, seed);
        let fresh: Vec<_> = TraceGenerator::new(&spec, seed).collect();
        assert_eq!(arena.len(), fresh.len(), "{}: record count", spec.name);
        for (i, (replayed, generated)) in arena.iter().zip(fresh).enumerate() {
            assert_eq!(
                replayed, generated,
                "{}: record {i} diverges between replay and generation",
                spec.name
            );
        }
    }
}
