//! End-to-end tests of the mesh API: a live mesh driven *entirely*
//! through the path-addressed namespace (`MetaRequest`/`MetaReply`
//! frames) — metrics scrapes, hint reads, capability discovery, and
//! control-plane writes. No legacy `StatsRequest`/`TraceRequest` frames
//! appear anywhere in this file: everything an operator or harness
//! needs is one namespace.

use bh_bench::meshapi::{metric_values_from_meta, pick, MeshClient};
use bh_proto::client::{Connection, Source};
use bh_proto::node::{CacheNode, NodeConfig};
use bh_proto::origin::OriginServer;
use bh_proto::wire::{MetaEntry, MetaOp, MetaStatus};
use std::net::SocketAddr;
use std::time::Duration;

/// A full-mesh cluster of `n` nodes plus an origin, flushing hints only
/// on demand.
fn mesh(n: usize) -> (OriginServer, Vec<CacheNode>) {
    let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
    let nodes: Vec<CacheNode> = (0..n)
        .map(|_| {
            CacheNode::spawn(
                NodeConfig::new("127.0.0.1:0", origin.addr())
                    .with_flush_max(Duration::from_secs(3600)),
            )
            .expect("node")
        })
        .collect();
    let addrs: Vec<SocketAddr> = nodes.iter().map(CacheNode::addr).collect();
    for (i, node) in nodes.iter().enumerate() {
        node.set_neighbors(
            addrs
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, a)| *a)
                .collect(),
        );
    }
    (origin, nodes)
}

/// Renders entries as the `obs` CLI would print them.
fn render(entries: &[MetaEntry]) -> String {
    entries
        .iter()
        .map(|e| format!("{} {}\n", e.path, e.value))
        .collect()
}

/// Renders entries with the node-specific `mesh/nodes/<id>` root
/// stripped, so listings from different nodes (different ephemeral
/// ports ⇒ different ids) can be compared byte for byte.
fn render_rootless(entries: &[MetaEntry]) -> String {
    entries
        .iter()
        .map(|e| {
            let suffix = e
                .path
                .strip_prefix("mesh/nodes/")
                .map(|rest| rest.split_once('/').map_or(rest, |(_, s)| s))
                .unwrap_or(&e.path);
            format!("{suffix} {}\n", e.value)
        })
        .collect()
}

/// The acceptance path: a 4-node mesh observed and controlled entirely
/// through the namespace — scrape every node, follow a hint by digest,
/// install a fault window via `Set`, and watch the mesh recover.
#[test]
fn four_node_mesh_driven_entirely_through_the_namespace() {
    let (origin, nodes) = mesh(4);
    let addrs: Vec<SocketAddr> = nodes.iter().map(CacheNode::addr).collect();
    let mesh_client = MeshClient::new(addrs.clone());

    // Discovery: every node lists itself under `mesh/nodes`, and the
    // union over the fan-out client is the whole mesh.
    let listed: Vec<String> = mesh_client
        .list_all("mesh/nodes")
        .expect("list mesh/nodes")
        .into_iter()
        .flat_map(|r| r.entries.into_iter().map(|e| e.value))
        .collect();
    assert_eq!(listed.len(), 4);
    for addr in &addrs {
        assert!(listed.contains(&addr.to_string()), "{addr} not listed");
    }

    // Capability discovery: `meta/P` answers *about* P.
    let caps = mesh_client
        .get(addrs[0], "meta/mesh/nodes/self/control/drain")
        .expect("meta lookup");
    assert_eq!(caps.len(), 1);
    assert!(
        caps[0].value.starts_with("get,set"),
        "drain must be readable and writable: {:?}",
        caps[0]
    );

    // Generate traffic through node 0, then scrape every node's metrics
    // through the namespace (no StatsRequest anywhere).
    let url = "http://t.test/mesh-api";
    let (source, body) = bh_proto::fetch(addrs[0], url).expect("fetch via node 0");
    assert_eq!(source, Source::Origin);
    assert_eq!(origin.request_count(), 1);

    let scraped = mesh_client
        .get_all("mesh/nodes/self/metrics")
        .expect("scrape all nodes");
    assert_eq!(scraped.len(), 4);
    let node0 = metric_values_from_meta(&scraped[0].entries);
    assert_eq!(pick(&node0, "origin_fetches"), 1);
    assert!(pick(&node0, "request_service_micros.count") >= 1);
    for reply in &scraped[1..] {
        let m = metric_values_from_meta(&reply.entries);
        assert_eq!(pick(&m, "origin_fetches"), 0, "only node 0 saw traffic");
    }

    // Propagate node 0's hint over the control plane (`Set
    // control/flush` schedules it), then read the hint back *by digest*
    // from a neighbor's hint branch.
    mesh_client
        .set(addrs[0], "mesh/nodes/self/control/flush", "1")
        .expect("schedule flush");
    let digest_path = format!("mesh/nodes/self/hints/{:016x}", bh_md5::url_key(url));
    let hint = (0..5000)
        .find_map(|_| match mesh_client.get(addrs[1], &digest_path) {
            Ok(entries) => Some(entries),
            Err(_) => {
                std::thread::sleep(Duration::from_millis(2));
                None
            }
        })
        .expect("hint never arrived at node 1");
    assert_eq!(
        hint[0].value,
        addrs[0].to_string(),
        "hint must point at the caching node"
    );

    // Fault window via the control plane: drain node 0. Every client
    // Get is turned away with a Redirect while the window holds.
    mesh_client
        .set(addrs[0], "mesh/nodes/self/control/drain", "true")
        .expect("drain node 0");
    let drained = mesh_client
        .get(addrs[0], "mesh/nodes/self/control/drain")
        .expect("read drain back");
    assert_eq!(drained[0].value, "true");
    let (source, _) = bh_proto::fetch(addrs[0], url).expect("fetch during drain");
    assert_eq!(source, Source::Redirected, "drained node must redirect");

    // ...and a pool fault knob on node 2, readable while armed.
    mesh_client
        .set(
            addrs[2],
            "mesh/nodes/self/pool/fault/rx_latency_micros",
            "700",
        )
        .expect("arm latency");
    let armed = mesh_client
        .get(addrs[2], "mesh/nodes/self/pool/fault/rx_latency_micros")
        .expect("read knob");
    assert_eq!(armed[0].value, "700");

    // Lift both; the mesh recovers: node 0 serves its cached copy
    // locally again, node 2's knob reads 0.
    mesh_client
        .set(addrs[0], "mesh/nodes/self/control/drain", "false")
        .expect("undrain");
    mesh_client
        .set(
            addrs[2],
            "mesh/nodes/self/pool/fault/rx_latency_micros",
            "0",
        )
        .expect("disarm latency");
    let (source, body2) = bh_proto::fetch(addrs[0], url).expect("fetch after undrain");
    assert_eq!(source, Source::Local, "recovered node serves locally");
    assert_eq!(body, body2);
    let disarmed = mesh_client
        .get(addrs[2], "mesh/nodes/self/pool/fault/rx_latency_micros")
        .expect("read knob after lift");
    assert_eq!(disarmed[0].value, "0");

    // The drain window is visible in the namespace metrics afterwards:
    // the turned-away Get was accounted as an admission rejection.
    let after = metric_values_from_meta(
        &mesh_client
            .get(addrs[0], "mesh/nodes/self/metrics")
            .expect("rescrape node 0"),
    );
    assert!(
        pick(&after, "admission_rejects") >= 1,
        "drained Get must be accounted: {after:?}"
    );
}

/// Status-code semantics over the wire: unknown paths are `NotFound`,
/// other nodes' ids are `NotFound` (nodes do not proxy), unsupported
/// ops are `Denied`, malformed segments are `Invalid`.
#[test]
fn namespace_status_codes_over_the_wire() {
    let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
    let node = CacheNode::spawn(NodeConfig::new("127.0.0.1:0", origin.addr())).expect("node");
    let mut conn = Connection::open(node.addr()).expect("open");

    let cases = [
        (MetaOp::Get, "no/such/tree", "", MetaStatus::NotFound),
        (
            MetaOp::Get,
            "mesh/nodes/self/nothing",
            "",
            MetaStatus::NotFound,
        ),
        (
            MetaOp::Get,
            "mesh/nodes/999999/metrics",
            "",
            MetaStatus::NotFound,
        ),
        (
            MetaOp::Set,
            "mesh/nodes/self/metrics/local_hits",
            "1",
            MetaStatus::Denied,
        ),
        (MetaOp::Set, "meta/mesh/nodes", "x", MetaStatus::Denied),
        (
            MetaOp::Get,
            "mesh/nodes/not-a-number/metrics",
            "",
            MetaStatus::Invalid,
        ),
        (
            MetaOp::Get,
            "mesh/nodes/self/hints/not-hex",
            "",
            MetaStatus::Invalid,
        ),
        (
            MetaOp::Set,
            "mesh/nodes/self/control/drain",
            "maybe",
            MetaStatus::Invalid,
        ),
        (
            MetaOp::Set,
            "mesh/nodes/self/pool/fault/drop_per_million",
            "lots",
            MetaStatus::Invalid,
        ),
    ];
    for (op, path, value, want) in cases {
        let (status, entries) = conn.meta(op, path, value).expect("exchange");
        assert_eq!(status, want, "{op:?} {path}");
        assert!(entries.is_empty(), "error replies carry no entries");
    }

    // `self` and the node's numeric id alias the same tree.
    let via_self = conn.meta_list("mesh/nodes/self/metrics").expect("self");
    let id = node.machine_id().0;
    let via_id = conn
        .meta_list(&format!("mesh/nodes/{id}/metrics"))
        .expect("by id");
    assert_eq!(render(&via_self), render(&via_id));
}

/// Determinism (the `List` contract): metric and capability listings
/// are sorted, carry only static values, and are byte-identical across
/// independent runs and across shard/worker counts — `--jobs 1` and
/// `--jobs 8` tooling sees the same catalog.
#[test]
fn listings_are_byte_identical_across_runs_and_shard_counts() {
    let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
    let narrow = CacheNode::spawn(
        NodeConfig::new("127.0.0.1:0", origin.addr())
            .with_shards(1)
            .with_workers(1),
    )
    .expect("narrow node");
    let wide = CacheNode::spawn(
        NodeConfig::new("127.0.0.1:0", origin.addr())
            .with_shards(8)
            .with_workers(8),
    )
    .expect("wide node");

    // Traffic on one node only: measured values must not leak into
    // listings.
    for i in 0..10 {
        bh_proto::fetch(wide.addr(), &format!("http://t.test/d{i}")).expect("fetch");
    }

    let mut narrow_conn = Connection::open(narrow.addr()).expect("open narrow");
    let mut wide_conn = Connection::open(wide.addr()).expect("open wide");

    // `meta` capability listings: fully static, byte-identical.
    let meta_a = narrow_conn.meta_list("meta").expect("meta narrow");
    let meta_b = wide_conn.meta_list("meta").expect("meta wide");
    assert_eq!(render(&meta_a), render(&meta_b));
    assert!(!meta_a.is_empty());

    // Metric listings: identical modulo the node id in the root.
    let m_a = narrow_conn
        .meta_list("mesh/nodes/self/metrics")
        .expect("m a");
    let m_b = wide_conn.meta_list("mesh/nodes/self/metrics").expect("m b");
    assert_eq!(render_rootless(&m_a), render_rootless(&m_b));

    // Sorted, and stable across repeated reads of the same node.
    let paths: Vec<&str> = m_a.iter().map(|e| e.path.as_str()).collect();
    let mut sorted = paths.clone();
    sorted.sort_unstable();
    assert_eq!(paths, sorted, "List must be sorted");
    let again = narrow_conn
        .meta_list("mesh/nodes/self/metrics")
        .expect("m a2");
    assert_eq!(render(&m_a), render(&again));

    // Pool-stats listings obey the same contract.
    let p_a = narrow_conn
        .meta_list("mesh/nodes/self/pool/stats")
        .expect("p a");
    let p_b = wide_conn
        .meta_list("mesh/nodes/self/pool/stats")
        .expect("p b");
    assert_eq!(render_rootless(&p_a), render_rootless(&p_b));
}
