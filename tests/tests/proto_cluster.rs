//! Integration tests of the networked prototype: real TCP nodes on
//! localhost exercising the full hint protocol.

use bh_proto::client::{Connection, Source};
use bh_proto::node::{CacheNode, NodeConfig};
use bh_proto::origin::OriginServer;
use std::net::SocketAddr;
use std::time::Duration;

/// Builds a full-mesh cluster of `n` nodes plus an origin: every node
/// floods its hint-update batches to every other node.
fn mesh(n: usize) -> (OriginServer, Vec<CacheNode>) {
    let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
    let nodes: Vec<CacheNode> = (0..n)
        .map(|_| {
            CacheNode::spawn(
                NodeConfig::new("127.0.0.1:0", origin.addr())
                    .with_flush_max(Duration::from_secs(3600)),
            )
            .expect("node")
        })
        .collect();
    let addrs: Vec<SocketAddr> = nodes.iter().map(|x| x.addr()).collect();
    for (i, node) in nodes.iter().enumerate() {
        node.set_neighbors(
            addrs
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, a)| *a)
                .collect(),
        );
    }
    (origin, nodes)
}

#[test]
fn remote_hit_is_direct_cache_to_cache() {
    let (origin, nodes) = mesh(3);
    // Node 2 knows nodes 0 and 1 as neighbors.
    let url = "http://t.test/direct";
    let (s, body) = bh_proto::fetch(nodes[2].addr(), url).expect("fetch via node2");
    assert_eq!(s, Source::Origin);
    nodes[2].flush_updates_now();
    // Node 0 and 1 now know node 2 has a copy.
    let (s, body2) = bh_proto::fetch(nodes[0].addr(), url).expect("fetch via node0");
    assert_eq!(
        s,
        Source::Peer(nodes[2].machine_id()),
        "must fetch cache-to-cache"
    );
    assert_eq!(body, body2, "peer transfer must deliver identical bytes");
    assert_eq!(
        origin.request_count(),
        1,
        "the origin must be contacted exactly once"
    );
    assert_eq!(
        nodes[2].stats().updates_sent,
        2,
        "one Add record to each of 2 neighbors"
    );
}

#[test]
fn false_positive_probe_then_origin() {
    let (origin, nodes) = mesh(2);
    let url = "http://t.test/fp";
    bh_proto::fetch(nodes[1].addr(), url).expect("seed node1");
    nodes[1].flush_updates_now();
    // Node 0 has a hint → node 1. Now node 1 drops the object silently.
    nodes[1].invalidate(url);
    // (The Remove advertisement has NOT been flushed: stale hint at node 0.)
    let (s, body) = bh_proto::fetch(nodes[0].addr(), url).expect("fetch via node0");
    assert_eq!(
        s,
        Source::Origin,
        "false positive must fall back to the origin"
    );
    assert!(!body.is_empty());
    assert_eq!(nodes[0].stats().false_positives, 1);
    assert_eq!(origin.request_count(), 2);
    // The bad hint was dropped: the next fetch goes straight to origin
    // without a probe.
    nodes[0].invalidate(url);
    bh_proto::fetch(nodes[0].addr(), url).expect("fetch again");
    assert_eq!(
        nodes[0].stats().false_positives,
        1,
        "no second wasted probe"
    );
}

#[test]
fn push_seeds_remote_cache_and_hints() {
    let (origin, nodes) = mesh(2);
    let url = "http://t.test/pushed";
    // Push a copy into node 0 without any demand fetch.
    let mut conn = Connection::open(nodes[0].addr()).expect("open");
    conn.push(url, 1, &b"pushed-body"[..]).expect("push");
    assert_eq!(nodes[0].stats().pushes_received, 1);
    // A client of node 0 now hits locally; the origin is never contacted.
    let (s, body) = bh_proto::fetch(nodes[0].addr(), url).expect("fetch");
    assert_eq!(s, Source::Local);
    assert_eq!(&body[..], b"pushed-body");
    assert_eq!(origin.request_count(), 0);
}

#[test]
fn update_batches_carry_twenty_byte_records() {
    let (_origin, nodes) = mesh(2);
    for i in 0..10 {
        bh_proto::fetch(nodes[1].addr(), &format!("http://t.test/batch/{i}")).expect("fetch");
    }
    nodes[1].flush_updates_now();
    let received = nodes[0].stats().updates_received;
    assert_eq!(received, 10, "all ten Add records must arrive in one batch");
}

#[test]
fn find_nearest_over_the_wire() {
    let (_origin, nodes) = mesh(2);
    let url = "http://t.test/findme";
    let key = bh_md5::url_key(url);
    bh_proto::fetch(nodes[1].addr(), url).expect("seed");
    nodes[1].flush_updates_now();
    let mut conn = Connection::open(nodes[0].addr()).expect("open");
    let loc = conn.find_nearest(key).expect("find").expect("hint present");
    assert_eq!(loc, nodes[1].machine_id());
    assert_eq!(loc.to_addr(), nodes[1].addr());
}

#[test]
fn version_update_at_origin_served_after_refetch() {
    let (origin, nodes) = mesh(1);
    let url = "http://t.test/versioned";
    origin.put(url, 1, &b"v1"[..]);
    let (_, body) = bh_proto::fetch(nodes[0].addr(), url).expect("fetch v1");
    assert_eq!(&body[..], b"v1");
    // Origin publishes v2; the cache still serves v1 until invalidated
    // (strong consistency is invalidation-driven, §2.2.1).
    origin.put(url, 2, &b"v2"[..]);
    let (s, body) = bh_proto::fetch(nodes[0].addr(), url).expect("fetch cached");
    assert_eq!(s, Source::Local);
    assert_eq!(&body[..], b"v1");
    nodes[0].invalidate(url);
    let (s, body) = bh_proto::fetch(nodes[0].addr(), url).expect("fetch v2");
    assert_eq!(s, Source::Origin);
    assert_eq!(&body[..], b"v2");
}

#[test]
fn capacity_pressure_evicts_and_advertises() {
    let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
    let small = CacheNode::spawn(
        NodeConfig::new("127.0.0.1:0", origin.addr())
            .with_data_capacity(bh_simcore::ByteSize::from_kb(80)),
    )
    .expect("node");
    // Synthetic bodies are 1–64 KiB; a few fetches must overflow 80 KiB.
    for i in 0..12 {
        bh_proto::fetch(small.addr(), &format!("http://t.test/evict/{i}")).expect("fetch");
    }
    assert!(
        small.cached_objects() < 12,
        "cache must have evicted under capacity pressure ({} objects)",
        small.cached_objects()
    );
}

#[test]
fn concurrent_clients_hammer_one_node() {
    let (_origin, nodes) = mesh(1);
    let addr = nodes[0].addr();
    let handles: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..25 {
                    let url = format!("http://t.test/conc/{}", (t * 25 + i) % 40);
                    let (_, body) = bh_proto::fetch(addr, &url).expect("fetch");
                    assert!(!body.is_empty());
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let stats = nodes[0].stats();
    assert_eq!(stats.local_hits + stats.origin_fetches, 200);
    assert!(
        stats.local_hits >= 120,
        "40 distinct URLs over 200 fetches: {stats:?}"
    );
}

#[test]
fn mesh_flood_converges_everywhere() {
    let (_origin, nodes) = mesh(3);
    let url = "http://t.test/mesh";
    bh_proto::fetch(nodes[0].addr(), url).expect("seed");
    nodes[0].flush_updates_now();
    let key = bh_md5::url_key(url);
    for other in [1, 2] {
        assert_eq!(
            nodes[other].find_nearest(key),
            Some(nodes[0].machine_id()),
            "node {other} should learn the hint"
        );
    }
}
