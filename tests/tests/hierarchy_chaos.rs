//! Chaos over the hint hierarchy: crash an interior parent mid-replay
//! and verify the tree heals — orphaned children re-home to a fallback
//! parent, hint propagation resumes across the mended edge, no client
//! ever sees an error, and the survivors' live Plaxton repair counts
//! match the analytic churn model (including revival), the same
//! live-vs-analytic parity the flat-mesh chaos tests pin.

use bh_plaxton::NodeSpec;
use bh_proto::chaos::{analytic_churn_for, ChaosMesh, FaultKind, Topology};
use bh_proto::client::Source;
use bh_proto::liveness::PeerHealth;
use bh_proto::node::{mesh_tree_for, NodeConfig};
use bh_proto::replay::{replay_concurrent, ReplayConfig};
use bh_trace::scenario::FlashCrowdSpec;
use bh_trace::{TraceRecord, WorkloadSpec};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Fast failure detection, manual flush/heartbeat driving, bounded
/// teardown — the same tuning the flat-mesh chaos tests use.
fn tuned(c: NodeConfig) -> NodeConfig {
    let mut c = c
        .with_flush_max(Duration::from_secs(3600))
        .with_heartbeat_interval(Duration::from_secs(3600))
        .with_suspicion_threshold(2)
        .with_confirm_death_after(Duration::from_millis(100))
        .with_shutdown_deadline(Duration::from_secs(2));
    c.io_timeout = Duration::from_millis(500);
    c
}

/// Drives heartbeat rounds until every survivor has confirmed `dead`
/// dead, panicking if that takes more than 10 seconds.
fn drive_to_death(mesh: &ChaosMesh, dead: usize) {
    let addr = mesh.addrs()[dead];
    // bh-lint: allow(no-wall-clock, reason = "deadline-bounded wait on a live mesh; failure detection is wall-clock here")
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        mesh.heartbeat_all();
        let confirmed = (0..mesh.addrs().len())
            .filter(|&i| i != dead)
            .filter_map(|i| mesh.node(i))
            .all(|n| n.peer_health(addr) == PeerHealth::Dead);
        if confirmed {
            return;
        }
        assert!(
            // bh-lint: allow(no-wall-clock, reason = "loop bound against the same live-mesh deadline")
            Instant::now() < deadline,
            "survivors never confirmed node {dead} dead"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Replays `records[start..end]` against the mesh from 8 closed-loop
/// clients, asserting zero client errors. While `crashed` names a down
/// node, its client groups are rerouted to `reroute_to` — the clients
/// reconnect, they don't stall or error.
fn replay_slice(
    mesh: &ChaosMesh,
    spec: &WorkloadSpec,
    records: &[TraceRecord],
    range: std::ops::Range<usize>,
    crashed: Option<(usize, usize)>,
) {
    let mut addrs: Vec<SocketAddr> = mesh.addrs().to_vec();
    if let Some((dead, reroute_to)) = crashed {
        addrs[dead] = addrs[reroute_to];
    }
    let mut config = ReplayConfig::flat_out(addrs);
    config.clients_per_l1 = spec.clients_per_l1;
    config.dynamic_client_ids = spec.dynamic_client_ids;
    let out = replay_concurrent(&config, &records[range], 8).expect("replay slice");
    assert_eq!(out.report.errors, 0, "zero client errors");
}

/// The scenario the whole harness pins, live and in miniature: a
/// two-level hierarchy replaying a flash crowd loses an interior parent
/// mid-ramp. The orphaned child adopts a fallback parent, propagation
/// resumes through the mended edge, clients never see an error, and
/// both the removal and the revival churn match the analytic model
/// entry for entry.
#[test]
fn parent_crash_mid_replay_rehomes_children_and_matches_analytic_churn() {
    let topology = Topology::TwoLevel {
        parents: 2,
        children_per_parent: 1,
    };
    let mut mesh = ChaosMesh::spawn_topology(topology, tuned).expect("mesh");
    let addrs = mesh.addrs().to_vec();

    // A miniature flash crowd whose ramp spans the crash window.
    let spec = FlashCrowdSpec {
        base: WorkloadSpec::small()
            .with_requests(900)
            .with_clients(topology.size() as u32 * 256)
            .with_p_new(0.35),
        ramp_start: 200,
        ramp_len: 400,
        peak_share: 0.4,
    };
    spec.validate().expect("valid spec");
    let records: Vec<TraceRecord> = spec.materialize(7).iter().collect();

    // Healthy first half of the replay, then drain pending hints.
    replay_slice(&mesh, &spec.base, &records, 0..450, None);
    mesh.flush_all();

    // Crash the interior parent by role, not index.
    let dead = match mesh.resolve(FaultKind::CrashParent { level: 0 }) {
        FaultKind::Crash { node } => node,
        other => panic!("CrashParent must resolve to a concrete crash, got {other:?}"),
    };
    assert_eq!(dead, 0, "level-0 parent of the two-level mesh is node 0");
    let orphan = topology.children_of(dead)[0];
    let other_parent = 1usize;
    let other_child = topology.children_of(other_parent)[0];
    let before: Vec<_> = (0..addrs.len())
        .map(|i| mesh.node(i).map(|n| n.stats()))
        .collect();

    mesh.inject(FaultKind::CrashParent { level: 0 })
        .expect("inject parent crash");
    drive_to_death(&mesh, dead);

    // The rest of the replay rides through the dead parent's window with
    // its clients rerouted — still zero errors.
    replay_slice(
        &mesh,
        &spec.base,
        &records,
        450..900,
        Some((dead, other_parent)),
    );

    // Live Plaxton repair on every survivor equals the analytic churn
    // count for this membership change.
    let removed = analytic_churn_for(&addrs, dead);
    for i in (0..addrs.len()).filter(|&i| i != dead) {
        let s = mesh.node(i).expect("survivor").stats();
        let base = before[i].as_ref().expect("baseline stats");
        assert_eq!(
            (s.plaxton_repair_entries - base.plaxton_repair_entries) as usize,
            removed,
            "node {i}: live removal churn must equal the analytic count"
        );
    }

    // The orphan re-homed to the surviving parent; the other child was
    // never orphaned and kept its parent.
    let orphan_node = mesh.node(orphan).expect("orphan");
    assert_eq!(
        orphan_node.parent(),
        Some(addrs[other_parent]),
        "orphan adopted the fallback parent"
    );
    assert_eq!(orphan_node.stats().parent_rehomes, 1, "one re-home counted");
    let untouched = mesh.node(other_child).expect("other child");
    assert_eq!(untouched.parent(), Some(addrs[other_parent]));
    assert_eq!(untouched.stats().parent_rehomes, 0);

    // Propagation resumed through the mended edge: a fresh object cached
    // at the re-homed orphan reaches the other subtree's child in two
    // flush rounds (orphan -> adopted parent -> its children).
    bh_proto::fetch(addrs[orphan], "http://hierarchy.test/mended")
        .expect("seed at the re-homed orphan");
    mesh.flush_all();
    mesh.flush_all();
    let (src, body) = bh_proto::fetch(addrs[other_child], "http://hierarchy.test/mended")
        .expect("fetch through the re-advertised hint");
    assert!(
        matches!(src, Source::Peer(_)),
        "hint propagated across the mended hierarchy, got {src:?}"
    );
    assert!(!body.is_empty());

    // Revival: restart the crashed parent; survivors splice it back and
    // the revival churn matches the analytic re-add too.
    mesh.restart(dead).expect("restart the crashed parent");
    mesh.heartbeat_all();
    let readded = {
        let mut tree = mesh_tree_for(&addrs);
        tree.remove_node(dead).expect("analytic removal");
        let (_, changed) = tree
            .add_node(NodeSpec::from_address(
                &addrs[dead].to_string(),
                (dead as f64, 0.0),
            ))
            .expect("analytic re-add");
        changed
    };
    for i in (0..addrs.len()).filter(|&i| i != dead) {
        let s = mesh.node(i).expect("survivor").stats();
        let base = before[i].as_ref().expect("baseline stats");
        assert_eq!(
            (s.plaxton_repair_entries - base.plaxton_repair_entries) as usize,
            removed + readded,
            "node {i}: revival churn must equal the analytic count"
        );
    }
    mesh.shutdown();
}

/// `CrashParent` is a role, not an index: it validates only against a
/// topology that has interior parents, and the flat-mesh validator
/// (which all pre-hierarchy plans go through) rejects it.
#[test]
fn crash_parent_requires_a_hierarchy() {
    use bh_proto::chaos::{FaultPlan, FaultWindow};
    let plan = FaultPlan {
        seed: 1,
        windows: vec![FaultWindow {
            fault: FaultKind::CrashParent { level: 0 },
            pre: 1,
            hold: 1,
            post: 1,
        }],
    };
    plan.validate_for(&Topology::TwoLevel {
        parents: 2,
        children_per_parent: 1,
    })
    .expect("a hierarchy has a level-0 parent to crash");
    assert!(
        plan.validate(4).is_err(),
        "the flat-mesh validator must reject role-targeted faults"
    );
    assert!(
        plan.validate_for(&Topology::Flat { nodes: 4 }).is_err(),
        "a flat topology has no parent at any level"
    );
}
