//! Shape tests for the paper experiments at reduced scale: every curve and
//! table the harness regenerates must bend the way the paper's does.

use bh_core::experiments::{
    hint_delay_sweep, hint_size_sweep, miss_breakdown, push_comparison, response_time_matrix,
    update_load,
};
use bh_netmodel::{CostModel, RousskovModel, TestbedModel};
use bh_trace::WorkloadSpec;

const SEED: u64 = 77;

fn dec() -> WorkloadSpec {
    WorkloadSpec::dec().scaled(0.003)
}

#[test]
fn fig2_compulsory_dominates_and_capacity_vanishes() {
    let spec = dec();
    let pts = miss_breakdown(&spec, SEED, &[0.05, f64::INFINITY], 0.1);
    let rate =
        |p: &bh_core::experiments::MissBreakdownPoint, n: &str| p.read_rates.by_name(n).unwrap();
    // Small cache: capacity misses present; infinite: none.
    assert!(
        rate(&pts[0], "capacity") > 0.0,
        "tiny cache must show capacity misses"
    );
    assert_eq!(rate(&pts[1], "capacity"), 0.0);
    // Compulsory misses dominate the non-hit classes at infinite size
    // (paper: "Most of these misses are compulsory misses").
    let compulsory = rate(&pts[1], "compulsory");
    for class in ["communication", "error", "uncachable"] {
        assert!(
            compulsory > rate(&pts[1], class),
            "compulsory ({compulsory:.3}) must dominate {class} ({:.3})",
            rate(&pts[1], class)
        );
    }
    // DEC's compulsory fraction ~19% (the distinct/total ratio).
    assert!(
        (0.10..0.30).contains(&compulsory),
        "compulsory {compulsory:.3}"
    );
}

#[test]
fn fig2_berkeley_prodigy_have_more_uncachable() {
    let dec_pts = miss_breakdown(&dec(), SEED, &[f64::INFINITY], 0.1);
    let pro_pts = miss_breakdown(
        &WorkloadSpec::prodigy().scaled(0.01),
        SEED,
        &[f64::INFINITY],
        0.1,
    );
    let rate =
        |p: &bh_core::experiments::MissBreakdownPoint, n: &str| p.read_rates.by_name(n).unwrap();
    assert!(
        rate(&pro_pts[0], "uncachable") > rate(&dec_pts[0], "uncachable"),
        "Prodigy must show more uncachable traffic than DEC"
    );
}

#[test]
fn fig5_hit_rate_saturates_with_hint_store_size() {
    let spec = dec();
    let pts = hint_size_sweep(&spec, SEED, &[0.01, 0.5, f64::INFINITY]);
    // Monotone non-decreasing (within noise) and the top two close together
    // (saturation — paper: "a 100 MB hint cache can track almost all data").
    assert!(pts[0].hit_ratio <= pts[1].hit_ratio + 0.01);
    assert!(pts[1].hit_ratio <= pts[2].hit_ratio + 0.01);
    assert!(
        pts[2].hit_ratio - pts[0].hit_ratio > 0.02,
        "a tiny store must actually cost hit rate: {:?}",
        pts.iter().map(|p| p.hit_ratio).collect::<Vec<_>>()
    );
}

#[test]
fn fig6_delay_degrades_gracefully_then_hurts() {
    let spec = dec();
    let pts = hint_delay_sweep(&spec, SEED, &[0.0, 2.0, 2000.0]);
    let fresh = pts[0].hit_ratio;
    let couple_minutes = pts[1].hit_ratio;
    let stale = pts[2].hit_ratio;
    // Paper: "performance of hint caches will be good as long as updates
    // can be propagated within a few minutes."
    assert!(
        fresh - couple_minutes < 0.05,
        "2-minute delay should cost little: {fresh:.3} → {couple_minutes:.3}"
    );
    assert!(
        fresh - stale > 0.02,
        "a huge delay must cost hit rate: {fresh:.3} → {stale:.3}"
    );
    // Stale hints also surface as false positives.
    assert!(pts[2].false_positive_rate >= pts[0].false_positive_rate);
}

#[test]
fn table5_hierarchy_filters_updates_substantially() {
    let r = update_load(&dec(), SEED);
    let factor = r.centralized_rate / r.hierarchy_rate;
    // Paper: 5.7 vs 1.9 (3.0x). Preferential-attachment workloads give a
    // healthy copy-duplication factor; accept anything clearly > 1.5x.
    assert!(
        factor > 1.5,
        "filtering factor {factor:.2} too small ({} vs {} upd/s)",
        r.centralized_rate,
        r.hierarchy_rate
    );
}

#[test]
fn fig8_speedups_in_band_on_both_space_regimes() {
    let tb = TestbedModel::new();
    let min = RousskovModel::min();
    let max = RousskovModel::max();
    let models: Vec<&dyn CostModel> = vec![&tb, &min, &max];
    for constrained in [false, true] {
        let r = response_time_matrix(&dec(), SEED, constrained, &models);
        for model in ["Testbed", "Min", "Max"] {
            let s = r.speedup(model).expect("cells");
            assert!(
                (1.05..4.0).contains(&s),
                "speedup {s:.2} out of band (constrained={constrained}, {model})"
            );
        }
        // Hints must also beat the central directory.
        for model in ["Testbed", "Min", "Max"] {
            let dir = r.cell("Directory", model).unwrap();
            let hints = r.cell("Hints", model).unwrap();
            assert!(
                hints < dir,
                "hints {hints:.0} vs directory {dir:.0} ({model})"
            );
        }
    }
}

#[test]
fn fig10_11_push_family_shapes() {
    let tb = TestbedModel::new();
    let models: Vec<&dyn CostModel> = vec![&tb];
    let rows = push_comparison(&dec(), SEED, &models);
    let get = |name: &str| rows.iter().find(|r| r.strategy == name).expect(name);
    let ms = |name: &str| get(name).response_ms[0].1;

    // Ordering: hierarchy slowest; ideal fastest; push-all between hints
    // and ideal.
    assert!(ms("Hierarchy") > ms("Hints"));
    assert!(ms("Push-all") <= ms("Hints") + 1.0);
    assert!(ms("Push-ideal") <= ms("Push-all") + 1.0);

    // Efficiency: update push more efficient than push-all (paper: ~33% vs
    // 4–13%); push-all pushes the most bytes.
    let upd = get("Update Push");
    let pall = get("Push-all");
    if upd.push_bw_kbps > 0.0 {
        assert!(
            upd.efficiency >= pall.efficiency,
            "update push ({:.3}) should be at least as efficient as push-all ({:.3})",
            upd.efficiency,
            pall.efficiency
        );
    }
    let p1 = get("Push-1");
    assert!(
        pall.push_bw_kbps >= p1.push_bw_kbps,
        "push-all bandwidth ({:.1}) must exceed push-1 ({:.1})",
        pall.push_bw_kbps,
        p1.push_bw_kbps
    );
    // Push trades bandwidth for latency: aggressive pushing must raise
    // local-hit fraction.
    assert!(pall.l1_hit_fraction > get("Hints").l1_hit_fraction);
}

#[test]
fn experiments_are_deterministic_in_seed() {
    let a = update_load(&dec(), 5);
    let b = update_load(&dec(), 5);
    assert_eq!(a.centralized_rate, b.centralized_rate);
    assert_eq!(a.hierarchy_rate, b.hierarchy_rate);
}
