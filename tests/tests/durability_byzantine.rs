//! Durable, authenticated hint store under chaos: a byzantine peer
//! whose batches carry corrupted authenticators must be detected,
//! quarantined, and purged with **zero client errors** (hints are
//! advisory — §3.2's invariant extends to forged hints), and a node
//! with a durable hint log must recover its hint table on warm restart
//! by replaying the log instead of pulling a network-wide resync.

use bh_proto::chaos::{ChaosMesh, FaultKind, Topology};
use bh_proto::client::Source;
use bh_proto::node::NodeConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Fast control-plane knobs so the whole exercise runs in test time.
fn fast(c: NodeConfig) -> NodeConfig {
    let mut c = c
        .with_flush_max(Duration::from_secs(3600))
        .with_heartbeat_interval(Duration::from_secs(3600))
        .with_shutdown_deadline(Duration::from_secs(2));
    c.io_timeout = Duration::from_millis(800);
    c
}

/// A unique scratch directory per test run.
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("bh-durability-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn corrupt_hints_are_quarantined_and_purged_with_zero_client_errors() {
    let mut mesh = ChaosMesh::spawn(3, fast).expect("mesh");
    let byzantine = 2usize;
    let byz_machine = mesh.node(byzantine).expect("node 2").machine_id();

    // Honest phase: node 2 advertises real copies; everyone learns them.
    let seeded = "http://t.test/seeded";
    let seeded_key = bh_md5::url_key(seeded);
    bh_proto::fetch(mesh.addrs()[byzantine], seeded).expect("seed at node 2");
    mesh.flush_all();
    for i in 0..2 {
        assert_eq!(
            mesh.node(i).expect("live").find_nearest(seeded_key),
            Some(byz_machine),
            "node {i} learned the honest hint"
        );
    }

    // Node 2 turns byzantine: every outbound batch has a corrupt tag.
    mesh.inject(FaultKind::CorruptHints { peer: byzantine })
        .expect("inject");
    for round in 0..3 {
        let url = format!("http://t.test/forged-{round}");
        bh_proto::fetch(mesh.addrs()[byzantine], &url).expect("fetch at byzantine node");
        mesh.node(byzantine).expect("live").flush_updates_now();
        // None of the forged adds may land anywhere.
        let key = bh_md5::url_key(&url);
        for i in 0..2 {
            assert_eq!(
                mesh.node(i).expect("live").find_nearest(key),
                None,
                "node {i} rejected the corrupt batch in round {round}"
            );
        }
    }

    // Threshold crossed: both receivers counted three failures,
    // quarantined the sender, and purged the hints it had planted.
    for i in 0..2 {
        let node = mesh.node(i).expect("live");
        let stats = node.stats();
        assert_eq!(stats.hint_auth_failures, 3, "node {i} failure streak");
        assert!(
            stats.stale_hints_gc >= 1,
            "node {i} purged the byzantine peer's hints"
        );
        assert_eq!(
            node.find_nearest(seeded_key),
            None,
            "node {i} dropped even the previously honest hint"
        );
    }

    // Zero client errors throughout: a request that would have probed
    // the (now-purged) peer simply goes to the origin.
    let (src, body) = bh_proto::fetch(mesh.addrs()[0], seeded).expect("client never errors");
    assert_eq!(src, Source::Origin);
    assert!(!body.is_empty());

    // Heal: lift the fault, the peer's next valid batch is accepted and
    // the quarantine clears.
    mesh.lift(FaultKind::CorruptHints { peer: byzantine })
        .expect("lift");
    let healed = "http://t.test/healed";
    let healed_key = bh_md5::url_key(healed);
    bh_proto::fetch(mesh.addrs()[byzantine], healed).expect("fetch after heal");
    mesh.node(byzantine).expect("live").flush_updates_now();
    for i in 0..2 {
        let node = mesh.node(i).expect("live");
        assert_eq!(
            node.find_nearest(healed_key),
            Some(byz_machine),
            "node {i} accepts the healed peer's hints again"
        );
        assert_eq!(
            node.stats().hint_auth_failures,
            3,
            "node {i} counted no further failures after the lift"
        );
    }
    mesh.shutdown();
}

#[test]
fn corrupt_resync_replies_are_rejected_mid_replay() {
    let mut mesh = ChaosMesh::spawn(3, fast).expect("mesh");
    let honest = 0usize;
    let byzantine = 2usize;
    let honest_machine = mesh.node(honest).expect("live").machine_id();

    // Both peers hold distinct objects the restarting node will pull.
    bh_proto::fetch(mesh.addrs()[honest], "http://t.test/honest").expect("seed honest");
    bh_proto::fetch(mesh.addrs()[byzantine], "http://t.test/byz").expect("seed byzantine");

    mesh.crash(1);
    mesh.inject(FaultKind::CorruptHints { peer: byzantine })
        .expect("inject");

    // Restart mid-fault: the resync pull reaches both peers, but the
    // byzantine Resync reply fails verification and contributes nothing.
    let recovered = mesh.restart(1).expect("restart");
    let node = mesh.node(1).expect("restarted");
    assert_eq!(recovered, 1, "only the honest peer's reply was applied");
    assert_eq!(
        node.find_nearest(bh_md5::url_key("http://t.test/honest")),
        Some(honest_machine)
    );
    assert_eq!(
        node.find_nearest(bh_md5::url_key("http://t.test/byz")),
        None,
        "forged resync reply rejected"
    );
    assert_eq!(node.stats().hint_auth_failures, 1);
    mesh.shutdown();
}

#[test]
fn warm_restart_replays_the_log_instead_of_resyncing() {
    let root = scratch("warm");
    let mut mesh = ChaosMesh::spawn_indexed(Topology::Flat { nodes: 3 }, |i, c| {
        fast(c).with_durability_dir(root.join(format!("node{i}")))
    })
    .expect("mesh");
    let source_machine = mesh.node(0).expect("live").machine_id();

    // Node 0 caches five objects and advertises them; node 1 applies the
    // batch (staging durable-log records) and persists on its own flush.
    let urls: Vec<String> = (0..5).map(|i| format!("http://t.test/obj-{i}")).collect();
    for url in &urls {
        bh_proto::fetch(mesh.addrs()[0], url).expect("seed at node 0");
    }
    mesh.flush_all();
    mesh.flush_all();
    let before: Vec<(u64, u64)> = mesh.node(1).expect("live").hint_entries();
    assert_eq!(before.len(), urls.len(), "node 1 learned every hint");

    // Crash and warm-restart: the log replay rebuilds the table with no
    // network resync — the mesh-level restart sees the replayed records
    // and skips the pull entirely.
    mesh.crash(1);
    let recovered = mesh.restart(1).expect("restart");
    let node = mesh.node(1).expect("restarted");
    let stats = node.stats();
    assert_eq!(recovered, urls.len(), "restart reports the replayed count");
    assert_eq!(stats.hints_recovered_from_log, urls.len() as u64);
    assert!(stats.hint_log_replay_micros > 0, "replay time was measured");
    assert_eq!(
        stats.updates_received, 0,
        "no resync traffic reached the restarted node"
    );
    assert_eq!(node.hint_entries(), before, "recovered table is verbatim");

    // The recovered hints are live: a request through node 1 resolves to
    // a direct peer transfer from node 0.
    let (src, _) = bh_proto::fetch(mesh.addrs()[1], &urls[0]).expect("fetch via recovered hint");
    assert_eq!(src, Source::Peer(source_machine));

    mesh.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
