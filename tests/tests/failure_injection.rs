//! Failure injection: the cache collective must degrade gracefully — a
//! dead peer costs one wasted probe, never a failed request (the hint
//! architecture's misses always have the origin as a fallback), and the
//! Plaxton metadata hierarchy reconfigures around departed nodes.

use bh_proto::node::{CacheNode, NodeConfig};
use bh_proto::origin::OriginServer;
use std::net::SocketAddr;
use std::time::Duration;

fn mesh(n: usize) -> (OriginServer, Vec<CacheNode>) {
    let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
    let nodes: Vec<CacheNode> = (0..n)
        .map(|_| {
            let mut cfg = NodeConfig::new("127.0.0.1:0", origin.addr())
                .with_flush_max(Duration::from_secs(3600));
            cfg.io_timeout = Duration::from_millis(500);
            CacheNode::spawn(cfg).expect("node")
        })
        .collect();
    let addrs: Vec<SocketAddr> = nodes.iter().map(|x| x.addr()).collect();
    for (i, node) in nodes.iter().enumerate() {
        node.set_neighbors(
            addrs
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, a)| *a)
                .collect(),
        );
    }
    (origin, nodes)
}

#[test]
fn dead_peer_costs_a_probe_not_a_failure() {
    let (origin, mut nodes) = mesh(2);
    let url = "http://t.test/dies";
    bh_proto::fetch(nodes[1].addr(), url).expect("seed at node 1");
    nodes[1].flush_updates_now();

    // Node 1 dies; node 0 still holds a hint pointing at it.
    let dead = nodes.remove(1);
    dead.shutdown();

    let (src, body) = bh_proto::fetch(nodes[0].addr(), url).expect("fetch survives");
    assert_eq!(src, bh_proto::client::Source::Origin);
    assert!(!body.is_empty());
    assert_eq!(
        nodes[0].stats().false_positives,
        1,
        "dead peer counted as a wasted probe"
    );
    assert_eq!(origin.request_count(), 2);

    // The bad hint was dropped: no second probe.
    nodes[0].invalidate(url);
    bh_proto::fetch(nodes[0].addr(), url).expect("fetch again");
    assert_eq!(nodes[0].stats().false_positives, 1);
}

#[test]
fn origin_outage_yields_clean_errors_then_recovery() {
    let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
    let origin_addr = origin.addr();
    let mut cfg = NodeConfig::new("127.0.0.1:0", origin_addr);
    cfg.io_timeout = Duration::from_millis(300);
    let node = CacheNode::spawn(cfg).expect("node");

    // Cache something while the origin is alive.
    bh_proto::fetch(node.addr(), "http://t.test/cached").expect("seed");

    // Origin goes away.
    origin.shutdown();

    // Cached objects still served.
    let (src, _) = bh_proto::fetch(node.addr(), "http://t.test/cached").expect("cached");
    assert_eq!(src, bh_proto::client::Source::Local);
    // Uncached objects fail cleanly (an error reply, not a hang or panic).
    let err = bh_proto::fetch(node.addr(), "http://t.test/uncached");
    assert!(err.is_err(), "origin down: uncached fetch must error");
}

#[test]
fn flush_to_dead_neighbors_does_not_wedge_the_node() {
    let (_origin, mut nodes) = mesh(3);
    // Kill two neighbors; the survivor keeps serving and flushing.
    nodes.remove(2).shutdown();
    nodes.remove(1).shutdown();
    for i in 0..5 {
        bh_proto::fetch(nodes[0].addr(), &format!("http://t.test/after/{i}")).expect("fetch");
        nodes[0].flush_updates_now(); // best-effort sends to dead peers
    }
    assert_eq!(
        nodes[0].stats().local_hits + nodes[0].stats().origin_fetches,
        5
    );
}

/// Concurrency stress: a 4-node mesh serving 16 parallel client threads
/// while one node is killed mid-run. No client request may fail — a dead
/// peer is worth one wasted probe, never an error — and the accounting
/// must stay exact under full concurrency.
///
/// Topology: client traffic targets nodes 0..2 only; node 3 is seeded
/// with per-thread objects and flushes hints for them, then dies while
/// every client thread is parked on a barrier. Each thread's first
/// post-kill fetch follows a hint straight into the corpse.
#[test]
fn concurrent_clients_survive_node_kill_mid_run() {
    const THREADS: usize = 16;
    const WARM: usize = 20;
    const SHARED: usize = 10;
    const FRESH: usize = 9;
    const DEADLINE: Duration = Duration::from_secs(60);

    // bh-lint: allow(no-wall-clock, reason = "watchdog for the whole live-mesh scenario; results never read it")
    let start = std::time::Instant::now();
    let (origin, mut nodes) = mesh(4);

    // Seed one object per client thread at node 3 and advertise them, so
    // nodes 0..2 all hold hints pointing at the soon-to-be-dead node.
    for t in 0..THREADS {
        bh_proto::fetch(nodes[3].addr(), &format!("http://t.test/stress/seeded/{t}"))
            .expect("seed at node 3");
    }
    nodes[3].flush_updates_now();
    let victim_origin_fetches = nodes[3].stats().origin_fetches;

    let serving: Vec<SocketAddr> = nodes[..3].iter().map(|n| n.addr()).collect();
    // Threads run phase 1, then park on the barrier; the main thread kills
    // node 3 and joins the barrier last, releasing phase 2 strictly after
    // the node is gone.
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(THREADS + 1));

    let requests_per_node = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..THREADS {
            let addr = serving[t % 3];
            let barrier = std::sync::Arc::clone(&barrier);
            workers.push(scope.spawn(move || {
                let fetch = |url: String| {
                    let (_, body) = bh_proto::fetch(addr, &url)
                        .unwrap_or_else(|e| panic!("request failed for {url}: {e}"));
                    assert!(!body.is_empty(), "empty body for {url}");
                };
                // Phase 1: private warm-up objects plus a shared set that
                // several threads contend on.
                for i in 0..WARM {
                    fetch(format!("http://t.test/stress/warm/{t}/{i}"));
                }
                for i in 0..SHARED {
                    fetch(format!("http://t.test/stress/shared/{}", i % 5));
                }
                barrier.wait();
                // Phase 2 (node 3 is now dead): the seeded URL follows a
                // hint into the dead peer, the rest exercise cache + origin.
                fetch(format!("http://t.test/stress/seeded/{t}"));
                for i in 0..WARM {
                    fetch(format!("http://t.test/stress/warm/{t}/{i}"));
                }
                for i in 0..FRESH {
                    fetch(format!("http://t.test/stress/fresh/{t}/{i}"));
                }
                WARM + SHARED + 1 + WARM + FRESH
            }));
        }

        // Kill node 3 while all client threads are parked, then release.
        nodes.remove(3).shutdown();
        barrier.wait();

        let mut per_node = [0u64; 3];
        for (t, w) in workers.into_iter().enumerate() {
            per_node[t % 3] += w.join().expect("client thread panicked") as u64;
        }
        per_node
    });

    // Exact accounting: every request resolved exactly one way, none
    // failed (failures already panicked the owning thread above).
    let mut total_fp = 0;
    let mut total_origin = 0;
    for (i, node) in nodes.iter().enumerate() {
        let s = node.stats();
        assert_eq!(
            s.local_hits + s.peer_hits + s.origin_fetches,
            requests_per_node[i],
            "node {i}: every request must be served exactly once (stats {s:?})"
        );
        total_fp += s.false_positives;
        total_origin += s.origin_fetches;
    }

    // Each thread's seeded URL carried exactly one hint to the dead node;
    // the probe fails (or is refused by quarantine), is counted, and the
    // hint is dropped — so false positives are exactly one per thread.
    assert_eq!(
        total_fp, THREADS as u64,
        "one false positive per seeded URL, no more, no less"
    );

    // The origin saw exactly the fetches the nodes claim they made.
    assert_eq!(origin.request_count(), total_origin + victim_origin_fetches);

    assert!(
        start.elapsed() < DEADLINE,
        "stress run took {:?}, deadline {DEADLINE:?}",
        start.elapsed()
    );
}

/// Stale-hint GC bound: once the failure detector confirms a peer dead,
/// every hint naming it is purged in one sweep. Wasted probes per dead
/// peer are therefore O(1) per object *before* confirmation (each hint
/// burns its single probe at most once) and exactly zero after — fetches
/// of the dead node's objects go straight to the origin with no probe at
/// all.
#[test]
fn confirmed_death_garbage_collects_stale_hints() {
    use bh_proto::liveness::PeerHealth;
    const K: usize = 12;

    let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
    let nodes: Vec<CacheNode> = (0..2)
        .map(|_| {
            let mut cfg = NodeConfig::new("127.0.0.1:0", origin.addr())
                .with_flush_max(Duration::from_secs(3600))
                .with_heartbeat_interval(Duration::from_secs(3600))
                .with_suspicion_threshold(2)
                .with_confirm_death_after(Duration::from_millis(100))
                .with_shutdown_deadline(Duration::from_secs(2));
            cfg.io_timeout = Duration::from_millis(300);
            CacheNode::spawn(cfg).expect("node")
        })
        .collect();
    let addrs: Vec<SocketAddr> = nodes.iter().map(|x| x.addr()).collect();
    for (i, node) in nodes.iter().enumerate() {
        node.set_neighbors(addrs.iter().copied().filter(|a| *a != addrs[i]).collect());
    }

    // Seed K objects at node 1 and advertise them to node 0.
    let urls: Vec<String> = (0..K).map(|i| format!("http://t.test/gc/{i}")).collect();
    for url in &urls {
        bh_proto::fetch(addrs[1], url).expect("seed at node 1");
    }
    nodes[1].flush_updates_now();
    let dead_machine = nodes[1].machine_id().0;
    let dead_addr = addrs[1];
    let hints_at_dead = |node: &CacheNode| {
        node.hint_entries()
            .iter()
            .filter(|(_, loc)| *loc == dead_machine)
            .count()
    };
    assert_eq!(hints_at_dead(&nodes[0]), K, "all K hints name node 1");

    // Crash-stop node 1 and drive node 0's failure detector until death
    // is confirmed (threshold 2, confirmation window 100ms).
    let mut nodes = nodes;
    nodes.remove(1).kill();
    // bh-lint: allow(no-wall-clock, reason = "deadline-bounded wait on a live mesh; failure detection is wall-clock here")
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while nodes[0].peer_health(dead_addr) != PeerHealth::Dead {
        assert!(
            // bh-lint: allow(no-wall-clock, reason = "loop bound against the same live-mesh deadline")
            std::time::Instant::now() < deadline,
            "node 0 never confirmed node 1 dead"
        );
        nodes[0].heartbeat_now();
        std::thread::sleep(Duration::from_millis(25));
    }

    // Confirmation swept every stale hint in one pass.
    let s = nodes[0].stats();
    assert_eq!(s.peers_confirmed_dead, 1);
    assert_eq!(s.stale_hints_gc, K as u64, "GC purged exactly the K hints");
    assert_eq!(hints_at_dead(&nodes[0]), 0, "no hint names the dead node");

    // Post-GC fetches of the dead node's objects are origin-served with
    // ZERO wasted probes — the stale hints are gone, so nothing probes.
    for url in &urls {
        let (src, body) = bh_proto::fetch(addrs[0], url).expect("fetch survives");
        assert_eq!(src, bh_proto::client::Source::Origin);
        assert!(!body.is_empty());
    }
    assert_eq!(
        nodes[0].stats().false_positives,
        0,
        "zero probes wasted after the GC sweep"
    );
}

#[test]
fn plaxton_routes_survive_churn() {
    use bh_plaxton::{NodeSpec, PlaxtonTree};
    let nodes: Vec<NodeSpec> = (0..48)
        .map(|i| {
            NodeSpec::from_address(
                &format!("172.16.{}.{}:3128", i / 8, i % 8),
                ((i % 8) as f64, (i / 8) as f64),
            )
        })
        .collect();
    let mut tree = PlaxtonTree::build(nodes, 2).expect("build");
    let mut rng_state = 99u64;
    let mut removed = std::collections::HashSet::new();
    // Remove a third of the nodes one at a time; after each departure,
    // every object must still resolve to a single root from every survivor.
    for round in 0..16 {
        loop {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let victim = (rng_state >> 33) as usize % 48;
            if removed.insert(victim) {
                tree.remove_node(victim).expect("remove live node");
                break;
            }
        }
        for obj in 0..10u64 {
            let key = bh_md5::md5((round * 100 + obj).to_le_bytes()).low64();
            let root = tree.root_of(key);
            assert!(!removed.contains(&root), "root must be alive");
            for from in 0..48 {
                if removed.contains(&from) {
                    continue;
                }
                let path = tree.route(from, key);
                assert_eq!(*path.last().unwrap(), root);
                assert!(
                    path.iter().all(|n| !removed.contains(n)),
                    "path through dead node"
                );
            }
        }
    }
    assert_eq!(tree.len(), 32);
}
