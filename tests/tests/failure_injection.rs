//! Failure injection: the cache collective must degrade gracefully — a
//! dead peer costs one wasted probe, never a failed request (the hint
//! architecture's misses always have the origin as a fallback), and the
//! Plaxton metadata hierarchy reconfigures around departed nodes.

use bh_proto::node::{CacheNode, NodeConfig};
use bh_proto::origin::OriginServer;
use std::net::SocketAddr;
use std::time::Duration;

fn mesh(n: usize) -> (OriginServer, Vec<CacheNode>) {
    let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
    let nodes: Vec<CacheNode> = (0..n)
        .map(|_| {
            let mut cfg = NodeConfig::new("127.0.0.1:0", origin.addr())
                .with_flush_max(Duration::from_secs(3600));
            cfg.io_timeout = Duration::from_millis(500);
            CacheNode::spawn(cfg).expect("node")
        })
        .collect();
    let addrs: Vec<SocketAddr> = nodes.iter().map(|x| x.addr()).collect();
    for (i, node) in nodes.iter().enumerate() {
        node.set_neighbors(
            addrs.iter().enumerate().filter(|(j, _)| *j != i).map(|(_, a)| *a).collect(),
        );
    }
    (origin, nodes)
}

#[test]
fn dead_peer_costs_a_probe_not_a_failure() {
    let (origin, mut nodes) = mesh(2);
    let url = "http://t.test/dies";
    bh_proto::fetch(nodes[1].addr(), url).expect("seed at node 1");
    nodes[1].flush_updates_now();

    // Node 1 dies; node 0 still holds a hint pointing at it.
    let dead = nodes.remove(1);
    dead.shutdown();

    let (src, body) = bh_proto::fetch(nodes[0].addr(), url).expect("fetch survives");
    assert_eq!(src, bh_proto::client::Source::Origin);
    assert!(!body.is_empty());
    assert_eq!(nodes[0].stats().false_positives, 1, "dead peer counted as a wasted probe");
    assert_eq!(origin.request_count(), 2);

    // The bad hint was dropped: no second probe.
    nodes[0].invalidate(url);
    bh_proto::fetch(nodes[0].addr(), url).expect("fetch again");
    assert_eq!(nodes[0].stats().false_positives, 1);
}

#[test]
fn origin_outage_yields_clean_errors_then_recovery() {
    let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
    let origin_addr = origin.addr();
    let mut cfg = NodeConfig::new("127.0.0.1:0", origin_addr);
    cfg.io_timeout = Duration::from_millis(300);
    let node = CacheNode::spawn(cfg).expect("node");

    // Cache something while the origin is alive.
    bh_proto::fetch(node.addr(), "http://t.test/cached").expect("seed");

    // Origin goes away.
    origin.shutdown();

    // Cached objects still served.
    let (src, _) = bh_proto::fetch(node.addr(), "http://t.test/cached").expect("cached");
    assert_eq!(src, bh_proto::client::Source::Local);
    // Uncached objects fail cleanly (an error reply, not a hang or panic).
    let err = bh_proto::fetch(node.addr(), "http://t.test/uncached");
    assert!(err.is_err(), "origin down: uncached fetch must error");
}

#[test]
fn flush_to_dead_neighbors_does_not_wedge_the_node() {
    let (_origin, mut nodes) = mesh(3);
    // Kill two neighbors; the survivor keeps serving and flushing.
    nodes.remove(2).shutdown();
    nodes.remove(1).shutdown();
    for i in 0..5 {
        bh_proto::fetch(nodes[0].addr(), &format!("http://t.test/after/{i}")).expect("fetch");
        nodes[0].flush_updates_now(); // best-effort sends to dead peers
    }
    assert_eq!(nodes[0].stats().local_hits + nodes[0].stats().origin_fetches, 5);
}

#[test]
fn plaxton_routes_survive_churn() {
    use bh_plaxton::{NodeSpec, PlaxtonTree};
    let nodes: Vec<NodeSpec> = (0..48)
        .map(|i| {
            NodeSpec::from_address(
                &format!("172.16.{}.{}:3128", i / 8, i % 8),
                ((i % 8) as f64, (i / 8) as f64),
            )
        })
        .collect();
    let mut tree = PlaxtonTree::build(nodes, 2).expect("build");
    let mut rng_state = 99u64;
    let mut removed = std::collections::HashSet::new();
    // Remove a third of the nodes one at a time; after each departure,
    // every object must still resolve to a single root from every survivor.
    for round in 0..16 {
        loop {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let victim = (rng_state >> 33) as usize % 48;
            if removed.insert(victim) {
                tree.remove_node(victim).expect("remove live node");
                break;
            }
        }
        for obj in 0..10u64 {
            let key = bh_md5::md5((round * 100 + obj).to_le_bytes()).low64();
            let root = tree.root_of(key);
            assert!(!removed.contains(&root), "root must be alive");
            for from in 0..48 {
                if removed.contains(&from) {
                    continue;
                }
                let path = tree.route(from, key);
                assert_eq!(*path.last().unwrap(), root);
                assert!(path.iter().all(|n| !removed.contains(n)), "path through dead node");
            }
        }
    }
    assert_eq!(tree.len(), 32);
}
