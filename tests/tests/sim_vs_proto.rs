//! Cross-validation: the simulator's hint strategy and the real TCP
//! prototype must take the *same data paths* for the same request sequence.
//!
//! The simulator's oracle mode corresponds to a prototype whose hint
//! batches are flushed after every request (instant propagation) with
//! unbounded stores. We drive an identical scripted sequence through both
//! and compare outcome classes step by step.

use bh_core::outcome::AccessPath;
use bh_core::strategies::{HintConfig, HintHierarchy, RequestCtx, Strategy};
use bh_core::topology::Topology;
use bh_proto::client::Source;
use bh_proto::node::{CacheNode, NodeConfig};
use bh_proto::origin::OriginServer;
use bh_simcore::{ByteSize, SimTime};
use bh_trace::WorkloadSpec;
use std::net::SocketAddr;
use std::time::Duration;

/// Outcome classes comparable across the two implementations.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum PathClass {
    Local,
    Peer,
    Origin,
}

fn classify_sim(path: AccessPath) -> PathClass {
    match path {
        AccessPath::L1Hit => PathClass::Local,
        AccessPath::RemoteHit { .. } => PathClass::Peer,
        AccessPath::ServerFetch { .. } => PathClass::Origin,
        other => panic!("hint strategy produced unexpected path {other:?}"),
    }
}

fn classify_proto(source: Source) -> PathClass {
    match source {
        Source::Local => PathClass::Local,
        Source::Peer(_) => PathClass::Peer,
        Source::Origin => PathClass::Origin,
        Source::Redirected => {
            panic!("admission control must not trigger at comparison load")
        }
    }
}

#[test]
fn simulator_and_prototype_agree_on_data_paths() {
    // Two L1 nodes sharing an L2 (spec small() has 2 L1s per L2).
    let mut spec = WorkloadSpec::small();
    spec.clients = 512; // exactly 2 L1 groups
    let topo = Topology::from_spec(&spec);
    assert_eq!(topo.l1_count(), 2);
    let mut sim = HintHierarchy::new(topo, HintConfig::default(), 1);

    let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
    let nodes: Vec<CacheNode> = (0..2)
        .map(|_| {
            CacheNode::spawn(
                NodeConfig::new("127.0.0.1:0", origin.addr())
                    .with_flush_max(Duration::from_secs(3600)),
            )
            .expect("node")
        })
        .collect();
    let addrs: Vec<SocketAddr> = nodes.iter().map(|n| n.addr()).collect();
    nodes[0].set_neighbors(vec![addrs[1]]);
    nodes[1].set_neighbors(vec![addrs[0]]);

    // A scripted sequence: (node, url). Covers compulsory miss, local hit,
    // remote hit, and hit-after-remote-copy.
    let script: &[(usize, &str)] = &[
        (0, "http://x.test/a"), // origin
        (0, "http://x.test/a"), // local
        (1, "http://x.test/a"), // peer (node 0)
        (1, "http://x.test/a"), // local
        (1, "http://x.test/b"), // origin
        (0, "http://x.test/b"), // peer (node 1)
        (0, "http://x.test/c"), // origin
        (1, "http://x.test/c"), // peer
        (0, "http://x.test/a"), // local (still)
    ];

    for (step, &(node, url)) in script.iter().enumerate() {
        // Simulator side.
        let ctx = RequestCtx {
            time: SimTime::from_secs(step as u64),
            client: bh_trace::ClientId(node as u32 * 256),
            l1: node as u32,
            key: bh_md5::url_key(url),
            size: ByteSize::from_kb(4),
            version: 0,
        };
        let sim_class = classify_sim(sim.on_request(&ctx));

        // Prototype side.
        let (source, _) = bh_proto::fetch(addrs[node], url).expect("fetch");
        let proto_class = classify_proto(source);
        // Instant propagation: flush both directions after each step.
        nodes[node].flush_updates_now();

        assert_eq!(
            sim_class, proto_class,
            "step {step}: node {node} url {url}: simulator {sim_class:?} vs prototype {proto_class:?}"
        );
    }

    // Invalidation path: drop the copy at node 0 and flush; node 1 keeps
    // its own copy so it still hits locally; node 0 refetches from node 1.
    nodes[0].invalidate("http://x.test/a");
    nodes[0].flush_updates_now();
    let (source, _) = bh_proto::fetch(addrs[0], "http://x.test/a").expect("fetch");
    assert_eq!(
        classify_proto(source),
        PathClass::Peer,
        "node 0 should refetch from node 1"
    );
}
