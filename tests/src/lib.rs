//! Cross-crate integration tests for the Beyond Hierarchies reproduction.
//!
//! The actual tests live in `tests/`; this library is intentionally empty.
