//! # Beyond Hierarchies — distributed caching without the data hierarchy
//!
//! A from-scratch Rust reproduction of *"Beyond Hierarchies: Design
//! Considerations for Distributed Caching on the Internet"* (Renu Tewari,
//! Michael Dahlin, Harrick M. Vin, Jonathan S. Kay — ICDCS 1999 / UT Austin
//! TR98-04).
//!
//! This facade crate re-exports the workspace members so applications can
//! depend on one crate:
//!
//! * [`md5`] — MD5 identifiers (RFC 1321, from scratch);
//! * [`simcore`] — virtual time, events, PRNG, statistics;
//! * [`trace`] — workload models for the DEC / Berkeley / Prodigy traces;
//! * [`netmodel`] — the Testbed and Rousskov access-cost models;
//! * [`cache`] — LRU data caches, the 16-byte-record hint store, miss
//!   classification;
//! * [`plaxton`] — the self-configuring metadata hierarchy;
//! * [`core`] — the strategy simulator (hierarchy / directory / hints /
//!   push caching) and every paper experiment;
//! * [`proto`] — the runnable TCP prototype of the hint protocol.
//!
//! # Quickstart
//!
//! ```
//! use beyond_hierarchies::core::sim::{SimConfig, Simulator};
//! use beyond_hierarchies::core::strategies::StrategyKind;
//! use beyond_hierarchies::netmodel::{CostModel, TestbedModel};
//! use beyond_hierarchies::trace::WorkloadSpec;
//!
//! let spec = WorkloadSpec::small().with_requests(2_000);
//! let testbed = TestbedModel::new();
//! let models: Vec<&dyn CostModel> = vec![&testbed];
//! let sim = Simulator::new(SimConfig::infinite(&spec));
//! let hierarchy = sim.run(&spec, 42, StrategyKind::DataHierarchy, &models);
//! let hints = sim.run(&spec, 42, StrategyKind::HintHierarchy, &models);
//! let speedup = hierarchy.mean_response_ms("Testbed").unwrap()
//!     / hints.mean_response_ms("Testbed").unwrap();
//! assert!(speedup > 1.0, "hints should beat the hierarchy");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bh_cache as cache;
pub use bh_core as core;
pub use bh_md5 as md5;
pub use bh_netmodel as netmodel;
pub use bh_plaxton as plaxton;
pub use bh_proto as proto;
pub use bh_simcore as simcore;
pub use bh_trace as trace;
