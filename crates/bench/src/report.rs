//! The versioned `Report` envelope every JSON artifact ships in, plus
//! the shared `obs_dump.json` writer.
//!
//! Every artifact the harness writes — experiment figures/tables,
//! `loadgen.json`, the chaos pair, `BENCH_sim.json` — is wrapped as
//!
//! ```json
//! { "schema_version": 1, "artifact": "<name>", "payload": { ... } }
//! ```
//!
//! The payload body is byte-for-byte what the artifact serialized to
//! before the envelope existed, so consumers that only care about the
//! numbers read `payload` and are done. The head lets tooling (the
//! `obs validate` subcommand, CI) check *any* artifact without knowing
//! its payload schema.

use crate::Args;
use bh_obs::{Determinism, MetricEntry, Registry};
use serde::{DeError, Deserialize, Serialize, Value};

/// Version of the envelope itself (not of any payload schema). Bump only
/// when the head fields change shape.
pub const SCHEMA_VERSION: u64 = 1;

/// A built envelope, ready for [`Args::write_json`]-style serialization.
///
/// Holds the fully-assembled [`Value`] tree; [`Serialize`] just clones
/// it, which keeps field order fixed (`schema_version`, `artifact`,
/// `payload`) independent of any struct declaration.
#[derive(Debug, Clone)]
pub struct Envelope {
    value: Value,
}

impl Envelope {
    /// Wraps an already-serialized payload tree under the given artifact
    /// name.
    pub fn wrap(artifact: &str, payload: Value) -> Envelope {
        Envelope {
            value: Value::Object(vec![
                ("schema_version".to_string(), Value::UInt(SCHEMA_VERSION)),
                ("artifact".to_string(), Value::Str(artifact.to_string())),
                ("payload".to_string(), payload),
            ]),
        }
    }

    /// Wraps any serializable payload.
    pub fn of<T: Serialize + ?Sized>(artifact: &str, payload: &T) -> Envelope {
        Envelope::wrap(artifact, payload.serialize())
    }
}

impl Serialize for Envelope {
    fn serialize(&self) -> Value {
        self.value.clone()
    }
}

/// A raw [`Value`] tree that can ride through `serde_json::from_str` —
/// the vendored serde defines no `Deserialize` for `Value` itself.
#[derive(Debug, Clone)]
pub struct RawValue(pub Value);

impl Deserialize for RawValue {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(RawValue(v.clone()))
    }
}

/// A validated envelope head with its payload kept as a raw tree.
#[derive(Debug, Clone)]
pub struct ParsedEnvelope {
    /// Envelope schema version (must equal [`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Artifact name recorded in the head.
    pub artifact: String,
    /// The payload tree, untouched.
    pub payload: Value,
}

/// Parses and validates one artifact file's text.
///
/// # Errors
///
/// Fails on malformed JSON, a missing or mistyped head field, an
/// unsupported `schema_version`, or a missing payload.
pub fn parse_envelope(text: &str) -> Result<ParsedEnvelope, String> {
    let RawValue(v) = serde_json::from_str::<RawValue>(text).map_err(|e| e.to_string())?;
    let version = match v.get("schema_version") {
        Some(Value::UInt(n)) => *n,
        Some(other) => return Err(format!("schema_version is not an integer: {other:?}")),
        None => return Err("missing schema_version".to_string()),
    };
    if version != SCHEMA_VERSION {
        return Err(format!(
            "unsupported schema_version {version} (tool knows {SCHEMA_VERSION})"
        ));
    }
    let artifact = match v.get("artifact") {
        Some(Value::Str(s)) => s.clone(),
        Some(other) => return Err(format!("artifact is not a string: {other:?}")),
        None => return Err("missing artifact".to_string()),
    };
    let payload = match v.get("payload") {
        Some(p @ (Value::Object(_) | Value::Array(_))) => p.clone(),
        Some(other) => return Err(format!("payload is not an object or array: {other:?}")),
        None => return Err("missing payload".to_string()),
    };
    Ok(ParsedEnvelope {
        schema_version: version,
        artifact,
        payload,
    })
}

/// One named counter in an artifact — the serializable view of a
/// registry [`MetricEntry`].
#[derive(Debug, Clone, Serialize)]
pub struct MetricValue {
    /// Metric name (histograms appear expanded, e.g. `x.le.100`).
    pub name: String,
    /// Counter/gauge value or histogram component.
    pub value: u64,
}

impl From<&MetricEntry> for MetricValue {
    fn from(e: &MetricEntry) -> MetricValue {
        MetricValue {
            name: e.name.clone(),
            value: e.value,
        }
    }
}

/// Converts a snapshot into the serializable artifact form.
pub fn metric_values(entries: &[MetricEntry]) -> Vec<MetricValue> {
    entries.iter().map(MetricValue::from).collect()
}

/// Writes `<out>/obs_dump.json`: the **deterministic** subset of
/// `registry`, enveloped. Only `Determinism::Deterministic` metrics are
/// included, so the file is byte-identical across `--jobs` values and
/// across repeated runs of the same seed — CI and the determinism tests
/// diff it.
pub fn write_obs_dump(args: &Args, registry: &Registry) {
    let entries = registry.snapshot_filtered(Determinism::Deterministic);
    args.write_json("obs_dump", &metric_values(&entries));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips_through_parse() {
        let env = Envelope::of("fig9", &vec![1u64, 2, 3]);
        let text = serde_json::to_string_pretty(&env).expect("serialize");
        let parsed = parse_envelope(&text).expect("parse");
        assert_eq!(parsed.schema_version, SCHEMA_VERSION);
        assert_eq!(parsed.artifact, "fig9");
        assert_eq!(
            parsed.payload,
            Value::Array(vec![Value::UInt(1), Value::UInt(2), Value::UInt(3)])
        );
    }

    #[test]
    fn envelope_head_field_order_is_fixed() {
        let env = Envelope::of("x", &0u64);
        match env.serialize() {
            Value::Object(fields) => {
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["schema_version", "artifact", "payload"]);
            }
            other => panic!("envelope is not an object: {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_bad_heads() {
        assert!(parse_envelope("{}").is_err());
        assert!(parse_envelope("{\"schema_version\": 1}").is_err());
        assert!(
            parse_envelope("{\"schema_version\": 99, \"artifact\": \"a\", \"payload\": {}}")
                .is_err()
        );
        assert!(
            parse_envelope("{\"schema_version\": 1, \"artifact\": \"a\", \"payload\": 3}").is_err()
        );
        assert!(parse_envelope("not json").is_err());
    }

    #[test]
    fn scalar_payloads_are_rejected_but_arrays_pass() {
        let ok = "{\"schema_version\": 1, \"artifact\": \"a\", \"payload\": []}";
        assert!(parse_envelope(ok).is_ok());
    }

    #[test]
    fn metric_values_mirror_entries() {
        let entries = vec![
            MetricEntry {
                name: "a".into(),
                value: 1,
            },
            MetricEntry {
                name: "b".into(),
                value: 2,
            },
        ];
        let vals = metric_values(&entries);
        assert_eq!(vals.len(), 2);
        assert_eq!(vals[1].name, "b");
        assert_eq!(vals[1].value, 2);
    }
}
