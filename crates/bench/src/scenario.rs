//! Scenario harness: named workload + topology + fault-plan bundles
//! replayed against a live hierarchical mesh.
//!
//! A [`Scenario`] binds three deterministic ingredients:
//!
//! * a **workload** — one of the `bh-trace` scenario generators
//!   (flash crowd or diurnal churn), materialized through the
//!   [`bh_trace::MaterializedTrace`] arena so replay is byte-identical
//!   to fresh generation;
//! * a **topology** — the mesh shape ([`Topology`]), typically the
//!   two-level metadata hierarchy whose interior nodes the fault plan
//!   targets;
//! * a **fault plan** — request-count-positioned windows, including the
//!   role-targeted [`FaultKind::CrashParent`].
//!
//! `loadgen --scenario <name|file.json>` runs one. Artifacts follow the
//! chaos harness's deterministic/measured split:
//!
//! * `scenario_<name>.json` — deterministic: the scenario config, each
//!   segment's planned request count, and the recovery verdict.
//! * `scenario_<name>_metrics.json` — measured: per-segment hit/probe/
//!   latency summaries, re-homed child counts, full node registries.
//! * `scenario_<name>_events.log` — the plan's schedule, byte-identical
//!   across runs by construction.
//! * `obs_dump.json` — the deterministic obs-registry dump.
//!
//! Beyond the chaos harness's recovery criteria, a crash window here
//! also checks the *hierarchy* invariants live: every orphaned child
//! must re-home to a fallback parent, and every survivor's
//! `plaxton_repair_entries` delta must equal the analytic churn count
//! ([`analytic_churn_for`]) — the same live-vs-analytic parity the
//! integration tests pin.

use crate::chaos::{
    await_confirmed_death, print_segment, probe_deltas, replay_segment, segment_from,
    ChaosNodeReport, ChaosOptions, ChaosSegment, PlannedSegment,
};
use crate::report::{metric_values, write_obs_dump};
use crate::Args;
use bh_obs::{Determinism, Registry, Unit};
use bh_proto::chaos::{analytic_churn_for, ChaosMesh, FaultKind, FaultPlan, FaultWindow, Topology};
use bh_proto::node::ThreadingMode;
use bh_trace::scenario::{ChurnKind, DiurnalChurnSpec, FlashCrowdSpec};
use bh_trace::{TraceRecord, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::{Duration, Instant};

/// The workload a scenario replays — one of the `bh-trace` scenario
/// generators, always materialized through the arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioWorkload {
    /// A flash crowd over background traffic.
    FlashCrowd {
        /// The crowd's spec (base workload + ramp schedule).
        spec: FlashCrowdSpec,
    },
    /// A diurnal swing with mesh join/leave churn.
    DiurnalChurn {
        /// The churn spec (base workload + churn rate).
        spec: DiurnalChurnSpec,
    },
}

impl ScenarioWorkload {
    /// The background workload spec (replay wiring reads client shape
    /// from it).
    pub fn base(&self) -> &WorkloadSpec {
        match self {
            ScenarioWorkload::FlashCrowd { spec } => &spec.base,
            ScenarioWorkload::DiurnalChurn { spec } => &spec.base,
        }
    }

    /// Stable kind label for artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioWorkload::FlashCrowd { .. } => "flash-crowd",
            ScenarioWorkload::DiurnalChurn { .. } => "diurnal-churn",
        }
    }

    /// The workload fingerprint (spec identity, not the seed).
    pub fn fingerprint(&self) -> u64 {
        match self {
            ScenarioWorkload::FlashCrowd { spec } => spec.fingerprint(),
            ScenarioWorkload::DiurnalChurn { spec } => spec.fingerprint(),
        }
    }

    /// Validates the underlying spec.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ScenarioWorkload::FlashCrowd { spec } => spec.validate(),
            ScenarioWorkload::DiurnalChurn { spec } => spec.validate(),
        }
    }

    /// Materializes the workload for `seed` and replays the arena out
    /// into a record list — byte-identical to fresh generation.
    pub fn records(&self, seed: u64) -> Vec<TraceRecord> {
        match self {
            ScenarioWorkload::FlashCrowd { spec } => spec.materialize(seed).iter().collect(),
            ScenarioWorkload::DiurnalChurn { spec } => spec.materialize(seed).iter().collect(),
        }
    }
}

/// A named, self-contained scenario: workload, mesh shape, fault plan,
/// and client pressure. Serializable so a run is reproducible from one
/// JSON file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name; artifacts are `scenario_<name with - as _>`.
    pub name: String,
    /// Mesh shape the plan runs against.
    pub topology: Topology,
    /// The request stream.
    pub workload: ScenarioWorkload,
    /// Fault windows, validated against `topology`.
    pub plan: FaultPlan,
    /// Closed-loop client threads.
    pub clients: usize,
}

impl Scenario {
    /// Names [`Scenario::named`] resolves.
    pub const NAMES: [&'static str; 2] = ["flash-crowd", "diurnal-churn"];

    /// The built-in scenario with `name`, seeded with `seed`.
    pub fn named(name: &str, seed: u64) -> Option<Scenario> {
        match name {
            "flash-crowd" => Some(Scenario::flash_crowd(seed)),
            "diurnal-churn" => Some(Scenario::diurnal_churn(seed)),
            _ => None,
        }
    }

    /// The flash-crowd preset: a 2-parent / 2-child hierarchy, the hot
    /// object's ramp covering the crash window of the level-0 parent —
    /// so hint propagation for a *viral* object must survive re-homing.
    pub fn flash_crowd(seed: u64) -> Scenario {
        let topology = Topology::TwoLevel {
            parents: 2,
            children_per_parent: 1,
        };
        let plan = FaultPlan {
            seed,
            windows: vec![FaultWindow {
                fault: FaultKind::CrashParent { level: 0 },
                pre: 600,
                hold: 600,
                post: 600,
            }],
        };
        let requests = plan.total_requests();
        let base = WorkloadSpec::small()
            .with_requests(requests)
            .with_clients(topology.size() as u32 * 256)
            .with_p_new(0.35);
        Scenario {
            name: "flash-crowd".into(),
            topology,
            workload: ScenarioWorkload::FlashCrowd {
                spec: FlashCrowdSpec {
                    // The ramp starts late in the healthy segment and
                    // peaks while the parent is down.
                    ramp_start: 450,
                    ramp_len: 600,
                    peak_share: 0.4,
                    base,
                },
            },
            plan,
            clients: 8,
        }
    }

    /// The diurnal-churn preset: the same hierarchy under an amplified
    /// diurnal swing, with the seeded churn schedule converted into
    /// crash/restart windows at ~10× the paper-era churn baseline.
    pub fn diurnal_churn(seed: u64) -> Scenario {
        let topology = Topology::TwoLevel {
            parents: 2,
            children_per_parent: 1,
        };
        let mut base = WorkloadSpec::small()
            .with_requests(2_400)
            .with_clients(topology.size() as u32 * 256)
            .with_p_new(0.35);
        // A short simulated span keeps the churn-pair count (nodes ×
        // days/7 × multiplier) at a handful of windows for smoke runs.
        base.duration_days = 0.5;
        let spec = DiurnalChurnSpec {
            base,
            nodes: topology.size() as u32,
            churn_multiplier: 10.0,
        };
        let plan = churn_plan(&spec, seed);
        Scenario {
            name: "diurnal-churn".into(),
            topology,
            workload: ScenarioWorkload::DiurnalChurn { spec },
            plan,
            clients: 8,
        }
    }

    /// Loads a scenario from a JSON file.
    ///
    /// # Errors
    ///
    /// Fails on unreadable files, malformed JSON, or a scenario that
    /// fails [`Scenario::validate`].
    pub fn load(path: &Path) -> Result<Scenario, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read scenario {}: {e}", path.display()))?;
        let scenario: Scenario = serde_json::from_str(&text)
            .map_err(|e| format!("cannot parse scenario {}: {e}", path.display()))?;
        scenario.validate()?;
        Ok(scenario)
    }

    /// Checks the scenario is internally consistent: the workload and
    /// plan validate, the plan fits the topology, and the plan replays
    /// exactly the workload's request count.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("scenario name must be non-empty".into());
        }
        if self.clients == 0 {
            return Err("scenario needs at least 1 client thread".into());
        }
        self.workload.validate()?;
        self.plan.validate_for(&self.topology)?;
        let planned = self.plan.total_requests();
        let available = self.workload.base().requests;
        if planned != available {
            return Err(format!(
                "plan replays {planned} requests but the workload generates {available}"
            ));
        }
        Ok(())
    }

    /// Artifact stem: `scenario_<name>` with dashes flattened, so the
    /// files sit next to the chaos artifacts without shell quoting.
    pub fn artifact_stem(&self) -> String {
        format!("scenario_{}", self.name.replace('-', "_"))
    }
}

/// Converts a seeded churn schedule into a back-to-back fault plan:
/// each leave/join pair becomes one crash window whose hold spans the
/// pair's gap. Pairs that would overlap an earlier window are dropped
/// (segments replay sequentially), and the final window's post segment
/// absorbs the trace tail so the whole trace is replayed. A pure
/// function of `(spec, seed)`.
pub fn churn_plan(spec: &DiurnalChurnSpec, seed: u64) -> FaultPlan {
    let requests = spec.base.requests;
    let schedule = spec.churn_schedule(seed);
    let mut windows: Vec<FaultWindow> = Vec::new();
    let mut cursor = 0u64;
    for (i, e) in schedule.iter().enumerate() {
        if e.kind != ChurnKind::Leave || e.at_request < cursor {
            continue;
        }
        let Some(join) = schedule[i..].iter().find(|j| {
            j.kind == ChurnKind::Join && j.node == e.node && j.at_request >= e.at_request
        }) else {
            continue;
        };
        let pre = e.at_request - cursor;
        let hold = (join.at_request - e.at_request).max(1);
        // Half a hold of recovery traffic before the next pair.
        let post = hold / 2 + 1;
        if cursor + pre + hold + post > requests {
            break;
        }
        windows.push(FaultWindow {
            fault: FaultKind::Crash {
                node: e.node as usize,
            },
            pre,
            hold,
            post,
        });
        cursor += pre + hold + post;
    }
    if windows.is_empty() {
        // Degenerate schedule (every pair clipped): fall back to one
        // mid-trace crash of node 0 so the plan still exercises churn.
        let third = (requests / 3).max(1);
        windows.push(FaultWindow {
            fault: FaultKind::Crash { node: 0 },
            pre: third,
            hold: third,
            post: 0,
        });
        cursor = third * 2;
    }
    if let Some(last) = windows.last_mut() {
        last.post += requests.saturating_sub(cursor);
    }
    FaultPlan { seed, windows }
}

/// The deterministic `scenario_<name>.json` payload; two runs of the
/// same scenario must serialize byte-identically.
#[derive(Debug, Serialize)]
pub struct ScenarioResult {
    /// The executed scenario (config, not measurements).
    pub scenario: Scenario,
    /// Workload kind label.
    pub workload: String,
    /// Workload spec fingerprint (seed-independent identity).
    pub workload_fingerprint: u64,
    /// Per-segment issued-request counts (pure function of the seed).
    pub segments: Vec<PlannedSegment>,
    /// True when every window met the recovery + hierarchy criteria.
    pub recovered: bool,
}

/// The measured `scenario_<name>_metrics.json` payload.
#[derive(Debug, Serialize)]
pub struct ScenarioMetrics {
    /// Per-segment measured summaries.
    pub segments: Vec<ChaosSegment>,
    /// Hint records rebuilt by resync after each crash window.
    pub recovered_hints: Vec<usize>,
    /// Children that adopted a fallback parent, per crash window.
    pub rehomed_children: Vec<usize>,
    /// Full per-node registry dump.
    pub node_reports: Vec<ChaosNodeReport>,
}

/// Checks the hierarchy invariants after `dead`'s death is confirmed:
/// every survivor's `plaxton_repair_entries` delta since `baseline`
/// equals the analytic churn count, and every orphaned child of `dead`
/// has adopted a live fallback parent. Returns
/// `(all held, re-homed child count)`.
///
/// Confirmed death and standing-state repair are decoupled: a
/// survivor's detector can report `Dead` a beat before its own churn
/// repair and the orphans' re-homing land, so the check polls to a
/// deadline instead of reading one racy snapshot; diagnostics are only
/// printed for the final attempt.
fn check_hierarchy_recovery(
    mesh: &ChaosMesh,
    dead: usize,
    baseline: &[Option<bh_proto::node::NodeStats>],
) -> (bool, usize) {
    // bh-lint: allow(no-wall-clock, reason = "deadline-bounded wait on a live mesh; repair lands on the heartbeat thread")
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (ok, rehomed) = hierarchy_recovery_once(mesh, dead, baseline, false);
        if ok {
            return (true, rehomed);
        }
        // bh-lint: allow(no-wall-clock, reason = "loop bound against the same live-mesh deadline")
        if Instant::now() >= deadline {
            return hierarchy_recovery_once(mesh, dead, baseline, true);
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// One snapshot of the hierarchy-recovery invariants; `loud` controls
/// whether violations are printed.
fn hierarchy_recovery_once(
    mesh: &ChaosMesh,
    dead: usize,
    baseline: &[Option<bh_proto::node::NodeStats>],
    loud: bool,
) -> (bool, usize) {
    let mut ok = true;
    let analytic = analytic_churn_for(mesh.addrs(), dead) as u64;
    for (i, (before, after)) in baseline.iter().zip(mesh.stats()).enumerate() {
        if i == dead {
            continue;
        }
        let Some(after) = after else { continue };
        let base = before.as_ref().map_or(0, |s| s.plaxton_repair_entries);
        let delta = after.plaxton_repair_entries.saturating_sub(base);
        if delta != analytic {
            if loud {
                eprintln!(
                    "node {i}: live plaxton repair {delta} != analytic churn {analytic} \
                     for death of node {dead}"
                );
            }
            ok = false;
        }
    }
    let dead_addr = mesh.addrs()[dead];
    let mut rehomed = 0usize;
    for child in mesh.topology().children_of(dead) {
        let adopted = mesh
            .node(child)
            .and_then(|n| n.parent())
            .filter(|p| *p != dead_addr);
        match adopted {
            Some(_) => rehomed += 1,
            None => {
                if loud {
                    eprintln!("child {child} did not re-home after parent {dead} died");
                }
                ok = false;
            }
        }
    }
    (ok, rehomed)
}

/// Runs the scenario end to end, writing all artifacts into `args.out`;
/// returns `false` if any window failed its recovery or hierarchy
/// checks.
///
/// # Panics
///
/// Panics on an invalid scenario, mesh spawn failure, or artifact I/O
/// failure (harness semantics: loud failures).
pub fn run_scenario(args: &Args, scenario: &Scenario) -> bool {
    if let Err(msg) = scenario.validate() {
        panic!("invalid scenario {}: {msg}", scenario.name);
    }
    let plan = &scenario.plan;
    let stem = scenario.artifact_stem();
    println!(
        "scenario {}: {} workload, {:?}, {} windows, {} requests",
        scenario.name,
        scenario.workload.label(),
        scenario.topology,
        plan.windows.len(),
        plan.total_requests()
    );

    let event_log = plan.event_log();
    std::fs::create_dir_all(&args.out).expect("create output dir");
    let log_path = args.out.join(format!("{stem}_events.log"));
    std::fs::write(&log_path, &event_log).expect("write scenario event log");
    print!("{event_log}");

    let records = scenario.workload.records(plan.seed);
    let base = scenario.workload.base().clone();
    let opts = ChaosOptions {
        nodes: scenario.topology.size(),
        clients: scenario.clients,
        shards: 1,
        workers: 16,
        p_new: base.p_new,
    };

    let mut mesh = ChaosMesh::spawn_topology(scenario.topology, |c| {
        c.with_mode(ThreadingMode::Sharded)
            .with_shards(opts.shards)
            .with_workers(opts.workers)
            .with_flush_max(Duration::from_millis(25))
            .with_heartbeat_interval(Duration::from_millis(40))
            .with_suspicion_threshold(2)
            .with_confirm_death_after(Duration::from_millis(150))
            .with_shutdown_deadline(Duration::from_secs(2))
    })
    .expect("spawn scenario mesh");

    let mut cursor = 0usize;
    let mut planned: Vec<PlannedSegment> = Vec::new();
    let mut segments: Vec<ChaosSegment> = Vec::new();
    let mut recovered_hints: Vec<usize> = Vec::new();
    let mut rehomed_children: Vec<usize> = Vec::new();
    let mut recovered = true;

    for (i, w) in plan.windows.iter().enumerate() {
        let window_baseline = mesh.stats();
        let mut snapshot = window_baseline.clone();

        let (out, issued) = replay_segment(&mesh, &opts, &base, &records, &mut cursor, w.pre, None);
        planned.push(PlannedSegment {
            window: i,
            phase: "pre".into(),
            fault: w.fault.describe(),
            requests: issued,
        });
        let cur = mesh.stats();
        let pre = segment_from(i, "pre", &w.fault, &out, probe_deltas(&snapshot, &cur));
        snapshot = cur;
        print_segment(&pre);

        mesh.inject(w.fault).expect("inject fault");
        let crashed = match mesh.resolve(w.fault) {
            FaultKind::Crash { node } => Some(node),
            _ => None,
        };
        let (out, issued) =
            replay_segment(&mesh, &opts, &base, &records, &mut cursor, w.hold, crashed);
        planned.push(PlannedSegment {
            window: i,
            phase: "hold".into(),
            fault: w.fault.describe(),
            requests: issued,
        });
        if let Some(dead) = crashed {
            if await_confirmed_death(&mesh, dead) {
                // The hierarchy invariants the tentpole pins: analytic
                // churn parity on every survivor, plus re-homed orphans.
                let (ok, rehomed) = check_hierarchy_recovery(&mesh, dead, &window_baseline);
                rehomed_children.push(rehomed);
                if !ok {
                    recovered = false;
                }
                if rehomed > 0 {
                    println!("window {i}: {rehomed} orphaned children re-homed");
                }
            } else {
                eprintln!("window {i}: survivors never confirmed node {dead} dead");
                rehomed_children.push(0);
                recovered = false;
            }
        }
        let cur = mesh.stats();
        let hold = segment_from(i, "hold", &w.fault, &out, probe_deltas(&snapshot, &cur));
        snapshot = cur;
        print_segment(&hold);

        match crashed {
            Some(node) => {
                let rebuilt = mesh.restart(node).expect("restart crashed node");
                recovered_hints.push(rebuilt);
                println!("window {i}: node {node} restarted, {rebuilt} hint records resynced");
                mesh.heartbeat_all();
                mesh.flush_all();
            }
            None => mesh.lift(w.fault).expect("lift fault"),
        }
        let (out, issued) =
            replay_segment(&mesh, &opts, &base, &records, &mut cursor, w.post, None);
        planned.push(PlannedSegment {
            window: i,
            phase: "post".into(),
            fault: w.fault.describe(),
            requests: issued,
        });
        let cur = mesh.stats();
        let post = segment_from(i, "post", &w.fault, &out, probe_deltas(&snapshot, &cur));
        print_segment(&post);

        if post.errors > 0 {
            eprintln!(
                "window {i}: {} errors after the fault was lifted",
                post.errors
            );
            recovered = false;
        }
        if post.hit_ratio + 0.25 < pre.hit_ratio {
            eprintln!(
                "window {i}: hit ratio collapsed {:.3} -> {:.3} after recovery",
                pre.hit_ratio, post.hit_ratio
            );
            recovered = false;
        }
        segments.push(pre);
        segments.push(hold);
        segments.push(post);
    }

    let node_reports: Vec<ChaosNodeReport> = mesh
        .addrs()
        .iter()
        .zip(mesh.metric_snapshots())
        .map(|(addr, snapshot)| ChaosNodeReport {
            addr: addr.to_string(),
            metrics: metric_values(&snapshot.unwrap_or_default()),
        })
        .collect();

    // Deterministic obs dump: plan/scenario-derived values only, so two
    // runs of the same seed write byte-identical files.
    let obs = Registry::new();
    let windows_m = obs.counter(
        "scenario.windows",
        Unit::Count,
        "fault windows executed",
        Determinism::Deterministic,
    );
    let segments_m = obs.counter(
        "scenario.segments",
        Unit::Count,
        "replay segments planned",
        Determinism::Deterministic,
    );
    let requests_m = obs.counter(
        "scenario.requests_planned",
        Unit::Count,
        "requests issued across all planned segments",
        Determinism::Deterministic,
    );
    windows_m.add(plan.windows.len() as u64);
    segments_m.add(planned.len() as u64);
    requests_m.add(planned.iter().map(|s| s.requests).sum());
    write_obs_dump(args, &obs);

    args.write_json(
        &stem,
        &ScenarioResult {
            scenario: scenario.clone(),
            workload: scenario.workload.label().to_string(),
            workload_fingerprint: scenario.workload.fingerprint(),
            segments: planned,
            recovered,
        },
    );
    args.write_json(
        &format!("{stem}_metrics"),
        &ScenarioMetrics {
            segments,
            recovered_hints,
            rehomed_children,
            node_reports,
        },
    );
    println!(
        "scenario event log: {} ({} bytes)",
        log_path.display(),
        event_log.len()
    );
    println!("recovered: {recovered}");
    mesh.shutdown();
    recovered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_presets_validate() {
        for name in Scenario::NAMES {
            let s = Scenario::named(name, 7).expect("preset exists");
            s.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(s.name, name);
        }
        assert!(Scenario::named("nope", 7).is_none());
    }

    #[test]
    fn flash_crowd_preset_targets_the_hierarchy() {
        let s = Scenario::flash_crowd(42);
        assert!(matches!(
            s.plan.windows[0].fault,
            FaultKind::CrashParent { level: 0 }
        ));
        assert!(matches!(s.topology, Topology::TwoLevel { .. }));
        assert_eq!(s.plan.total_requests(), s.workload.base().requests);
    }

    #[test]
    fn churn_plan_is_deterministic_and_covers_the_trace() {
        let spec = match Scenario::diurnal_churn(9).workload {
            ScenarioWorkload::DiurnalChurn { spec } => spec,
            other => panic!("unexpected workload {other:?}"),
        };
        let a = churn_plan(&spec, 9);
        let b = churn_plan(&spec, 9);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, churn_plan(&spec, 10), "seed must matter");
        assert_eq!(a.total_requests(), spec.base.requests);
        a.validate_for(&Topology::TwoLevel {
            parents: 2,
            children_per_parent: 1,
        })
        .expect("churn plan is valid for the preset topology");
        for w in &a.windows {
            assert!(matches!(w.fault, FaultKind::Crash { .. }));
        }
    }

    #[test]
    fn scenarios_round_trip_through_serde() {
        for name in Scenario::NAMES {
            let s = Scenario::named(name, 3).expect("preset");
            let json = serde_json::to_string(&s).expect("serialize");
            let back: Scenario = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(s, back);
        }
    }

    #[test]
    fn validate_rejects_mismatched_request_counts() {
        let mut s = Scenario::flash_crowd(1);
        s.plan.windows[0].post += 1;
        assert!(s.validate().is_err(), "plan/workload length mismatch");
    }

    #[test]
    fn artifact_stems_flatten_dashes() {
        assert_eq!(
            Scenario::flash_crowd(1).artifact_stem(),
            "scenario_flash_crowd"
        );
        assert_eq!(
            Scenario::diurnal_churn(1).artifact_stem(),
            "scenario_diurnal_churn"
        );
    }
}
