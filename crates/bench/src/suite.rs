//! The in-process experiment suite: experiments as job plans.
//!
//! Every experiment binary used to be a monolithic `main` that computed
//! and printed as it went. The suite splits each experiment into
//!
//! * [`Experiment::plan`] — a list of independent, silent [`Job`]s (one
//!   per grid cell / strategy / workload), and
//! * [`Experiment::finish`] — the sequential tail that downcasts the job
//!   results, prints the paper-format tables, and archives the JSON.
//!
//! Standalone binaries run their own plan through [`run_standalone`]. The
//! `all` binary flattens *every* experiment's plan into one shared queue
//! and feeds it to [`bh_simcore::par::sweep`], so a long job at the tail
//! of one experiment overlaps with the next experiment's grid instead of
//! serializing the suite. Finishes then run in canonical order, which
//! keeps stdout and artifact contents independent of `--jobs`.

use crate::Args;
use std::any::Any;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// What a job returns: any sendable value, downcast by `finish`.
pub type JobOutput = Box<dyn Any + Send>;

/// One independent unit of work. Jobs must not print — all output belongs
/// to [`Experiment::finish`], which runs in canonical order.
pub type Job = Box<dyn FnOnce() -> JobOutput + Send>;

/// Boxes a typed closure as a [`Job`].
pub fn job<T: Any + Send, F: FnOnce() -> T + Send + 'static>(f: F) -> Job {
    Box::new(move || Box::new(f()) as JobOutput)
}

/// Downcasts one job output back to its concrete type.
///
/// # Panics
///
/// Panics if the output is not a `T` — a plan/finish mismatch, which is a
/// programming error.
pub fn take<T: Any>(output: JobOutput) -> T {
    *output
        .downcast::<T>()
        .unwrap_or_else(|_| panic!("job output has unexpected type"))
}

/// One table or figure of the paper, as a parallel job plan plus a
/// sequential finish.
pub trait Experiment: Sync {
    /// The experiment's (and its binary's) name, e.g. `"fig2"`.
    fn name(&self) -> &'static str;
    /// The workload scale this experiment defaults to when `--scale` is
    /// not given (matches the historical per-binary defaults).
    fn default_scale(&self) -> f64;
    /// Builds the list of independent jobs for `args`.
    fn plan(&self, args: &Args) -> Vec<Job>;
    /// Consumes the job results (in plan order), prints the experiment's
    /// output, and writes its JSON artifact.
    fn finish(&self, args: &Args, results: Vec<JobOutput>);
}

/// Every suite experiment, in the canonical (paper) order.
pub fn registry() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(crate::runners::fig1::Fig1),
        Box::new(crate::runners::table3::Table3),
        Box::new(crate::runners::table4::Table4),
        Box::new(crate::runners::fig2::Fig2),
        Box::new(crate::runners::fig3::Fig3),
        Box::new(crate::runners::fig5::Fig5),
        Box::new(crate::runners::fig6::Fig6),
        Box::new(crate::runners::table5::Table5),
        Box::new(crate::runners::fig8::Fig8),
        Box::new(crate::runners::fig10::Fig10),
        Box::new(crate::runners::fig11::Fig11),
        Box::new(crate::runners::ablations::Ablations),
        Box::new(crate::runners::scenario::ScenarioLag),
    ]
}

/// Runs one experiment end to end: plan, sweep the jobs over `args.jobs`
/// workers, finish. This is each standalone binary's `main`.
pub fn run_standalone(exp: &dyn Experiment) {
    let args = Args::parse(exp.default_scale());
    let jobs = exp.plan(&args);
    let results = bh_simcore::par::sweep(args.jobs, jobs, |_, j| j());
    exp.finish(&args, results);
}

/// Per-experiment accounting from a suite run.
#[derive(Debug, Clone)]
pub struct SuiteTiming {
    /// Experiment name.
    pub name: &'static str,
    /// Number of jobs the experiment planned.
    pub jobs: usize,
    /// Total time spent inside the experiment's jobs (summed across
    /// workers, so it can exceed wall-clock when `--jobs > 1`).
    pub job_time: Duration,
    /// Time spent in the sequential finish (printing + JSON).
    pub finish_time: Duration,
}

/// Runs the whole suite in one process over a single shared job queue.
///
/// All experiments' plans are flattened into one `sweep` call, so the
/// queue is topped up across experiment boundaries; finishes then run
/// sequentially in registry order. Returns per-experiment timings.
pub fn run_suite(
    experiments: &[Box<dyn Experiment>],
    per_args: &[Args],
    jobs: usize,
) -> Vec<SuiteTiming> {
    assert_eq!(experiments.len(), per_args.len());
    let mut flat: Vec<Job> = Vec::new();
    let mut spans = Vec::new(); // (start, len) into `flat` per experiment
    for (exp, args) in experiments.iter().zip(per_args) {
        let plan = exp.plan(args);
        spans.push((flat.len(), plan.len()));
        // Wrap each job to record its duration for the timing table.
        for j in plan {
            flat.push(Box::new(move || {
                // bh-lint: allow(no-wall-clock, reason = "per-job duration for the operator timing table; results never read it")
                let t = Instant::now();
                let out = j();
                Box::new((t.elapsed(), out)) as JobOutput
            }));
        }
    }
    let mut results: Vec<Option<JobOutput>> = bh_simcore::par::sweep(jobs, flat, |_, j| j())
        .into_iter()
        .map(Some)
        .collect();

    let mut timings = Vec::new();
    for ((exp, args), (start, len)) in experiments.iter().zip(per_args).zip(spans) {
        let mut job_time = Duration::ZERO;
        let mut outputs = Vec::with_capacity(len);
        for slot in &mut results[start..start + len] {
            let (elapsed, out): (Duration, JobOutput) =
                take(slot.take().expect("result consumed once"));
            job_time += elapsed;
            outputs.push(out);
        }
        eprintln!("\n>>> {}\n", exp.name());
        // bh-lint: allow(no-wall-clock, reason = "finish-phase duration for the operator timing table")
        let t = Instant::now();
        exp.finish(args, outputs);
        timings.push(SuiteTiming {
            name: exp.name(),
            jobs: len,
            job_time,
            finish_time: t.elapsed(),
        });
    }
    timings
}

/// Builds an obs registry describing one suite run: per-experiment job
/// counts (deterministic — a pure function of the flags) plus the
/// measured phase timings behind the operator timing table. The `all`
/// binary feeds this to [`crate::report::write_obs_dump`], which keeps
/// only the deterministic subset, so `obs_dump.json` stays byte-identical
/// across `--jobs` values.
pub fn obs_registry(timings: &[SuiteTiming]) -> bh_obs::Registry {
    use bh_obs::{Determinism, Unit};
    let r = bh_obs::Registry::new();
    for t in timings {
        r.counter(
            format!("suite.{}.jobs", t.name),
            Unit::Count,
            "jobs the experiment planned",
            Determinism::Deterministic,
        )
        .add(t.jobs as u64);
        r.counter(
            format!("suite.{}.job_micros", t.name),
            Unit::Micros,
            "summed job time across workers",
            Determinism::Measured,
        )
        .add(t.job_time.as_micros() as u64);
        r.counter(
            format!("suite.{}.finish_micros", t.name),
            Unit::Micros,
            "sequential finish (printing + JSON) time",
            Determinism::Measured,
        )
        .add(t.finish_time.as_micros() as u64);
    }
    r
}

/// The `--subprocess` fallback: runs each named sibling binary with the
/// given arguments, in order, echoing progress to stderr.
///
/// Returns `0` when every child succeeds, otherwise the exit code of the
/// *first failing* child (or 1 if it was killed by a signal), so the
/// suite's exit status is the failure's, not a generic one.
pub fn run_subprocesses(programs: &[(String, PathBuf)], passthrough: &[String]) -> i32 {
    let mut first_failure: Option<(String, i32)> = None;
    for (name, bin) in programs {
        eprintln!("\n>>> running {name}\n");
        let status = std::process::Command::new(bin)
            .args(passthrough)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", bin.display()));
        if !status.success() && first_failure.is_none() {
            first_failure = Some((name.clone(), status.code().unwrap_or(1)));
        }
    }
    match first_failure {
        None => {
            eprintln!("\nall experiments completed; JSON artifacts in target/experiments/");
            0
        }
        Some((name, code)) => {
            eprintln!("\nFAILED: {name} exited with code {code}");
            code
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_round_trips_through_any() {
        let j = job(|| vec![1u64, 2, 3]);
        assert_eq!(take::<Vec<u64>>(j()), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "unexpected type")]
    fn take_panics_on_wrong_type() {
        let j = job(|| 42u32);
        take::<String>(j());
    }

    #[test]
    fn subprocess_suite_forwards_first_failing_exit_code() {
        let sh = PathBuf::from("/bin/sh");
        if !sh.exists() {
            return;
        }
        let programs = vec![
            ("ok".to_string(), sh.clone()),
            ("fail3".to_string(), sh.clone()),
            ("fail7".to_string(), sh.clone()),
        ];
        // All children run `sh -c <first passthrough arg>`; use a script
        // that exits 0/3/7 depending on an env-free discriminator is not
        // possible with shared args, so test with uniform scripts instead.
        let ok = run_subprocesses(&programs[..1], &["-c".into(), "exit 0".into()]);
        assert_eq!(ok, 0);
        let code = run_subprocesses(&programs, &["-c".into(), "exit 3".into()]);
        assert_eq!(code, 3);
    }
}
