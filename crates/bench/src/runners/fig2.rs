//! Figure 2: request and byte miss-class breakdown for a global shared
//! cache as cache size varies (compulsory / capacity / communication /
//! error / uncachable).
//!
//! The x-axis is labeled in *full-scale-equivalent* GB: at `--scale s` the
//! simulated cache is `s × label` so that eviction pressure matches the
//! full-size experiment.

use crate::suite::{job, take, Experiment, Job, JobOutput};
use crate::{banner, Args};
use bh_cache::MissClass;
use bh_core::experiments::{miss_breakdown_point, MissBreakdownPoint};
use bh_trace::TraceCache;
use serde::Serialize;

/// Full-scale axis (GB), as in the paper's 0–35 GB sweep.
const AXIS: [f64; 7] = [1.0, 2.0, 5.0, 10.0, 20.0, 35.0, f64::INFINITY];

#[derive(Serialize)]
struct Fig2Series {
    trace: String,
    scale: f64,
    points: Vec<MissBreakdownPoint>,
}

/// The Figure 2 experiment. One job per (workload, cache size) cell.
pub struct Fig2;

impl Experiment for Fig2 {
    fn name(&self) -> &'static str {
        "fig2"
    }

    fn default_scale(&self) -> f64 {
        0.1
    }

    fn plan(&self, args: &Args) -> Vec<Job> {
        let seed = args.seed;
        let scale = args.scale;
        args.specs()
            .into_iter()
            .flat_map(|spec| {
                AXIS.map(move |gb| {
                    let spec = spec.clone();
                    let scaled_gb = if gb.is_finite() { gb * scale } else { gb };
                    job(move || {
                        let trace = TraceCache::get(&spec, seed);
                        let mut p = miss_breakdown_point(&trace, scaled_gb, 0.1);
                        // Relabel with the full-scale axis.
                        p.cache_gb = gb;
                        p
                    })
                })
            })
            .collect()
    }

    fn finish(&self, args: &Args, results: Vec<JobOutput>) {
        banner(
            "Figure 2",
            "miss-class breakdown vs global cache size",
            args,
        );
        let mut points = results.into_iter().map(take::<MissBreakdownPoint>);
        let mut out = Vec::new();
        for spec in args.specs() {
            let points: Vec<MissBreakdownPoint> = (0..AXIS.len())
                .map(|_| points.next().expect("plan/finish cell count"))
                .collect();
            println!("\n--- {} (per-read rates) ---", spec.name);
            println!(
                "{:>8} {:>8} {:>11} {:>9} {:>14} {:>7} {:>11} {:>11}",
                "GB",
                "hit",
                "compulsory",
                "capacity",
                "communication",
                "error",
                "uncachable",
                "total-miss"
            );
            for p in &points {
                let g = |class: MissClass| p.read_rates.get(class);
                println!(
                    "{:>8} {:>8.3} {:>11.3} {:>9.3} {:>14.3} {:>7.3} {:>11.3} {:>11.3}",
                    if p.cache_gb.is_finite() {
                        format!("{:.0}", p.cache_gb)
                    } else {
                        "inf".into()
                    },
                    g(MissClass::Hit),
                    g(MissClass::Compulsory),
                    g(MissClass::Capacity),
                    g(MissClass::Communication),
                    g(MissClass::Error),
                    g(MissClass::Uncachable),
                    p.total_miss_ratio
                );
            }
            out.push(Fig2Series {
                trace: spec.name.to_string(),
                scale: args.scale,
                points,
            });
        }
        println!("\n(paper: compulsory dominates; capacity misses minor for multi-GB caches;");
        println!(" DEC ≈19% compulsory; Berkeley/Prodigy have more uncachable + communication)");
        args.write_json("fig2", &out);
    }
}
