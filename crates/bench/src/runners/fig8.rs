//! Figure 8 + Table 6: simulated mean response time for the traditional
//! data hierarchy, the centralized directory, and the hint architecture,
//! under the Testbed / Min / Max access-time parameterizations, with
//! (a) infinite disk and (b) the space-constrained arrangement.

use crate::suite::{job, take, Experiment, Job, JobOutput};
use crate::{banner, fmt_speedup, Args};
use bh_core::experiments::{response_time_cells, ResponseTimeResult, FIGURE8_KINDS};
use bh_netmodel::{CostModel, RousskovModel, TestbedModel};
use bh_trace::TraceCache;
use serde::Serialize;

#[derive(Serialize)]
struct Fig8Out {
    results: Vec<ResponseTimeResult>,
    speedups: Vec<(String, bool, String, f64)>, // (trace, constrained, model, speedup)
}

/// One strategy's cells: `(strategy label, model name, mean ms)`.
type Cells = Vec<(String, String, f64)>;

/// The Figure 8 experiment. One job per (regime, workload, strategy).
pub struct Fig8;

impl Experiment for Fig8 {
    fn name(&self) -> &'static str {
        "fig8"
    }

    fn default_scale(&self) -> f64 {
        0.1
    }

    fn plan(&self, args: &Args) -> Vec<Job> {
        let seed = args.seed;
        let mut jobs = Vec::new();
        for constrained in [false, true] {
            for spec in args.specs() {
                for kind in FIGURE8_KINDS {
                    let spec = spec.clone();
                    jobs.push(job(move || {
                        let tb = TestbedModel::new();
                        let min = RousskovModel::min();
                        let max = RousskovModel::max();
                        // The paper's bar order.
                        let models: Vec<&dyn CostModel> = vec![&max, &min, &tb];
                        response_time_cells(
                            &TraceCache::get(&spec, seed),
                            constrained,
                            kind,
                            &models,
                        )
                    }));
                }
            }
        }
        jobs
    }

    fn finish(&self, args: &Args, results: Vec<JobOutput>) {
        banner(
            "Figure 8 / Table 6",
            "mean response time: Hierarchy vs Directory vs Hints",
            args,
        );
        let mut cells = results.into_iter().map(take::<Cells>);
        let mut out = Fig8Out {
            results: Vec::new(),
            speedups: Vec::new(),
        };
        for constrained in [false, true] {
            println!(
                "\n=== ({}) {} ===",
                if constrained { "b" } else { "a" },
                if constrained {
                    "space constrained"
                } else {
                    "infinite disk"
                }
            );
            for spec in args.specs() {
                let r = ResponseTimeResult {
                    workload: spec.name.to_string(),
                    space_constrained: constrained,
                    cells: (0..FIGURE8_KINDS.len())
                        .flat_map(|_| cells.next().expect("plan/finish cell count"))
                        .collect(),
                };
                println!("\n--- {} ---", spec.name);
                println!(
                    "{:<12} {:>10} {:>10} {:>10}",
                    "Strategy", "Max", "Min", "Testbed"
                );
                for strategy in ["Hierarchy", "Directory", "Hints"] {
                    println!(
                        "{:<12} {:>10.0} {:>10.0} {:>10.0}",
                        strategy,
                        r.cell(strategy, "Max").unwrap_or(f64::NAN),
                        r.cell(strategy, "Min").unwrap_or(f64::NAN),
                        r.cell(strategy, "Testbed").unwrap_or(f64::NAN),
                    );
                }
                print!("speedup (Hierarchy/Hints): ");
                for model in ["Max", "Min", "Testbed"] {
                    let s = r.speedup(model).unwrap_or(f64::NAN);
                    print!("{model}={} ", fmt_speedup(s));
                    out.speedups
                        .push((spec.name.to_string(), constrained, model.to_string(), s));
                }
                println!();
                out.results.push(r);
            }
        }
        println!("\n(paper Table 6 — speedups: Prodigy 1.80/1.38/2.31, Berkeley 1.79/1.32/2.79,");
        println!(" DEC 1.62/1.28/1.99 for Max/Min/Testbed; hints always win)");
        args.write_json("fig8", &out);
    }
}
