//! One module per experiment: each binary's logic, split into a parallel
//! job plan and a sequential finish (see [`crate::suite`]).

pub mod ablations;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod scenario;
pub mod table3;
pub mod table4;
pub mod table5;
