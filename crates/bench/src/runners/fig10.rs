//! Figure 10: simulated response time for the DEC trace under the push
//! algorithms — no-push data hierarchy, no-push hints, update push,
//! push-1, push-half, push-all, and the ideal-push upper bound
//! (space-constrained configuration).

use crate::suite::{job, take, Experiment, Job, JobOutput};
use crate::{banner, fmt_speedup, Args};
use bh_core::experiments::{push_row_cached, PushComparisonRow};
use bh_core::strategies::StrategyKind;
use bh_trace::TraceCache;
use serde::Serialize;

#[derive(Serialize)]
struct Fig10Out {
    trace: String,
    scale: f64,
    rows: Vec<PushComparisonRow>,
}

/// The Figure 10 experiment. One job per push strategy.
pub struct Fig10;

impl Experiment for Fig10 {
    fn name(&self) -> &'static str {
        "fig10"
    }

    fn default_scale(&self) -> f64 {
        0.05
    }

    fn plan(&self, args: &Args) -> Vec<Job> {
        let seed = args.seed;
        let spec = args.dec_spec();
        StrategyKind::FIGURE10
            .iter()
            .map(|&kind| {
                let spec = spec.clone();
                // The memoized row (priced under Max/Min/Testbed at once)
                // is shared with fig11, which needs the same simulations.
                job(move || (*push_row_cached(&TraceCache::get(&spec, seed), kind)).clone())
            })
            .collect()
    }

    fn finish(&self, args: &Args, results: Vec<JobOutput>) {
        let rows: Vec<PushComparisonRow> = results.into_iter().map(take).collect();
        banner(
            "Figure 10",
            "response time for push algorithms (DEC, space-constrained)",
            args,
        );
        println!(
            "\n{:<14} {:>9} {:>9} {:>9} {:>8}",
            "Strategy", "Max", "Min", "Testbed", "L1-hit%"
        );
        for r in &rows {
            let ms = |name: &str| {
                r.response_ms
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap_or(f64::NAN)
            };
            println!(
                "{:<14} {:>9.0} {:>9.0} {:>9.0} {:>7.1}%",
                r.strategy,
                ms("Max"),
                ms("Min"),
                ms("Testbed"),
                r.l1_hit_fraction * 100.0
            );
        }

        let ms_of = |label: &str, model: &str| {
            rows.iter()
                .find(|r| r.strategy == label)
                .and_then(|r| r.response_ms.iter().find(|(n, _)| n == model))
                .map(|(_, v)| *v)
                .unwrap_or(f64::NAN)
        };
        println!("\nSpeedups vs no-push hierarchy (Testbed):");
        for label in [
            "Hints",
            "Update Push",
            "Push-1",
            "Push-half",
            "Push-all",
            "Push-ideal",
        ] {
            println!(
                "  {:<12} {}",
                label,
                fmt_speedup(ms_of("Hierarchy", "Testbed") / ms_of(label, "Testbed"))
            );
        }
        println!("\n(paper: ideal push 1.54–2.63x vs data hierarchy and 1.21–1.62x vs hints;");
        println!(
            " hierarchical push 1.42–2.03x vs hierarchy, 1.12–1.25x vs hints; update push ≈ hints)"
        );
        args.write_json(
            "fig10",
            &Fig10Out {
                trace: args.dec_spec().name.to_string(),
                scale: args.scale,
                rows,
            },
        );
    }
}
