//! Figure 3: overall per-read and per-byte hit rates within infinite L1
//! caches (256 clients), L2 caches (2048 clients), and the L3 cache (all
//! clients) — sharing raises the achievable hit rate.

use crate::suite::{job, take, Experiment, Job, JobOutput};
use crate::{banner, Args};
use bh_core::experiments::{sharing_trace, SharingResult};
use bh_trace::TraceCache;

/// The Figure 3 experiment. One job per workload.
pub struct Fig3;

impl Experiment for Fig3 {
    fn name(&self) -> &'static str {
        "fig3"
    }

    fn default_scale(&self) -> f64 {
        0.1
    }

    fn plan(&self, args: &Args) -> Vec<Job> {
        let seed = args.seed;
        args.specs()
            .into_iter()
            .map(|spec| job(move || sharing_trace(&TraceCache::get(&spec, seed))))
            .collect()
    }

    fn finish(&self, args: &Args, results: Vec<JobOutput>) {
        let results: Vec<SharingResult> = results.into_iter().map(take).collect();
        banner(
            "Figure 3",
            "hit rates vs sharing level (infinite caches)",
            args,
        );
        println!(
            "\n{:<10} {:>8} {:>8} {:>8}   {:>9} {:>9} {:>9}",
            "Trace", "L1 hit", "L2 hit", "L3 hit", "L1 bytes", "L2 bytes", "L3 bytes"
        );
        for r in &results {
            println!(
                "{:<10} {:>8.3} {:>8.3} {:>8.3}   {:>9.3} {:>9.3} {:>9.3}",
                r.workload,
                r.hit_ratio[0],
                r.hit_ratio[1],
                r.hit_ratio[2],
                r.byte_hit_ratio[0],
                r.byte_hit_ratio[1],
                r.byte_hit_ratio[2]
            );
        }
        println!("\n(paper, DEC: 50% L1 → 62% L2 → 78% L3; hit rate grows with sharing)");
        args.write_json("fig3", &results);
    }
}
