//! Table 5: average number of location-hint updates sent to the root —
//! centralized directory (receives everything) vs the filtering metadata
//! hierarchy, DEC trace, 64 L1 proxies × 256 clients.

use crate::suite::{job, take, Experiment, Job, JobOutput};
use crate::{banner, Args};
use bh_core::experiments::{update_load_trace, UpdateLoadResult};
use bh_trace::TraceCache;
use serde::Serialize;

#[derive(Serialize)]
struct Table5Out {
    trace: String,
    scale: f64,
    result: UpdateLoadResult,
    filtering_factor: f64,
}

/// The Table 5 experiment: a single simulation.
pub struct Table5;

impl Experiment for Table5 {
    fn name(&self) -> &'static str {
        "table5"
    }

    fn default_scale(&self) -> f64 {
        0.1
    }

    fn plan(&self, args: &Args) -> Vec<Job> {
        let seed = args.seed;
        let spec = args.dec_spec();
        vec![job(move || {
            update_load_trace(&TraceCache::get(&spec, seed))
        })]
    }

    fn finish(&self, args: &Args, results: Vec<JobOutput>) {
        let [result] = <[JobOutput; 1]>::try_from(results).unwrap_or_else(|_| unreachable!());
        let result: UpdateLoadResult = take(result);
        banner(
            "Table 5",
            "hint-update load at the root (updates/second)",
            args,
        );
        let factor = result.centralized_rate / result.hierarchy_rate.max(1e-9);

        println!("\n{:<26} {:>16}", "Organization", "updates/second");
        println!(
            "{:<26} {:>16.2}",
            "Centralized directory", result.centralized_rate
        );
        println!("{:<26} {:>16.2}", "Hierarchy", result.hierarchy_rate);
        println!("\nfiltering reduces root load by {factor:.2}x");
        println!("(paper: 5.7 vs 1.9 updates/second — a 3.0x reduction; rates scale with");
        println!(" request rate, so compare the ratio at reduced scale, not the absolutes)");

        args.write_json(
            "table5",
            &Table5Out {
                trace: args.dec_spec().name.to_string(),
                scale: args.scale,
                result,
                filtering_factor: factor,
            },
        );
    }
}
