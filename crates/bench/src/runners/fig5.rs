//! Figure 5: global hit rate vs hint-cache size (16-byte records, 4-way
//! set-associative), DEC trace, 64 proxies × 256 clients.
//!
//! X-axis labels are full-scale-equivalent MB (the simulated store is
//! `scale ×` the label, matching the scaled object universe).

use crate::suite::{job, take, Experiment, Job, JobOutput};
use crate::{banner, Args};
use bh_core::experiments::{hint_size_point, HintSweepPoint};
use bh_trace::TraceCache;
use serde::Serialize;

const AXIS: [f64; 7] = [0.1, 1.0, 10.0, 50.0, 100.0, 500.0, f64::INFINITY];

#[derive(Serialize)]
struct Fig5Out {
    trace: String,
    scale: f64,
    points: Vec<HintSweepPoint>,
}

/// The Figure 5 experiment. One job per hint-store size.
pub struct Fig5;

impl Experiment for Fig5 {
    fn name(&self) -> &'static str {
        "fig5"
    }

    fn default_scale(&self) -> f64 {
        0.05
    }

    fn plan(&self, args: &Args) -> Vec<Job> {
        let seed = args.seed;
        let scale = args.scale;
        let spec = args.dec_spec();
        AXIS.iter()
            .map(|&mb| {
                let spec = spec.clone();
                let scaled_mb = if mb.is_finite() { mb * scale } else { mb };
                job(move || {
                    let mut p = hint_size_point(&TraceCache::get(&spec, seed), scaled_mb);
                    p.x = mb; // relabel with the full-scale axis
                    p
                })
            })
            .collect()
    }

    fn finish(&self, args: &Args, results: Vec<JobOutput>) {
        let points: Vec<HintSweepPoint> = results.into_iter().map(take).collect();
        banner("Figure 5", "hit rate vs hint-cache size (MB)", args);
        println!(
            "\n{:>10} {:>10} {:>13} {:>13}",
            "MB", "hit-rate", "remote-hits", "false-pos"
        );
        for p in &points {
            println!(
                "{:>10} {:>10.3} {:>13.3} {:>13.4}",
                if p.x.is_finite() {
                    format!("{:.1}", p.x)
                } else {
                    "inf".into()
                },
                p.hit_ratio,
                p.remote_hit_fraction,
                p.false_positive_rate
            );
        }
        println!(
            "\n(paper: <10 MB adds little reach; ~100 MB tracks almost all data in the system)"
        );
        args.write_json(
            "fig5",
            &Fig5Out {
                trace: args.dec_spec().name.to_string(),
                scale: args.scale,
                points,
            },
        );
    }
}
