//! Figure 11: (a) efficiency — the fraction of pushed bytes later used —
//! and (b) bandwidth consumed by pushed vs demand-fetched data, for the
//! push algorithms on the DEC trace.

use crate::suite::{job, take, Experiment, Job, JobOutput};
use crate::{banner, Args};
use bh_core::experiments::{push_row_cached, PushComparisonRow};
use bh_core::strategies::StrategyKind;
use bh_trace::TraceCache;
use serde::Serialize;

#[derive(Serialize)]
struct Fig11Out {
    trace: String,
    scale: f64,
    rows: Vec<PushComparisonRow>,
}

/// The Figure 11 experiment. One job per push strategy.
pub struct Fig11;

impl Experiment for Fig11 {
    fn name(&self) -> &'static str {
        "fig11"
    }

    fn default_scale(&self) -> f64 {
        0.05
    }

    fn plan(&self, args: &Args) -> Vec<Job> {
        let seed = args.seed;
        let spec = args.dec_spec();
        StrategyKind::FIGURE10
            .iter()
            .map(|&kind| {
                let spec = spec.clone();
                // Reuses fig10's memoized simulations; the row is priced
                // under Max/Min/Testbed, and this figure keeps only the
                // Testbed column (its historical artifact shape).
                job(move || {
                    let mut row = (*push_row_cached(&TraceCache::get(&spec, seed), kind)).clone();
                    row.response_ms.retain(|(model, _)| model == "Testbed");
                    row
                })
            })
            .collect()
    }

    fn finish(&self, args: &Args, results: Vec<JobOutput>) {
        let rows: Vec<PushComparisonRow> = results.into_iter().map(take).collect();
        banner(
            "Figure 11",
            "push efficiency and bandwidth (DEC, space-constrained)",
            args,
        );
        println!("\n(a) efficiency — fraction of pushed bytes later accessed");
        println!("{:<14} {:>12}", "Strategy", "efficiency");
        for r in rows.iter().filter(|r| r.push_bw_kbps > 0.0) {
            println!("{:<14} {:>12.3}", r.strategy, r.efficiency);
        }

        println!("\n(b) bandwidth (KB/s over the measured window)");
        println!(
            "{:<14} {:>10} {:>10} {:>10}",
            "Strategy", "pushed", "demand", "total"
        );
        for r in &rows {
            println!(
                "{:<14} {:>10.1} {:>10.1} {:>10.1}",
                r.strategy,
                r.push_bw_kbps,
                r.demand_bw_kbps,
                r.push_bw_kbps + r.demand_bw_kbps
            );
        }

        println!("\n(paper: update push ≈1/3 of pushed bytes used; hierarchical push 4–13%");
        println!(" efficient and up to ~4x the demand bandwidth — latency bought with bandwidth)");
        args.write_json(
            "fig11",
            &Fig11Out {
                trace: args.dec_spec().name.to_string(),
                scale: args.scale,
                rows,
            },
        );
    }
}
