//! Ablations for the design choices DESIGN.md §4 calls out:
//!
//! 1. hint-store associativity (the paper picks 4-way);
//! 2. Plaxton tree arity (binary vs 16-ary) — route length and root spread;
//! 3. hint placement: proxy-level (Figure 4-a) vs client-level (Figure 4-b)
//!    pricing, the §3.3 trade-off the paper describes but does not graph;
//! 4. the client-hint false-negative sweep;
//! 5. ICP multicast vs hints; 6. Plaxton metadata routing; 7. replacement.

use crate::suite::{job, take, Experiment, Job, JobOutput};
use crate::{banner, Args};
use bh_cache::HintCache;
use bh_core::experiments::{
    client_hint_tradeoff, hint_placement, ClientHintTradeoff, HintPlacementResult,
};
use bh_core::sim::{SimConfig, Simulator};
use bh_core::strategies::StrategyKind;
use bh_netmodel::{CostModel, RousskovModel, TestbedModel};
use bh_plaxton::{NodeSpec, PlaxtonTree};
use bh_simcore::rng::Xoshiro256;
use bh_simcore::ByteSize;
use bh_trace::TraceCache;
use serde::Serialize;

#[derive(Serialize)]
struct AblationsOut {
    associativity: Vec<(usize, f64)>, // (ways, survival rate of hot keys)
    plaxton: Vec<(u32, f64, f64)>,    // (arity bits, avg route len, root spread)
    placement_proxy_ms: Vec<(String, f64)>,
    placement_client_ms: Vec<(String, f64)>,
    client_hint_crossover: Option<f64>,  // §3.3's ~50% claim
    icp_vs_hints_ms: Vec<(String, f64)>, // (strategy, Testbed mean ms)
    replacement: Vec<(String, f64)>,     // (policy, request hit rate)
}

/// Associativity ablation: a fixed-size store absorbs a Zipf update stream;
/// how often do lookups of recently-inserted keys still succeed?
fn associativity_sweep() -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for ways in [1usize, 2, 4, 8] {
        let mut store = HintCache::with_capacity_and_ways(ByteSize::from_kb(64), ways);
        let mut rng = Xoshiro256::seed_from_u64(7);
        let zipf = bh_simcore::rng::Zipf::new(20_000, 0.8);
        let mut found = 0u64;
        let mut probes = 0u64;
        for i in 0..200_000u64 {
            let key = zipf.sample(&mut rng) + 1;
            store.insert(key, i);
            // Probe a recently popular key.
            let probe = zipf.sample(&mut rng) + 1;
            probes += 1;
            if store.lookup(probe).is_some() {
                found += 1;
            }
        }
        out.push((ways, found as f64 / probes as f64));
    }
    out
}

fn plaxton_sweep() -> Vec<(u32, f64, f64)> {
    let nodes: Vec<NodeSpec> = (0..64)
        .map(|i| {
            NodeSpec::from_address(
                &format!("10.1.{}.{}:3128", i / 8, i % 8),
                ((i % 8) as f64, (i / 8) as f64),
            )
        })
        .collect();
    [1u32, 2, 4]
        .into_iter()
        .map(|bits| {
            let tree = PlaxtonTree::build(nodes.clone(), bits).expect("build");
            let mut total_len = 0usize;
            let mut count = 0usize;
            let mut roots = vec![0u32; 64];
            for obj in 0..2_000u64 {
                let key = bh_md5::md5(obj.to_le_bytes()).low64();
                roots[tree.root_of(key)] += 1;
                for from in [0usize, 21, 42, 63] {
                    total_len += tree.route(from, key).len();
                    count += 1;
                }
            }
            let nonzero = roots.iter().filter(|&&c| c > 0).count() as f64 / 64.0;
            (bits, total_len as f64 / count as f64, nonzero)
        })
        .collect()
}

/// Replacement-policy ablation: LRU vs GreedyDual-Size vs seeded-Random
/// request hit rate on the actual workload stream through one
/// space-constrained shared cache. Rows follow [`Replacement::ALL`].
/// Public so the golden regression can pin the rows digit-for-digit
/// through the parallel engine without replaying the whole experiment.
pub fn replacement_sweep(spec: &bh_trace::WorkloadSpec, seed: u64) -> Vec<(String, f64)> {
    use bh_cache::{GdsCache, LruCache, RandomCache, Replacement};
    // Size the cache well below the unique-byte footprint (~p_new × requests
    // × 10 KB) so replacement actually matters.
    let capacity = ByteSize::from_mb(((spec.requests as f64) * 0.0003) as u64 + 8);
    let mut lru = LruCache::new(capacity);
    let mut gds = GdsCache::new(capacity);
    let mut rnd = RandomCache::new(capacity, seed);
    let mut hits = [0u64; 3];
    let mut total = 0u64;
    for r in TraceCache::get(spec, seed).iter() {
        if !r.is_cacheable() {
            continue;
        }
        total += 1;
        let key = r.object.key();
        if lru.get(key, r.version).is_some() {
            hits[0] += 1;
        } else {
            lru.insert(key, r.size, r.version);
        }
        if gds.get(key, r.version).is_some() {
            hits[1] += 1;
        } else {
            gds.insert(key, r.size, r.version);
        }
        if rnd.get(key, r.version).is_some() {
            hits[2] += 1;
        } else {
            rnd.insert(key, r.size, r.version);
        }
    }
    Replacement::ALL
        .into_iter()
        .zip(hits)
        .map(|(policy, h)| (policy.label().to_string(), h as f64 / total.max(1) as f64))
        .collect()
}

/// Metadata-routing ablation result: (updates, mean hops, busiest share,
/// load imbalance).
type MetadataStats = (u64, f64, f64, f64);

fn metadata_sweep(spec: &bh_trace::WorkloadSpec, seed: u64) -> MetadataStats {
    let topo = bh_core::topology::Topology::from_spec(spec);
    let mut md = bh_core::metadata::MetadataHierarchy::new(&topo, 2);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    // Route one update per first-copy event (~p_new × requests, capped for
    // the ablation).
    let events = ((spec.requests as f64 * spec.p_new) as u64).min(100_000);
    for i in 0..events {
        let key = bh_md5::md5(i.to_le_bytes()).low64();
        md.route_update(rng.below(topo.l1_count() as u64) as u32, key);
    }
    let ms = md.stats();
    (
        ms.updates,
        ms.mean_hops,
        ms.busiest_node_share * 100.0,
        ms.load_imbalance,
    )
}

/// The ablations experiment. One job per section (two for the ICP
/// comparison, one per strategy).
pub struct Ablations;

const ICP_KINDS: [StrategyKind; 2] = [StrategyKind::IcpMulticast, StrategyKind::HintHierarchy];

impl Experiment for Ablations {
    fn name(&self) -> &'static str {
        "ablations"
    }

    fn default_scale(&self) -> f64 {
        0.02
    }

    fn plan(&self, args: &Args) -> Vec<Job> {
        let seed = args.seed;
        let spec = args.dec_spec();
        let mut jobs: Vec<Job> = Vec::new();
        jobs.push(job(associativity_sweep));
        jobs.push(job(plaxton_sweep));
        {
            let spec = spec.clone();
            jobs.push(job(move || {
                let tb = TestbedModel::new();
                let min = RousskovModel::min();
                let models: Vec<&dyn CostModel> = vec![&tb, &min];
                hint_placement(&spec, seed, &models)
            }));
        }
        {
            let spec = spec.clone();
            jobs.push(job(move || {
                let tb = TestbedModel::new();
                let min = RousskovModel::min();
                let models: Vec<&dyn CostModel> = vec![&tb, &min];
                client_hint_tradeoff(&spec, seed, &[0.0, 0.25, 0.5, 0.75, 1.0], &models)
            }));
        }
        for kind in ICP_KINDS {
            let spec = spec.clone();
            jobs.push(job(move || {
                let tb = TestbedModel::new();
                let min = RousskovModel::min();
                let models: Vec<&dyn CostModel> = vec![&tb, &min];
                let sim = Simulator::new(SimConfig::infinite(&spec));
                let r = sim.run_trace(&TraceCache::get(&spec, seed), kind, &models);
                (
                    kind.label().to_string(),
                    r.mean_response_ms("Testbed").unwrap_or(f64::NAN),
                    r.metrics.hit_ratio(),
                )
            }));
        }
        {
            let spec = spec.clone();
            jobs.push(job(move || metadata_sweep(&spec, seed)));
        }
        jobs.push(job(move || replacement_sweep(&spec, seed)));
        jobs
    }

    fn finish(&self, args: &Args, results: Vec<JobOutput>) {
        let mut results = results.into_iter();
        let mut next = || results.next().expect("plan/finish job count");
        let associativity: Vec<(usize, f64)> = take(next());
        let plaxton: Vec<(u32, f64, f64)> = take(next());
        let placement: HintPlacementResult = take(next());
        let tradeoff: ClientHintTradeoff = take(next());
        let icp_rows: Vec<(String, f64, f64)> =
            ICP_KINDS.map(|_| take(next())).into_iter().collect();
        let metadata: MetadataStats = take(next());
        let replacement: Vec<(String, f64)> = take(next());

        banner(
            "Ablations",
            "associativity, Plaxton arity, hint placement",
            args,
        );

        println!("\n1. Hint-store associativity (64 KB store, Zipf stream):");
        println!("{:>6} {:>14}", "ways", "probe hit rate");
        for (ways, rate) in &associativity {
            println!("{ways:>6} {rate:>14.3}");
        }

        println!("\n2. Plaxton tree arity (64 nodes):");
        println!(
            "{:>10} {:>14} {:>18}",
            "arity", "avg route len", "root coverage"
        );
        for (bits, len, spread) in &plaxton {
            println!("{:>9}b {len:>14.2} {spread:>18.2}", 1u32 << bits);
        }

        println!("\n3. Hint placement — proxy (Fig 4-a) vs client (Fig 4-b) pricing:");
        println!(
            "{:<10} {:>12} {:>12} {:>9}",
            "Model", "proxy ms", "client ms", "gain"
        );
        for ((name, p), (_, c)) in placement.proxy_ms.iter().zip(&placement.client_ms) {
            println!(
                "{:<10} {:>12.0} {:>12.0} {:>8.1}%",
                name,
                p,
                c,
                (1.0 - c / p) * 100.0
            );
        }
        println!("(paper §3.3: client hints improve response time by up to ~20% when client");
        println!(" hint caches match proxy hit rates)");

        println!("\n4. Client-hint false-negative sweep (§3.3's 50% claim):");
        println!("{:>8} {:>12}", "fn-rate", "Testbed ms");
        println!(
            "{:>8} {:>12.0}   (proxy-level baseline)",
            "-", tradeoff.proxy_ms[0].1
        );
        for (fnr, ms) in &tradeoff.client_points {
            println!("{fnr:>8.2} {:>12.0}", ms[0].1);
        }
        let crossover = tradeoff.crossover_fn_rate("Testbed");
        println!(
            "client config wins up to fn-rate ≈ {} (paper: below ~50%)",
            crossover
                .map(|c| format!("{c:.2}"))
                .unwrap_or_else(|| "never".into())
        );

        println!("\n5. ICP multicast vs hints (related-work baseline):");
        for (label, ms, hit_ratio) in &icp_rows {
            println!("  {label:<8} {ms:>9.0} ms (hit rate {hit_ratio:.3})");
        }
        println!("  (ICP polls only the L2 neighborhood and pays a query wait on every miss)");

        println!("\n6. Plaxton metadata routing under the DEC first-copy stream (§3.1.3):");
        let (updates, mean_hops, busiest_pct, imbalance) = metadata;
        println!(
            "  {updates} updates, {mean_hops:.2} mean hops, busiest node {busiest_pct:.1}% of traffic ({imbalance:.2}x mean)"
        );
        println!("  (a centralized directory would put 100% on one node)");

        println!("\n7. Replacement policy under space pressure (shared cache, DEC stream):");
        for (policy, rate) in &replacement {
            println!("  {policy:<18} request hit rate {rate:.3}");
        }
        println!("  (GreedyDual-Size trades byte hit rate for request hit rate — the era's");
        println!("   standard answer to the paper's 'more aggressive use of cache space')");

        args.write_json(
            "ablations",
            &AblationsOut {
                associativity,
                plaxton,
                placement_proxy_ms: placement.proxy_ms,
                placement_client_ms: placement.client_ms,
                client_hint_crossover: crossover,
                icp_vs_hints_ms: icp_rows
                    .into_iter()
                    .map(|(label, ms, _)| (label, ms))
                    .collect(),
                replacement,
            },
        );
    }
}
