//! Table 4: characteristics of the trace workloads — regenerated from the
//! synthetic workload models (clients, accesses, distinct URLs, days).
//!
//! In suite mode this is the first experiment to touch each workload's
//! trace, so its jobs populate the process-wide [`bh_trace::TraceCache`]
//! for everything that follows.

use crate::suite::{job, take, Experiment, Job, JobOutput};
use crate::{banner, Args};
use bh_trace::{TraceCache, TraceSummary};
use serde::Serialize;

#[derive(Serialize)]
struct Table4Row {
    trace: String,
    summary: TraceSummary,
    paper_clients: u64,
    paper_accesses_m: f64,
    paper_distinct_m: f64,
}

const PAPER: &[(&str, u64, f64, f64)] = &[
    ("DEC", 16_660, 22.1, 4.15),
    ("Berkeley", 8_372, 8.8, 1.8),
    ("Prodigy", 35_354, 4.2, 1.2),
];

/// The Table 4 experiment.
pub struct Table4;

impl Experiment for Table4 {
    fn name(&self) -> &'static str {
        "table4"
    }

    fn default_scale(&self) -> f64 {
        0.1
    }

    fn plan(&self, args: &Args) -> Vec<Job> {
        let seed = args.seed;
        args.specs()
            .into_iter()
            .map(|spec| {
                job(move || {
                    let trace = TraceCache::get(&spec, seed);
                    let summary = TraceSummary::compute(trace.iter());
                    let (pc, pa, pd) = PAPER
                        .iter()
                        .find(|(n, ..)| *n == spec.name.to_string())
                        .map(|(_, c, a, d)| (*c, *a, *d))
                        .unwrap_or((0, 0.0, 0.0));
                    Table4Row {
                        trace: spec.name.to_string(),
                        summary,
                        paper_clients: pc,
                        paper_accesses_m: pa,
                        paper_distinct_m: pd,
                    }
                })
            })
            .collect()
    }

    fn finish(&self, args: &Args, results: Vec<JobOutput>) {
        let rows: Vec<Table4Row> = results.into_iter().map(take).collect();
        banner(
            "Table 4",
            "characteristics of trace workloads (scaled)",
            args,
        );
        println!(
            "\n{:<10} {:>9} {:>12} {:>14} {:>7}   (paper @ scale 1: clients / accesses / distinct)",
            "Trace", "Clients", "Accesses", "DistinctURLs", "Days"
        );
        for r in &rows {
            println!(
                "{}   ({} / {:.1}M / {:.2}M)",
                r.summary.table4_row(&r.trace),
                r.paper_clients,
                r.paper_accesses_m,
                r.paper_distinct_m,
            );
        }
        println!("\nDistinct/total ratios should match the paper at any scale:");
        for r in &rows {
            println!(
                "  {:<10} distinct/total = {:.3} (paper: {:.3})",
                r.trace,
                r.summary.distinct_ratio,
                r.paper_distinct_m / r.paper_accesses_m
            );
        }
        args.write_json("table4", &rows);
    }
}
