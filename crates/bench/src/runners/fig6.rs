//! Figure 6: global hit rate vs hint propagation delay (minutes), DEC
//! trace — performance is good as long as updates propagate within a few
//! minutes.

use crate::suite::{job, take, Experiment, Job, JobOutput};
use crate::{banner, Args};
use bh_core::experiments::{hint_delay_point, HintSweepPoint};
use bh_trace::TraceCache;
use serde::Serialize;

const DELAYS: [f64; 7] = [0.0, 1.0, 5.0, 10.0, 60.0, 300.0, 1000.0];

#[derive(Serialize)]
struct Fig6Out {
    trace: String,
    scale: f64,
    points: Vec<HintSweepPoint>,
}

/// The Figure 6 experiment. One job per propagation delay.
pub struct Fig6;

impl Experiment for Fig6 {
    fn name(&self) -> &'static str {
        "fig6"
    }

    fn default_scale(&self) -> f64 {
        0.05
    }

    fn plan(&self, args: &Args) -> Vec<Job> {
        let seed = args.seed;
        let spec = args.dec_spec();
        DELAYS
            .iter()
            .map(|&mins| {
                let spec = spec.clone();
                job(move || hint_delay_point(&TraceCache::get(&spec, seed), mins))
            })
            .collect()
    }

    fn finish(&self, args: &Args, results: Vec<JobOutput>) {
        let points: Vec<HintSweepPoint> = results.into_iter().map(take).collect();
        banner(
            "Figure 6",
            "hit rate vs hint propagation delay (minutes)",
            args,
        );
        println!(
            "\n{:>10} {:>10} {:>13} {:>13}",
            "minutes", "hit-rate", "remote-hits", "false-pos"
        );
        for p in &points {
            println!(
                "{:>10.0} {:>10.3} {:>13.3} {:>13.4}",
                p.x, p.hit_ratio, p.remote_hit_fraction, p.false_positive_rate
            );
        }
        println!("\n(paper: hit rate holds up to a few minutes of delay, then degrades)");
        args.write_json(
            "fig6",
            &Fig6Out {
                trace: args.dec_spec().name.to_string(),
                scale: args.scale,
                points,
            },
        );
    }
}
