//! Scenario experiment: hint-propagation lag vs the flash-crowd
//! hit-rate ramp.
//!
//! The flash-crowd scenario makes one cold object's request share ramp
//! to viral on a seeded schedule. Whether the mesh converts that ramp
//! into cache hits depends on how fast hints propagate: with zero lag
//! every replica learns about the hot object as soon as any node caches
//! it, while a lag comparable to the ramp length leaves peers probing
//! the origin through the entire viral window.
//!
//! This experiment sweeps hint-propagation delay over the *same*
//! flash-crowd arena ([`FlashCrowdSpec::materialize`], so the request
//! stream is byte-identical across delays) and over the matching
//! no-crowd baseline arena, and reports the viral benefit — the
//! hit-ratio gap between the two — at each lag. The artifact is the
//! versioned `scenario_flash_crowd_lag.json` Report.

use crate::suite::{job, take, Experiment, Job, JobOutput};
use crate::{banner, Args};
use bh_core::experiments::{hint_delay_point, HintSweepPoint};
use bh_trace::scenario::FlashCrowdSpec;
use serde::Serialize;
use std::sync::Arc;

/// Hint-propagation lags swept, in minutes (0 = synchronous hints).
const DELAYS_MIN: [f64; 5] = [0.0, 1.0, 5.0, 15.0, 60.0];

/// Ramp checkpoints reported, as fractions of the trace.
const RAMP_CHECKPOINTS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// The flash-crowd spec this experiment sweeps: the scaled DEC base
/// with a ramp spanning the middle half of the trace, peaking at a 30%
/// request share — squarely "viral" while leaving background traffic
/// to keep the rest of the mesh busy.
fn flash_spec(args: &Args) -> FlashCrowdSpec {
    let base = args.dec_spec();
    let requests = base.requests;
    FlashCrowdSpec {
        base,
        ramp_start: requests / 4,
        ramp_len: (requests / 2).max(1),
        peak_share: 0.3,
    }
}

/// One row of the lag table.
#[derive(Debug, Serialize)]
struct LagRow {
    /// Hint-propagation delay in minutes.
    delay_min: f64,
    /// Hit ratio over the flash-crowd arena.
    flash_hit_ratio: f64,
    /// Hit ratio over the no-crowd baseline arena.
    baseline_hit_ratio: f64,
    /// `flash - baseline`: what the viral object is worth at this lag.
    viral_benefit: f64,
    /// False-positive probe rate over the flash-crowd arena.
    flash_false_positive_rate: f64,
}

/// One scheduled ramp checkpoint (a pure function of the spec).
#[derive(Debug, Serialize)]
struct RampPoint {
    /// Position in the trace, as a request index.
    request: u64,
    /// The hot object's scheduled request share at that index.
    share: f64,
}

#[derive(Debug, Serialize)]
struct ScenarioLagOut {
    /// Spec identity (seed-independent), ties the Report to the
    /// `loadgen --scenario flash-crowd` artifacts.
    workload_fingerprint: u64,
    /// The hot object's scheduled ramp.
    ramp: Vec<RampPoint>,
    /// Hit rate vs propagation lag, flash vs baseline.
    rows: Vec<LagRow>,
}

/// The scenario experiment. One job per (arena, delay) cell.
pub struct ScenarioLag;

impl Experiment for ScenarioLag {
    fn name(&self) -> &'static str {
        "scenario"
    }

    fn default_scale(&self) -> f64 {
        0.05
    }

    fn plan(&self, args: &Args) -> Vec<Job> {
        let spec = flash_spec(args);
        let flash = Arc::new(spec.materialize(args.seed));
        let baseline = bh_trace::TraceCache::get(&spec.base, args.seed);
        let mut jobs = Vec::new();
        for &mins in &DELAYS_MIN {
            let flash = Arc::clone(&flash);
            jobs.push(job(move || hint_delay_point(&flash, mins)));
            let baseline = Arc::clone(&baseline);
            jobs.push(job(move || hint_delay_point(&baseline, mins)));
        }
        jobs
    }

    fn finish(&self, args: &Args, results: Vec<JobOutput>) {
        banner(
            "Scenario: flash crowd",
            "hint-propagation lag vs hit-rate ramp",
            args,
        );
        let spec = flash_spec(args);
        let requests = spec.base.requests;
        let ramp: Vec<RampPoint> = RAMP_CHECKPOINTS
            .iter()
            .map(|&frac| {
                let request = ((requests.saturating_sub(1)) as f64 * frac) as u64;
                RampPoint {
                    request,
                    share: spec.share_at(request),
                }
            })
            .collect();
        println!(
            "hot-object ramp: starts at request {}, {} long, peak share {:.0}%",
            spec.ramp_start,
            spec.ramp_len,
            spec.peak_share * 100.0
        );
        for p in &ramp {
            println!(
                "  request {:>9}  share {:>5.1}%",
                p.request,
                p.share * 100.0
            );
        }

        let mut points = results.into_iter().map(take::<HintSweepPoint>);
        let mut rows = Vec::new();
        println!(
            "\n{:>9}  {:>10}  {:>10}  {:>9}  {:>8}",
            "lag (min)", "flash hit", "base hit", "benefit", "fp rate"
        );
        for &mins in &DELAYS_MIN {
            let flash = points.next().expect("plan/finish cell count");
            let base = points.next().expect("plan/finish cell count");
            let row = LagRow {
                delay_min: mins,
                flash_hit_ratio: flash.hit_ratio,
                baseline_hit_ratio: base.hit_ratio,
                viral_benefit: flash.hit_ratio - base.hit_ratio,
                flash_false_positive_rate: flash.false_positive_rate,
            };
            println!(
                "{:>9.0}  {:>9.1}%  {:>9.1}%  {:>+8.1}%  {:>8.4}",
                row.delay_min,
                row.flash_hit_ratio * 100.0,
                row.baseline_hit_ratio * 100.0,
                row.viral_benefit * 100.0,
                row.flash_false_positive_rate,
            );
            rows.push(row);
        }
        println!(
            "\n(a viral object is the most lag-tolerant traffic: after one miss every node\n\
             holds it locally, so rising lag hurts the long-tail baseline more than the\n\
             flash arena and the benefit column widens — see EXPERIMENTS.md Scenarios)"
        );
        args.write_json(
            "scenario_flash_crowd_lag",
            &ScenarioLagOut {
                workload_fingerprint: spec.fingerprint(),
                ramp,
                rows,
            },
        );
    }
}
