//! Figure 1: measured access times in the testbed hierarchy for objects of
//! various sizes — (a) through the hierarchy, (b) fetched directly, and
//! (c) directly via the L1 proxy.

use crate::suite::{job, take, Experiment, Job, JobOutput};
use crate::{banner, Args};
use bh_netmodel::{CostModel, Level, RemoteDistance, TestbedModel};
use bh_simcore::ByteSize;
use serde::Serialize;

#[derive(Serialize)]
pub(crate) struct Fig1Row {
    size_kb: u64,
    hier_l1: f64,
    hier_l2: f64,
    hier_l3: f64,
    hier_srv: f64,
    direct_l1: f64,
    direct_l2: f64,
    direct_l3: f64,
    direct_srv: f64,
    via_l1_l2: f64,
    via_l1_l3: f64,
    via_l1_srv: f64,
}

fn build_rows() -> Vec<Fig1Row> {
    let m = TestbedModel::new();
    let sizes: Vec<u64> = (1..=10).map(|i| 1u64 << i).collect(); // 2KB..1MB
    sizes
        .iter()
        .map(|&kb| {
            let s = ByteSize::from_kb(kb);
            Fig1Row {
                size_kb: kb,
                hier_l1: m.hierarchy_hit(Level::L1, s).as_millis_f64(),
                hier_l2: m.hierarchy_hit(Level::L2, s).as_millis_f64(),
                hier_l3: m.hierarchy_hit(Level::L3, s).as_millis_f64(),
                hier_srv: m.hierarchy_miss(s).as_millis_f64(),
                direct_l1: m.hierarchy_hit(Level::L1, s).as_millis_f64(),
                direct_l2: m
                    .remote_fetch_from_client(RemoteDistance::SameL2, s)
                    .as_millis_f64(),
                direct_l3: m
                    .remote_fetch_from_client(RemoteDistance::SameL3, s)
                    .as_millis_f64(),
                direct_srv: m.server_fetch_from_client(s).as_millis_f64(),
                via_l1_l2: m.remote_fetch(RemoteDistance::SameL2, s).as_millis_f64(),
                via_l1_l3: m.remote_fetch(RemoteDistance::SameL3, s).as_millis_f64(),
                via_l1_srv: m.server_fetch(s).as_millis_f64(),
            }
        })
        .collect()
}

/// The Figure 1 experiment.
pub struct Fig1;

impl Experiment for Fig1 {
    fn name(&self) -> &'static str {
        "fig1"
    }

    fn default_scale(&self) -> f64 {
        1.0
    }

    fn plan(&self, _args: &Args) -> Vec<Job> {
        vec![job(build_rows)]
    }

    fn finish(&self, args: &Args, results: Vec<JobOutput>) {
        let [rows] = <[JobOutput; 1]>::try_from(results).unwrap_or_else(|_| unreachable!());
        let rows: Vec<Fig1Row> = take(rows);
        banner("Figure 1", "testbed access time vs object size (ms)", args);

        println!("\n(a) through the hierarchy          (b) direct                     (c) via L1");
        println!(
            "{:>7} | {:>8} {:>8} {:>8} {:>9} | {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
            "size",
            "L1",
            "L1-L2",
            "L1-L2-L3",
            "..SRV",
            "CLN-L1",
            "CLN-L2",
            "CLN-L3",
            "CLN-SRV",
            "L1-L2",
            "L1-L3",
            "L1-SRV"
        );
        for r in &rows {
            println!(
                "{:>5}KB | {:>8.0} {:>8.0} {:>8.0} {:>9.0} | {:>8.0} {:>8.0} {:>8.0} {:>8.0} | {:>8.0} {:>8.0} {:>8.0}",
                r.size_kb, r.hier_l1, r.hier_l2, r.hier_l3, r.hier_srv,
                r.direct_l1, r.direct_l2, r.direct_l3, r.direct_srv,
                r.via_l1_l2, r.via_l1_l3, r.via_l1_srv
            );
        }

        // The paper's §2.1.1 anchors.
        let m = TestbedModel::new();
        let s8 = ByteSize::from_kb(8);
        let hier3 = m.hierarchy_hit(Level::L3, s8).as_millis_f64();
        let dir3 = m
            .remote_fetch_from_client(RemoteDistance::SameL3, s8)
            .as_millis_f64();
        println!(
            "\n8KB L3: hierarchy {hier3:.0} ms vs direct {dir3:.0} ms — diff {:.0} ms, speedup {:.2}x",
            hier3 - dir3,
            hier3 / dir3
        );
        println!("(paper: difference ≈545 ms, speedup ≈2.5x)");

        args.write_json("fig1", &rows);
    }
}
