//! Table 3: summary of Squid cache-hierarchy performance based on
//! Rousskov's measurements — component times and the paper's derived
//! totals (hierarchical / client-direct / via-L1), Min and Max.

use crate::suite::{job, take, Experiment, Job, JobOutput};
use crate::{banner, Args};
use bh_netmodel::{CostModel, Level, RousskovModel};
use serde::Serialize;

#[derive(Serialize)]
struct Table3Data {
    variant: String,
    rows: Vec<Table3Row>,
}

#[derive(Serialize)]
struct Table3Row {
    level: String,
    connect_ms: Option<f64>,
    disk_ms: Option<f64>,
    reply_ms: Option<f64>,
    total_hierarchical_ms: f64,
    total_direct_ms: f64,
    total_via_l1_ms: f64,
}

fn build(m: &RousskovModel) -> Table3Data {
    let mut rows = Vec::new();
    for (level, label) in [
        (Level::L1, "Leaf"),
        (Level::L2, "Intermediate"),
        (Level::L3, "Root"),
    ] {
        let c = m.levels[level.depth() - 1];
        rows.push(Table3Row {
            level: label.to_string(),
            connect_ms: Some(c.connect_ms),
            disk_ms: Some(c.disk_ms),
            reply_ms: Some(c.reply_ms),
            total_hierarchical_ms: m.total_hierarchical_ms(level),
            total_direct_ms: m.total_direct_ms(level),
            total_via_l1_ms: m.total_via_l1_ms(level),
        });
    }
    rows.push(Table3Row {
        level: "Miss".to_string(),
        connect_ms: None,
        disk_ms: Some(m.miss_ms),
        reply_ms: None,
        total_hierarchical_ms: m.total_hierarchical_miss_ms(),
        total_direct_ms: m.direct_miss_ms(),
        total_via_l1_ms: m.via_l1_miss_ms(),
    });
    Table3Data {
        variant: m.name().to_string(),
        rows,
    }
}

fn print(t: &Table3Data) {
    println!("\n--- {} ---", t.variant);
    println!(
        "{:<13} {:>9} {:>8} {:>8} {:>14} {:>12} {:>10}",
        "Level", "Connect", "Disk", "Reply", "Hierarchical", "Direct", "via L1"
    );
    for r in &t.rows {
        let opt = |v: Option<f64>| v.map(|x| format!("{x:.0}")).unwrap_or_else(|| "-".into());
        println!(
            "{:<13} {:>9} {:>8} {:>8} {:>14.0} {:>12.0} {:>10.0}",
            r.level,
            opt(r.connect_ms),
            opt(r.disk_ms),
            opt(r.reply_ms),
            r.total_hierarchical_ms,
            r.total_direct_ms,
            r.total_via_l1_ms
        );
    }
}

/// The Table 3 experiment.
pub struct Table3;

impl Experiment for Table3 {
    fn name(&self) -> &'static str {
        "table3"
    }

    fn default_scale(&self) -> f64 {
        1.0
    }

    fn plan(&self, _args: &Args) -> Vec<Job> {
        vec![job(|| {
            vec![build(&RousskovModel::min()), build(&RousskovModel::max())]
        })]
    }

    fn finish(&self, args: &Args, results: Vec<JobOutput>) {
        let [tables] = <[JobOutput; 1]>::try_from(results).unwrap_or_else(|_| unreachable!());
        let tables: Vec<Table3Data> = take(tables);
        banner(
            "Table 3",
            "Rousskov Squid measurements: components and derived totals (ms)",
            args,
        );
        for t in &tables {
            print(t);
        }
        println!("\n(paper totals — Min: 163/271/531/981 hierarchical, 163/180/320/550 direct,");
        println!(
            " 163/271/411/641 via-L1; Max: 352/2767/4667/7217, 352/2550/2850/3200, 352/2767/3067/3417)"
        );
        args.write_json("table3", &tables);
    }
}
