//! Library driver for chaos runs: replays a seeded workload segment by
//! segment under a [`FaultPlan`] against a live [`ChaosMesh`].
//!
//! Shared by the `loadgen --chaos` binary and the determinism
//! integration tests, which run the same plan twice and byte-compare
//! the artifacts. To make that possible the output is split in two:
//!
//! * `loadgen_chaos.json` — the **deterministic** artifact: the plan,
//!   the mesh shape, each segment's issued-request count (a pure
//!   function of the seeded trace), and the recovery verdict. Two runs
//!   of the same plan must produce byte-identical files; CI diffs them.
//! * `loadgen_chaos_metrics.json` — the **measured** artifact: hit
//!   splits, false-probe rates, latency percentiles, resynced hint
//!   counts, and each node's full obs-registry snapshot (the
//!   `stats-registry` lint pins the registry iteration here).
//! * `loadgen_chaos_events.log` — the plan's event schedule, byte-
//!   identical across runs by construction.
//! * `obs_dump.json` — the deterministic obs-registry dump: plan-derived
//!   values only, byte-identical across runs of the same seed.

use crate::report::{metric_values, write_obs_dump, MetricValue};
use crate::Args;
use bh_obs::{Determinism, Registry, Unit};
use bh_proto::chaos::{ChaosMesh, FaultKind, FaultPlan};
use bh_proto::liveness::PeerHealth;
use bh_proto::node::{NodeStats, ThreadingMode};
use bh_proto::replay::{replay_concurrent, ConcurrentReplayReport, ReplayConfig};
use bh_trace::{TraceGenerator, TraceRecord, WorkloadSpec};
use serde::Serialize;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Mesh and client shape for a chaos run.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Cache nodes in the full mesh.
    pub nodes: usize,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Epoll shards per node.
    pub shards: usize,
    /// Worker threads per node.
    pub workers: usize,
    /// First-reference probability of the synthetic workload.
    pub p_new: f64,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            nodes: 4,
            clients: 16,
            shards: 1,
            workers: 16,
            p_new: 0.35,
        }
    }
}

/// Hit-rate / false-probe / latency summary of one replay segment
/// (measured artifact).
#[derive(Debug, Serialize)]
pub struct ChaosSegment {
    /// Window index in the plan.
    pub window: usize,
    /// `pre` (healthy baseline), `hold` (fault active), or `post`
    /// (recovery) — the before/during/after triple per window.
    pub phase: String,
    /// Stable fault description ([`FaultKind::describe`]).
    pub fault: String,
    /// Requests issued in this segment.
    pub requests: u64,
    /// Client-visible errors.
    pub errors: u64,
    /// Served from the contacted node's cache.
    pub local_hits: u64,
    /// Served by a peer via direct transfer.
    pub peer_hits: u64,
    /// Served by the origin.
    pub origin_fetches: u64,
    /// Request hit ratio (local + peer).
    pub hit_ratio: f64,
    /// Mesh-wide false-positive probes during this segment.
    pub false_positives: u64,
    /// Mesh-wide transport-failed probes that degraded to the origin.
    pub degraded_to_origin: u64,
    /// (false positives + degradations) per issued request.
    pub false_probe_rate: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
}

/// End-of-run resilience counters for one node: the node's **entire**
/// obs-registry snapshot, iterated rather than hand-copied, so a newly
/// registered metric reaches the dump with zero plumbing (the
/// `stats-registry` lint pins the iteration).
#[derive(Debug, Serialize)]
pub struct ChaosNodeReport {
    /// The node's bound address.
    pub addr: String,
    /// Every registry metric (counters, pool gauges, expanded service
    /// histogram), sorted by name.
    pub metrics: Vec<MetricValue>,
}

/// One segment of the deterministic artifact: everything here is a pure
/// function of the plan and the seeded trace.
#[derive(Debug, Serialize)]
pub struct PlannedSegment {
    /// Window index in the plan.
    pub window: usize,
    /// `pre`, `hold`, or `post`.
    pub phase: String,
    /// Stable fault description.
    pub fault: String,
    /// Requests the segment issues: the cacheable records in its trace
    /// slice, fixed by the seed.
    pub requests: u64,
}

/// The deterministic `loadgen_chaos.json` artifact; two runs of the
/// same plan must serialize byte-identically.
#[derive(Debug, Serialize)]
pub struct ChaosResult {
    /// The executed plan.
    pub plan: FaultPlan,
    /// Mesh size.
    pub nodes: usize,
    /// Closed-loop client threads.
    pub client_threads: usize,
    /// Per-segment issued-request counts.
    pub segments: Vec<PlannedSegment>,
    /// True when every window's post segment met the recovery criteria.
    pub recovered: bool,
}

/// The measured `loadgen_chaos_metrics.json` artifact.
#[derive(Debug, Serialize)]
pub struct ChaosMetrics {
    /// Per-segment measured summaries.
    pub segments: Vec<ChaosSegment>,
    /// Hint records rebuilt by resync after each crash window, in
    /// window order.
    pub recovered_hints: Vec<usize>,
    /// Full per-node counter dump.
    pub node_reports: Vec<ChaosNodeReport>,
}

/// Replays `count` records starting at `cursor` against the mesh,
/// returning the measured outcome and the slice's cacheable-record
/// count (the deterministic issued-request number). While `crashed`
/// names a down node, its client groups are rerouted to a live
/// survivor — the clients reconnect, they don't stall.
pub(crate) fn replay_segment(
    mesh: &ChaosMesh,
    opts: &ChaosOptions,
    spec: &WorkloadSpec,
    records: &[TraceRecord],
    cursor: &mut usize,
    count: u64,
    crashed: Option<usize>,
) -> (ConcurrentReplayReport, u64) {
    let end = (*cursor + count as usize).min(records.len());
    let slice = &records[*cursor..end];
    *cursor = end;
    let planned = slice.iter().filter(|r| r.is_cacheable()).count() as u64;
    let mut addrs: Vec<SocketAddr> = mesh.addrs().to_vec();
    if let Some(dead) = crashed {
        let survivor = mesh
            .live_node(dead)
            .expect("mesh has at least one live node");
        addrs[dead] = mesh.addrs()[survivor];
    }
    let mut config = ReplayConfig::flat_out(addrs);
    config.clients_per_l1 = spec.clients_per_l1;
    config.dynamic_client_ids = spec.dynamic_client_ids;
    let out = replay_concurrent(&config, slice, opts.clients).expect("chaos replay segment");
    (out, planned)
}

/// Sums the `(false_positives, degraded_to_origin)` deltas across nodes
/// between two stats snapshots. A node that crashed mid-interval
/// contributes nothing; a node that restarted counts from zero.
pub(crate) fn probe_deltas(prev: &[Option<NodeStats>], cur: &[Option<NodeStats>]) -> (u64, u64) {
    let mut fp = 0u64;
    let mut degraded = 0u64;
    for (p, c) in prev.iter().zip(cur.iter()) {
        let Some(c) = c else { continue };
        let base = p
            .as_ref()
            .map(|p| (p.false_positives, p.degraded_to_origin));
        let (fp0, dg0) = base.unwrap_or((0, 0));
        fp += c.false_positives.saturating_sub(fp0);
        degraded += c.degraded_to_origin.saturating_sub(dg0);
    }
    (fp, degraded)
}

pub(crate) fn segment_from(
    window: usize,
    phase: &str,
    fault: &FaultKind,
    out: &ConcurrentReplayReport,
    probes: (u64, u64),
) -> ChaosSegment {
    let (false_positives, degraded_to_origin) = probes;
    let requests = out.report.requests;
    ChaosSegment {
        window,
        phase: phase.to_string(),
        fault: fault.describe(),
        requests,
        errors: out.report.errors,
        local_hits: out.report.local_hits,
        peer_hits: out.report.peer_hits,
        origin_fetches: out.report.origin_fetches,
        hit_ratio: out.report.hit_ratio(),
        false_positives,
        degraded_to_origin,
        false_probe_rate: if requests > 0 {
            (false_positives + degraded_to_origin) as f64 / requests as f64
        } else {
            0.0
        },
        p50_ms: out.latency.p50().unwrap_or(0.0) * 1e3,
        p95_ms: out.latency.p95().unwrap_or(0.0) * 1e3,
        p99_ms: out.latency.p99().unwrap_or(0.0) * 1e3,
    }
}

pub(crate) fn print_segment(seg: &ChaosSegment) {
    println!(
        "window {} {:>4}  [{}]  {:>5} req  hit {:>5.1}%  fp {:>3}  degraded {:>3}  \
         {:>3} err  p50 {:>6.2} ms  p99 {:>6.2} ms",
        seg.window,
        seg.phase,
        seg.fault,
        seg.requests,
        seg.hit_ratio * 100.0,
        seg.false_positives,
        seg.degraded_to_origin,
        seg.errors,
        seg.p50_ms,
        seg.p99_ms,
    );
}

/// Drives heartbeats until every survivor has confirmed `dead` dead (so
/// stale-hint GC and Plaxton repair have fired), bounded by a wall-clock
/// deadline. Returns whether confirmation was reached.
pub(crate) fn await_confirmed_death(mesh: &ChaosMesh, dead: usize) -> bool {
    let addr = mesh.addrs()[dead];
    // bh-lint: allow(no-wall-clock, reason = "deadline-bounded wait on a live mesh; failure detection is inherently wall-clock here")
    let deadline = Instant::now() + Duration::from_secs(10);
    // bh-lint: allow(no-wall-clock, reason = "loop bound against the same live-mesh deadline")
    while Instant::now() < deadline {
        mesh.heartbeat_all();
        let confirmed = (0..mesh.addrs().len())
            .filter(|&i| i != dead)
            .filter_map(|i| mesh.node(i))
            .all(|n| n.peer_health(addr) == PeerHealth::Dead);
        if confirmed {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    false
}

/// Runs the fault plan end to end, writing all three artifacts into
/// `args.out`; returns `false` if any window failed its recovery check.
///
/// # Panics
///
/// Panics on mesh spawn or artifact I/O failure (harness semantics:
/// loud failures).
pub fn run_chaos(args: &Args, opts: &ChaosOptions, plan: FaultPlan) -> bool {
    println!(
        "chaos: {} windows over {} nodes, {} requests total",
        plan.windows.len(),
        opts.nodes,
        plan.total_requests()
    );

    // The schedule is a pure function of the plan: write it out before
    // anything runs, so two runs of the same seed can be byte-diffed.
    let event_log = plan.event_log();
    std::fs::create_dir_all(&args.out).expect("create output dir");
    let log_path = args.out.join("loadgen_chaos_events.log");
    std::fs::write(&log_path, &event_log).expect("write chaos event log");
    print!("{event_log}");

    let spec = WorkloadSpec::small()
        .with_requests(plan.total_requests())
        .with_clients(opts.nodes as u32 * 256)
        .with_p_new(opts.p_new);
    let records: Vec<TraceRecord> = TraceGenerator::new(&spec, plan.seed).collect();

    // Fast failure-detector settings: crash windows must reach confirmed
    // death (suspicion + confirmation window) inside the run.
    let mut mesh = ChaosMesh::spawn(opts.nodes, |c| {
        c.with_mode(ThreadingMode::Sharded)
            .with_shards(opts.shards)
            .with_workers(opts.workers)
            .with_flush_max(Duration::from_millis(25))
            .with_heartbeat_interval(Duration::from_millis(40))
            .with_suspicion_threshold(2)
            .with_confirm_death_after(Duration::from_millis(150))
            .with_shutdown_deadline(Duration::from_secs(2))
    })
    .expect("spawn chaos mesh");

    let mut cursor = 0usize;
    let mut planned: Vec<PlannedSegment> = Vec::new();
    let mut segments: Vec<ChaosSegment> = Vec::new();
    let mut recovered_hints: Vec<usize> = Vec::new();
    let mut recovered = true;

    for (i, w) in plan.windows.iter().enumerate() {
        let mut snapshot = mesh.stats();

        let (out, issued) = replay_segment(&mesh, opts, &spec, &records, &mut cursor, w.pre, None);
        planned.push(PlannedSegment {
            window: i,
            phase: "pre".into(),
            fault: w.fault.describe(),
            requests: issued,
        });
        let cur = mesh.stats();
        let pre = segment_from(i, "pre", &w.fault, &out, probe_deltas(&snapshot, &cur));
        snapshot = cur;
        print_segment(&pre);

        mesh.inject(w.fault).expect("inject fault");
        let crashed = match w.fault {
            FaultKind::Crash { node } => Some(node),
            _ => None,
        };
        let (out, issued) =
            replay_segment(&mesh, opts, &spec, &records, &mut cursor, w.hold, crashed);
        planned.push(PlannedSegment {
            window: i,
            phase: "hold".into(),
            fault: w.fault.describe(),
            requests: issued,
        });
        if let Some(dead) = crashed {
            if !await_confirmed_death(&mesh, dead) {
                eprintln!("window {i}: survivors never confirmed node {dead} dead");
                recovered = false;
            }
        }
        let cur = mesh.stats();
        let hold = segment_from(i, "hold", &w.fault, &out, probe_deltas(&snapshot, &cur));
        snapshot = cur;
        print_segment(&hold);

        // Lift: crash windows restart the node on its old port and rebuild
        // its hint table by anti-entropy; the extra heartbeat/flush round
        // lets survivors mark the revival and re-advertise before the
        // recovery segment is measured.
        match w.fault {
            FaultKind::Crash { node } => {
                let rebuilt = mesh.restart(node).expect("restart crashed node");
                recovered_hints.push(rebuilt);
                println!("window {i}: node {node} restarted, {rebuilt} hint records resynced");
                mesh.heartbeat_all();
                mesh.flush_all();
            }
            other => mesh.lift(other).expect("lift fault"),
        }
        let (out, issued) = replay_segment(&mesh, opts, &spec, &records, &mut cursor, w.post, None);
        planned.push(PlannedSegment {
            window: i,
            phase: "post".into(),
            fault: w.fault.describe(),
            requests: issued,
        });
        let cur = mesh.stats();
        let post = segment_from(i, "post", &w.fault, &out, probe_deltas(&snapshot, &cur));
        print_segment(&post);

        // Recovery criteria: the mesh must serve everything again (no
        // client-visible errors) without a hit-rate collapse relative to
        // the pre-window baseline.
        if post.errors > 0 {
            eprintln!(
                "window {i}: {} errors after the fault was lifted",
                post.errors
            );
            recovered = false;
        }
        if post.hit_ratio + 0.25 < pre.hit_ratio {
            eprintln!(
                "window {i}: hit ratio collapsed {:.3} -> {:.3} after recovery",
                pre.hit_ratio, post.hit_ratio
            );
            recovered = false;
        }
        segments.push(pre);
        segments.push(hold);
        segments.push(post);
    }

    // Iterate each node's full registry snapshot into the dump — no
    // field-by-field plumbing, so new metrics can't silently fall out.
    let node_reports: Vec<ChaosNodeReport> = mesh
        .addrs()
        .iter()
        .zip(mesh.metric_snapshots())
        .map(|(addr, snapshot)| ChaosNodeReport {
            addr: addr.to_string(),
            metrics: metric_values(&snapshot.unwrap_or_default()),
        })
        .collect();

    // Deterministic obs dump: plan-derived values only, so two runs of
    // the same seeded plan write byte-identical files (CI diffs them
    // alongside loadgen_chaos.json).
    let obs = Registry::new();
    let windows_m = obs.counter(
        "chaos.windows",
        Unit::Count,
        "fault windows executed",
        Determinism::Deterministic,
    );
    let segments_m = obs.counter(
        "chaos.segments",
        Unit::Count,
        "replay segments planned",
        Determinism::Deterministic,
    );
    let requests_m = obs.counter(
        "chaos.requests_planned",
        Unit::Count,
        "requests issued across all planned segments",
        Determinism::Deterministic,
    );
    windows_m.add(plan.windows.len() as u64);
    segments_m.add(planned.len() as u64);
    requests_m.add(planned.iter().map(|s| s.requests).sum());
    write_obs_dump(args, &obs);

    args.write_json(
        "loadgen_chaos",
        &ChaosResult {
            plan,
            nodes: opts.nodes,
            client_threads: opts.clients,
            segments: planned,
            recovered,
        },
    );
    args.write_json(
        "loadgen_chaos_metrics",
        &ChaosMetrics {
            segments,
            recovered_hints,
            node_reports,
        },
    );
    println!(
        "chaos event log: {} ({} bytes)",
        log_path.display(),
        event_log.len()
    );
    println!("recovered: {recovered}");
    mesh.shutdown();
    recovered
}
