//! Warm-restart recovery benchmark: durable-log replay vs anti-entropy
//! resync.
//!
//! Two identical meshes are warmed with the same seeded workload, then
//! the same node is crashed and restarted in each:
//!
//! * **log_replay** — nodes run with [`NodeConfig::durability_dir`]
//!   set, so the restarted node recovers its hint table by replaying
//!   the crash-safe log at spawn: zero network traffic.
//! * **resync** — the PR-4 baseline: no durable log, the restarted node
//!   rebuilds its hint table with a mesh-wide anti-entropy
//!   [`resync`](bh_proto::node::CacheNode::resync) pull.
//!
//! Output follows the chaos harness's deterministic/measured split:
//!
//! * `BENCH_recovery_plan.json` — pure function of the seed: mesh
//!   shape, planned request count, crash target, mode list. CI runs the
//!   benchmark twice and byte-compares this artifact.
//! * `BENCH_recovery.json` — the measured comparison: hints recovered,
//!   restart wall time, and replay time per mode, plus the restarted
//!   node's full metric dump (so `hints_recovered_from_log`,
//!   `hint_log_replay_micros`, and `hint_auth_failures` are grep-able).
//! * `obs_dump.json` — deterministic obs-registry dump of the
//!   plan-derived values.

use crate::chaos::{replay_segment, ChaosOptions};
use crate::report::{metric_values, write_obs_dump, MetricValue};
use crate::Args;
use bh_obs::{Determinism, Registry, Unit};
use bh_proto::chaos::ChaosMesh;
use bh_proto::node::{NodeConfig, ThreadingMode};
use bh_trace::{TraceGenerator, TraceRecord, WorkloadSpec};
use serde::Serialize;
use std::time::{Duration, Instant};

/// Mesh shape and crash target for a recovery run.
#[derive(Debug, Clone)]
pub struct RecoveryOptions {
    /// Cache nodes in the full mesh.
    pub nodes: usize,
    /// Warm-up requests replayed before the crash.
    pub requests: u64,
    /// Spawn index of the node to crash and restart.
    pub crash_node: usize,
    /// Closed-loop client threads for the warm-up replay.
    pub clients: usize,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            nodes: 3,
            requests: 1500,
            crash_node: 1,
            clients: 8,
        }
    }
}

/// The deterministic `BENCH_recovery_plan.json` artifact.
#[derive(Debug, Serialize)]
struct RecoveryPlan {
    seed: u64,
    nodes: usize,
    crash_node: usize,
    /// Cacheable records in the warm-up slice — fixed by the seed.
    requests_planned: u64,
    modes: [&'static str; 2],
}

/// One mode's measured outcome in `BENCH_recovery.json`.
#[derive(Debug, Serialize)]
struct ModeOutcome {
    mode: &'static str,
    /// Hint records the crashed node held when it went down.
    hints_before_crash: usize,
    /// Hint records recovered by the restart (log replay or resync).
    hints_recovered: usize,
    /// Wall time of the whole restart (respawn + recovery), micros.
    restart_micros: u64,
    /// Spawn-time log replay micros (0 in resync mode).
    replay_micros: u64,
    /// The restarted node's full metric dump.
    metrics: Vec<MetricValue>,
}

/// The measured `BENCH_recovery.json` artifact.
#[derive(Debug, Serialize)]
struct RecoveryResult {
    plan: RecoveryPlan,
    outcomes: Vec<ModeOutcome>,
    /// True when the durable-log mode recovered hints without resync
    /// and the baseline recovered via resync.
    recovered: bool,
}

fn fast_mesh_config(c: NodeConfig, opts: &RecoveryOptions) -> NodeConfig {
    let _ = opts;
    c.with_mode(ThreadingMode::Sharded)
        .with_shards(1)
        .with_workers(8)
        .with_flush_max(Duration::from_millis(25))
        .with_heartbeat_interval(Duration::from_millis(40))
        .with_suspicion_threshold(2)
        .with_confirm_death_after(Duration::from_millis(150))
        .with_shutdown_deadline(Duration::from_secs(2))
}

/// Runs the comparison and writes the three artifacts. Returns `true`
/// when the warm restart measurably recovered hints from the log while
/// the baseline had to resync.
pub fn run_recovery(args: &Args, opts: &RecoveryOptions) -> bool {
    let spec = WorkloadSpec::small()
        .with_requests(opts.requests)
        .with_clients(opts.nodes as u32 * 256)
        .with_p_new(0.35);
    let records: Vec<TraceRecord> = TraceGenerator::new(&spec, args.seed).collect();
    let requests_planned = records.iter().filter(|r| r.is_cacheable()).count() as u64;

    let plan = RecoveryPlan {
        seed: args.seed,
        nodes: opts.nodes,
        crash_node: opts.crash_node,
        requests_planned,
        modes: ["log_replay", "resync"],
    };
    std::fs::create_dir_all(&args.out).expect("create output dir");
    args.write_json("BENCH_recovery_plan", &plan);

    let replay_opts = ChaosOptions {
        nodes: opts.nodes,
        clients: opts.clients,
        shards: 1,
        workers: 8,
        p_new: 0.35,
    };

    let mut outcomes = Vec::with_capacity(2);
    for mode in plan.modes {
        let durable = mode == "log_replay";
        // Fresh per-node log directories under the output dir, wiped
        // before each run so a stale snapshot can't leak across runs.
        let log_root = args.out.join("recovery_hintlog");
        if durable {
            let _ = std::fs::remove_dir_all(&log_root);
        }
        let mut mesh = ChaosMesh::spawn_indexed(
            bh_proto::chaos::Topology::Flat { nodes: opts.nodes },
            |i, c| {
                let c = fast_mesh_config(c, opts);
                if durable {
                    c.with_durability_dir(log_root.join(format!("node{i}")))
                } else {
                    c
                }
            },
        )
        .expect("spawn recovery mesh");

        // Warm the mesh, then flush twice: once to propagate hint
        // batches, once more so receivers persist what they learned.
        let mut cursor = 0usize;
        let (_out, _issued) = replay_segment(
            &mesh,
            &replay_opts,
            &spec,
            &records,
            &mut cursor,
            opts.requests,
            None,
        );
        mesh.flush_all();
        mesh.flush_all();

        let victim = mesh.node(opts.crash_node).expect("victim node is live");
        let hints_before_crash = victim.hint_entries().len();
        mesh.crash(opts.crash_node);

        // bh-lint: allow(no-wall-clock, reason = "restart wall time on a live mesh is the measured quantity; only the plan artifact is byte-compared")
        let t0 = Instant::now();
        let hints_recovered = mesh.restart(opts.crash_node).expect("restart victim");
        let restart_micros = t0.elapsed().as_micros() as u64;

        let restarted = mesh.node(opts.crash_node).expect("restarted node");
        let stats = restarted.stats();
        let metrics = metric_values(&restarted.metrics_snapshot());
        outcomes.push(ModeOutcome {
            mode,
            hints_before_crash,
            hints_recovered,
            restart_micros,
            replay_micros: stats.hint_log_replay_micros,
            metrics,
        });
        println!(
            "recovery[{mode}]: {hints_before_crash} hints before crash, \
             {hints_recovered} recovered in {restart_micros} us \
             (log replay {} us, resyncs {})",
            stats.hint_log_replay_micros,
            stats.hints_recovered_from_log == 0,
        );
        mesh.shutdown();
    }

    let log_mode = &outcomes[0];
    let resync_mode = &outcomes[1];
    let recovered = log_mode.hints_recovered > 0
        && log_mode.replay_micros > 0
        && resync_mode.hints_recovered > 0
        && resync_mode.replay_micros == 0;

    let result = RecoveryResult {
        plan: RecoveryPlan {
            seed: args.seed,
            nodes: opts.nodes,
            crash_node: opts.crash_node,
            requests_planned,
            modes: ["log_replay", "resync"],
        },
        outcomes,
        recovered,
    };
    args.write_json("BENCH_recovery", &result);

    // Deterministic obs dump: plan-derived values only.
    let registry = Registry::new();
    registry
        .counter(
            "recovery.nodes",
            Unit::Count,
            "mesh size of the recovery benchmark",
            Determinism::Deterministic,
        )
        .add(opts.nodes as u64);
    registry
        .counter(
            "recovery.requests_planned",
            Unit::Count,
            "cacheable warm-up requests fixed by the seed",
            Determinism::Deterministic,
        )
        .add(requests_planned);
    registry
        .counter(
            "recovery.crash_node",
            Unit::Count,
            "spawn index of the crash/restart target",
            Determinism::Deterministic,
        )
        .add(opts.crash_node as u64);
    write_obs_dump(args, &registry);

    println!(
        "recovery: log_replay={} resync_baseline={} -> {}",
        result.outcomes[0].hints_recovered,
        result.outcomes[1].hints_recovered,
        if recovered { "OK" } else { "FAILED" }
    );
    recovered
}
