//! Shared harness for the experiment binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! `DESIGN.md` §3). They share a tiny CLI:
//!
//! ```text
//! --scale <f>    workload scale factor in (0,1]; default per binary
//! --seed <n>     PRNG seed (default 42)
//! --trace <t>    dec | berkeley | prodigy | all (default all or dec)
//! --out <dir>    JSON output directory (default target/experiments)
//! --jobs <n>     worker threads for the job sweep (default: CPU count)
//! ```
//!
//! Output goes to stdout in the paper's row/series format and, as JSON,
//! to `<out>/<experiment>.json`. Results are bit-identical for any
//! `--jobs` value: jobs are independent deterministic simulations and the
//! scheduler preserves submission order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod meshapi;
pub mod recovery;
pub mod report;
pub mod runners;
pub mod scenario;
pub mod suite;

use bh_trace::WorkloadSpec;
use std::path::PathBuf;

/// Parsed harness CLI arguments.
#[derive(Debug, Clone)]
pub struct Args {
    /// Workload scale factor.
    pub scale: f64,
    /// PRNG seed.
    pub seed: u64,
    /// Trace selector (`dec`/`berkeley`/`prodigy`/`all`).
    pub trace: String,
    /// Output directory for JSON artifacts.
    pub out: PathBuf,
    /// Worker threads for the job sweep.
    pub jobs: usize,
}

impl Args {
    /// Parses `std::env::args`, with `default_scale` as the scale default.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse(default_scale: f64) -> Args {
        Args::parse_from(std::env::args().skip(1), default_scale)
    }

    /// Parses an explicit argument list (flags only, no program name) —
    /// the `all` binary uses this to build each experiment's `Args` from
    /// one shared passthrough list while keeping per-binary scale
    /// defaults.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse_from(raw: impl IntoIterator<Item = String>, default_scale: f64) -> Args {
        let mut args = Args {
            scale: default_scale,
            seed: 42,
            trace: "all".to_string(),
            out: PathBuf::from("target/experiments"),
            jobs: bh_simcore::par::available_workers(),
        };
        let mut it = raw.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |what: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("{flag} requires a {what} argument"))
            };
            match flag.as_str() {
                "--scale" => {
                    args.scale = value("number").parse().expect("--scale takes a float");
                    assert!(
                        args.scale > 0.0 && args.scale <= 1.0,
                        "--scale must be in (0,1]"
                    );
                }
                "--seed" => args.seed = value("number").parse().expect("--seed takes an integer"),
                "--trace" => args.trace = value("name").to_lowercase(),
                "--out" => args.out = PathBuf::from(value("path")),
                "--jobs" => {
                    args.jobs = value("number").parse().expect("--jobs takes an integer");
                    assert!(args.jobs >= 1, "--jobs must be at least 1");
                }
                "--help" | "-h" => {
                    println!(
                        "usage: [--scale f] [--seed n] [--trace dec|berkeley|prodigy|all] [--out dir] [--jobs n]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        args
    }

    /// The workload specs selected by `--trace`, scaled by `--scale`.
    pub fn specs(&self) -> Vec<WorkloadSpec> {
        let all = [
            WorkloadSpec::dec(),
            WorkloadSpec::berkeley(),
            WorkloadSpec::prodigy(),
        ];
        all.into_iter()
            .filter(|s| self.trace == "all" || s.name.to_string().to_lowercase() == self.trace)
            .map(|s| s.scaled(self.scale))
            .collect()
    }

    /// Just the DEC spec (several figures are DEC-only in the paper).
    pub fn dec_spec(&self) -> WorkloadSpec {
        WorkloadSpec::dec().scaled(self.scale)
    }

    /// Writes `value` as pretty JSON to `<out>/<name>.json`, wrapped in
    /// the versioned [`report::Envelope`] (`schema_version` / `artifact`
    /// / `payload`); `value` itself becomes the payload, byte-compatible
    /// with the pre-envelope artifact bodies.
    ///
    /// # Panics
    ///
    /// Panics on I/O or serialization failure (harness binaries want loud
    /// failures).
    pub fn write_json<T: serde::Serialize>(&self, name: &str, value: &T) {
        std::fs::create_dir_all(&self.out).expect("create output directory");
        let path = self.out.join(format!("{name}.json"));
        let envelope = report::Envelope::of(name, value);
        let json = serde_json::to_string_pretty(&envelope).expect("serialize");
        std::fs::write(&path, json).expect("write JSON artifact");
        eprintln!("[wrote {}]", path.display());
    }
}

/// Maps `f` over `items` on up to `max_threads` OS threads (scoped, so `f`
/// may borrow), preserving order. A thin wrapper over the work-stealing
/// [`bh_simcore::par::sweep`].
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map<T, R, F>(items: Vec<T>, max_threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    bh_simcore::par::sweep(max_threads, items, |_, item| f(item))
}

/// Prints a banner naming the experiment and its provenance in the paper.
pub fn banner(experiment: &str, caption: &str, args: &Args) {
    println!("================================================================");
    println!("{experiment} — {caption}");
    println!(
        "workload scale {:.3} (full-scale axis labels), seed {}",
        args.scale, args.seed
    );
    println!("================================================================");
}

/// Formats a ratio as the paper prints speedups.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_args(scale: f64, trace: &str) -> Args {
        Args {
            scale,
            seed: 1,
            trace: trace.into(),
            out: PathBuf::from("/tmp/x"),
            jobs: 1,
        }
    }

    #[test]
    fn specs_filter_by_trace() {
        let mut args = test_args(0.01, "dec");
        assert_eq!(args.specs().len(), 1);
        assert_eq!(args.specs()[0].name.to_string(), "DEC");
        args.trace = "all".into();
        assert_eq!(args.specs().len(), 3);
        args.trace = "berkeley".into();
        assert_eq!(args.specs()[0].name.to_string(), "Berkeley");
    }

    #[test]
    fn specs_are_scaled() {
        let args = test_args(0.1, "dec");
        assert_eq!(args.specs()[0].requests, 2_210_000);
    }

    #[test]
    fn parse_from_reads_jobs_and_defaults() {
        let flags = ["--scale", "0.25", "--jobs", "3", "--seed", "9"];
        let args = Args::parse_from(flags.iter().map(|s| s.to_string()), 0.1);
        assert_eq!(args.scale, 0.25);
        assert_eq!(args.jobs, 3);
        assert_eq!(args.seed, 9);
        let args = Args::parse_from(std::iter::empty(), 0.1);
        assert_eq!(args.scale, 0.1);
        assert!(args.jobs >= 1);
    }

    #[test]
    fn fmt_speedup_two_decimals() {
        assert_eq!(fmt_speedup(1.274), "1.27x");
    }

    #[test]
    fn parallel_map_preserves_order_and_results() {
        let items: Vec<u64> = (0..100).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 4, 16] {
            let par = parallel_map(items.clone(), threads, |x| x * x);
            assert_eq!(par, seq, "threads={threads}");
        }
        assert_eq!(parallel_map(Vec::<u64>::new(), 4, |x| x), Vec::<u64>::new());
    }
}
