//! Table 5: hint-update load at the root.
//!
//! Thin wrapper: the experiment lives in `bh_bench::runners` so that
//! `all` can run it in-process on the shared job queue.

fn main() {
    bh_bench::suite::run_standalone(&bh_bench::runners::table5::Table5);
}
