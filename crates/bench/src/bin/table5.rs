//! Table 5: average number of location-hint updates sent to the root —
//! centralized directory (receives everything) vs the filtering metadata
//! hierarchy, DEC trace, 64 L1 proxies × 256 clients.

use bh_bench::{banner, Args};
use bh_core::experiments::{update_load, UpdateLoadResult};
use serde::Serialize;

#[derive(Serialize)]
struct Table5 {
    trace: String,
    scale: f64,
    result: UpdateLoadResult,
    filtering_factor: f64,
}

fn main() {
    let args = Args::parse(0.1);
    banner(
        "Table 5",
        "hint-update load at the root (updates/second)",
        &args,
    );
    let spec = args.dec_spec();
    let result = update_load(&spec, args.seed);
    let factor = result.centralized_rate / result.hierarchy_rate.max(1e-9);

    println!("\n{:<26} {:>16}", "Organization", "updates/second");
    println!(
        "{:<26} {:>16.2}",
        "Centralized directory", result.centralized_rate
    );
    println!("{:<26} {:>16.2}", "Hierarchy", result.hierarchy_rate);
    println!("\nfiltering reduces root load by {factor:.2}x");
    println!("(paper: 5.7 vs 1.9 updates/second — a 3.0x reduction; rates scale with");
    println!(" request rate, so compare the ratio at reduced scale, not the absolutes)");

    args.write_json(
        "table5",
        &Table5 {
            trace: spec.name.to_string(),
            scale: args.scale,
            result,
            filtering_factor: factor,
        },
    );
}
