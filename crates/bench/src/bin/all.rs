//! Runs the complete experiment suite (every table and figure) by invoking
//! the sibling experiment binaries in sequence with shared flags.
//!
//! ```text
//! cargo run --release -p bh-bench --bin all -- --scale 0.05
//! ```

use std::process::Command;

fn main() {
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");

    let experiments = [
        "fig1",
        "table3",
        "table4",
        "fig2",
        "fig3",
        "fig5",
        "fig6",
        "table5",
        "fig8",
        "fig10",
        "fig11",
        "ablations",
    ];
    let mut failures = Vec::new();
    for name in experiments {
        let bin = dir.join(name);
        eprintln!("\n>>> running {name}\n");
        let status = Command::new(&bin)
            .args(&passthrough)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", bin.display()));
        if !status.success() {
            failures.push(name);
        }
    }
    if failures.is_empty() {
        eprintln!("\nall experiments completed; JSON artifacts in target/experiments/");
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
