//! Runs the complete experiment suite (every table and figure).
//!
//! By default the suite runs **in-process**: every experiment's job plan
//! is flattened onto one shared work-stealing queue (`--jobs N` workers,
//! default: CPU count), materialized trace arenas are shared through the
//! process-wide cache, and the per-experiment output sections are printed
//! sequentially in the canonical order — so stdout and the JSON artifacts
//! are byte-identical for any `--jobs` value.
//!
//! ```text
//! cargo run --release -p bh-bench --bin all -- --scale 0.05 --jobs 4
//! ```
//!
//! `--subprocess` restores the historical behavior of spawning each
//! sibling experiment binary in sequence (one process per experiment, no
//! trace sharing). The suite's exit status is then the first failing
//! child's exit code.

use bh_bench::report::write_obs_dump;
use bh_bench::suite::{obs_registry, registry, run_subprocesses, run_suite};
use bh_bench::Args;
use std::time::Instant;

fn main() {
    let mut passthrough: Vec<String> = std::env::args().skip(1).collect();
    let subprocess = passthrough.iter().any(|a| a == "--subprocess");
    passthrough.retain(|a| a != "--subprocess");

    let experiments = registry();

    if subprocess {
        let exe = std::env::current_exe().expect("current exe");
        let dir = exe.parent().expect("bin dir");
        let programs: Vec<_> = experiments
            .iter()
            .map(|e| (e.name().to_string(), dir.join(e.name())))
            .collect();
        std::process::exit(run_subprocesses(&programs, &passthrough));
    }

    // Each experiment parses the same flag list but keeps its historical
    // per-binary scale default when --scale is absent.
    let per_args: Vec<Args> = experiments
        .iter()
        .map(|e| Args::parse_from(passthrough.iter().cloned(), e.default_scale()))
        .collect();
    let jobs = per_args[0].jobs;

    // bh-lint: allow(no-wall-clock, reason = "reports suite wall time to the operator; never feeds results")
    let start = Instant::now();
    let timings = run_suite(&experiments, &per_args, jobs);
    let wall = start.elapsed();

    eprintln!("\nall experiments completed; JSON artifacts in target/experiments/");
    eprintln!("\nSuite timing (--jobs {jobs}):");
    eprintln!(
        "{:<12} {:>6} {:>12} {:>12}",
        "experiment", "jobs", "job-time", "finish"
    );
    for t in &timings {
        eprintln!(
            "{:<12} {:>6} {:>11.2}s {:>11.2}s",
            t.name,
            t.jobs,
            t.job_time.as_secs_f64(),
            t.finish_time.as_secs_f64()
        );
    }
    let job_total: f64 = timings.iter().map(|t| t.job_time.as_secs_f64()).sum();
    eprintln!(
        "total: {:.2}s wall-clock ({:.2}s of job work across {} workers)",
        wall.as_secs_f64(),
        job_total,
        jobs
    );

    // Deterministic obs dump for the whole suite run (jobs-per-experiment
    // counters only; the measured timings stay in the table above).
    write_obs_dump(&per_args[0], &obs_registry(&timings));
}
