//! Operator CLI for the observability layer.
//!
//! ```text
//! obs scrape --addr <ip:port> [--trace]   # scrape one live cache node
//! obs validate <file.json>...             # check Report envelopes
//! ```
//!
//! `scrape` connects to a running cache node and dumps its full obs
//! registry (every counter, pool gauge, and service-latency histogram
//! bucket) via the `Stats` wire frame; `--trace` additionally drains the
//! node's event-trace ring via the `Trace` frame, printing one line per
//! span event with symbolic span names.
//!
//! `validate` parses each file and checks the versioned Report envelope
//! head (`schema_version`, `artifact`, `payload`) that every harness
//! artifact ships in. The process exits nonzero if any file fails — CI's
//! obs-smoke job runs it over everything `loadgen --obs` emitted.

use bh_bench::report::parse_envelope;
use bh_obs::span;
use bh_proto::client::Connection;
use std::net::SocketAddr;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: obs scrape --addr <ip:port> [--trace]");
    eprintln!("       obs validate <file.json>...");
    std::process::exit(2);
}

fn scrape(args: &[String]) -> ExitCode {
    let mut addr: Option<SocketAddr> = None;
    let mut trace = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => {
                let v = it.next().unwrap_or_else(|| usage());
                addr = Some(v.parse().expect("--addr takes ip:port"));
            }
            "--trace" => trace = true,
            _ => usage(),
        }
    }
    let Some(addr) = addr else { usage() };

    let mut conn = match Connection::open(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("obs: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match conn.scrape_stats() {
        Ok(entries) => {
            println!("# {addr} — {} metrics", entries.len());
            for e in &entries {
                println!("{:<40} {}", e.name, e.value);
            }
        }
        Err(e) => {
            eprintln!("obs: stats scrape failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if trace {
        match conn.scrape_trace() {
            Ok(events) => {
                println!("# trace ring — {} events (oldest first)", events.len());
                for ev in &events {
                    println!(
                        "{:>12} us  {:<12} a={:<20} b={}",
                        ev.ts_micros,
                        span::name(ev.kind),
                        ev.a,
                        ev.b
                    );
                }
            }
            Err(e) => {
                eprintln!("obs: trace scrape failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn validate(files: &[String]) -> ExitCode {
    if files.is_empty() {
        usage();
    }
    let mut failures = 0usize;
    for file in files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL {file}: {e}");
                failures += 1;
                continue;
            }
        };
        match parse_envelope(&text) {
            Ok(env) => println!(
                "ok   {file}: artifact `{}`, schema v{}",
                env.artifact, env.schema_version
            ),
            Err(e) => {
                eprintln!("FAIL {file}: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("obs: {failures} file(s) failed validation");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "scrape" => scrape(rest),
        Some((cmd, rest)) if cmd == "validate" => validate(rest),
        _ => usage(),
    }
}
