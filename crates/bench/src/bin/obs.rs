//! Operator CLI for the mesh API namespace.
//!
//! ```text
//! obs ls  <path> --addr <ip:port>           # enumerate a namespace branch
//! obs get <path> --addr <ip:port>           # read a leaf or dump a branch
//! obs set <path> <value> --addr <ip:port>   # control-plane write
//! obs scrape --addr <ip:port> [--trace]     # alias: get mesh/nodes/self/metrics
//! obs validate <file.json>...               # check Report envelopes
//! ```
//!
//! `ls`/`get`/`set` are thin verbs over the path-addressed mesh API
//! (`MetaRequest`/`MetaReply` frames): one virtual tree rooted at
//! `mesh/nodes/<id>` with `meta/<path>` for capability discovery — try
//! `obs ls meta --addr ...` to see every route a node serves. Output is
//! one `path  value` line per entry, exactly as the node answered
//! (sorted; `List` output is byte-identical across seeded runs).
//!
//! `scrape` is the compatibility spelling of the old stats scrape: it
//! reads `mesh/nodes/self/metrics` (and with `--trace` lists
//! `mesh/nodes/self/trace`) over the same namespace.
//!
//! `validate` parses each file and checks the versioned Report envelope
//! head (`schema_version`, `artifact`, `payload`) that every harness
//! artifact ships in. The process exits nonzero if any file fails — CI's
//! obs-smoke and meta-smoke jobs run it over everything the harness
//! emitted.

use bh_bench::report::parse_envelope;
use bh_proto::client::Connection;
use bh_proto::wire::MetaEntry;
use std::io::Write;
use std::net::SocketAddr;
use std::process::ExitCode;

/// Writes one stdout line, exiting quietly when the reader is gone —
/// `obs ls … | head` closes the pipe early and must not panic.
fn out(line: std::fmt::Arguments<'_>) {
    let mut stdout = std::io::stdout().lock();
    if writeln!(stdout, "{line}").is_err() {
        std::process::exit(0);
    }
}

fn usage() -> ! {
    eprintln!("usage: obs ls  <path> --addr <ip:port>");
    eprintln!("       obs get <path> --addr <ip:port>");
    eprintln!("       obs set <path> <value> --addr <ip:port>");
    eprintln!("       obs scrape --addr <ip:port> [--trace]");
    eprintln!("       obs validate <file.json>...");
    std::process::exit(2);
}

/// Splits `args` into positional operands and the `--addr` value.
fn parse_target(args: &[String], positionals: usize) -> (Vec<&str>, SocketAddr) {
    let mut addr: Option<SocketAddr> = None;
    let mut pos = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                let v = it.next().unwrap_or_else(|| usage());
                addr = Some(v.parse().expect("--addr takes ip:port"));
            }
            other if !other.starts_with("--") => pos.push(other),
            _ => usage(),
        }
    }
    if pos.len() != positionals {
        usage();
    }
    let Some(addr) = addr else { usage() };
    (pos, addr)
}

fn connect(addr: SocketAddr) -> Result<Connection, ExitCode> {
    Connection::open(addr).map_err(|e| {
        eprintln!("obs: cannot connect to {addr}: {e}");
        ExitCode::FAILURE
    })
}

fn print_entries(entries: &[MetaEntry]) {
    for e in entries {
        if e.value.is_empty() {
            out(format_args!("{}", e.path));
        } else {
            out(format_args!("{:<48} {}", e.path, e.value));
        }
    }
}

/// `ls` and `get`: one namespace read, one line per entry.
fn read_verb(list: bool, args: &[String]) -> ExitCode {
    let (pos, addr) = parse_target(args, 1);
    let mut conn = match connect(addr) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let result = if list {
        conn.meta_list(pos[0])
    } else {
        conn.meta_get(pos[0])
    };
    match result {
        Ok(entries) => {
            print_entries(&entries);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `set`: one control-plane write; prints the echoed entries.
fn set_verb(args: &[String]) -> ExitCode {
    let (pos, addr) = parse_target(args, 2);
    let mut conn = match connect(addr) {
        Ok(c) => c,
        Err(code) => return code,
    };
    match conn.meta_set(pos[0], pos[1]) {
        Ok(entries) => {
            print_entries(&entries);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `scrape`: compatibility alias over the namespace — a full metrics
/// read, plus the trace ring with `--trace`.
fn scrape(args: &[String]) -> ExitCode {
    let mut addr: Option<SocketAddr> = None;
    let mut trace = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => {
                let v = it.next().unwrap_or_else(|| usage());
                addr = Some(v.parse().expect("--addr takes ip:port"));
            }
            "--trace" => trace = true,
            _ => usage(),
        }
    }
    let Some(addr) = addr else { usage() };

    let mut conn = match connect(addr) {
        Ok(c) => c,
        Err(code) => return code,
    };
    match conn.meta_get("mesh/nodes/self/metrics") {
        Ok(entries) => {
            out(format_args!("# {addr} — {} metrics", entries.len()));
            for e in &entries {
                let name = e.path.rsplit('/').next().unwrap_or(&e.path);
                out(format_args!("{:<40} {}", name, e.value));
            }
        }
        Err(e) => {
            eprintln!("obs: stats scrape failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if trace {
        match conn.meta_list("mesh/nodes/self/trace") {
            Ok(events) => {
                out(format_args!(
                    "# trace ring — {} events (oldest first)",
                    events.len()
                ));
                for ev in &events {
                    out(format_args!("{}", ev.value));
                }
            }
            Err(e) => {
                eprintln!("obs: trace scrape failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn validate(files: &[String]) -> ExitCode {
    if files.is_empty() {
        usage();
    }
    let mut failures = 0usize;
    for file in files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL {file}: {e}");
                failures += 1;
                continue;
            }
        };
        match parse_envelope(&text) {
            Ok(env) => out(format_args!(
                "ok   {file}: artifact `{}`, schema v{}",
                env.artifact, env.schema_version
            )),
            Err(e) => {
                eprintln!("FAIL {file}: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("obs: {failures} file(s) failed validation");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "ls" => read_verb(true, rest),
        Some((cmd, rest)) if cmd == "get" => read_verb(false, rest),
        Some((cmd, rest)) if cmd == "set" => set_verb(rest),
        Some((cmd, rest)) if cmd == "scrape" => scrape(rest),
        Some((cmd, rest)) if cmd == "validate" => validate(rest),
        _ => usage(),
    }
}
