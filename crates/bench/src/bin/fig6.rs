//! Figure 6: global hit rate vs hint propagation delay (minutes), DEC
//! trace — performance is good as long as updates propagate within a few
//! minutes.

use bh_bench::{banner, Args};
use bh_core::experiments::{hint_delay_sweep, HintSweepPoint};
use serde::Serialize;

#[derive(Serialize)]
struct Fig6 {
    trace: String,
    scale: f64,
    points: Vec<HintSweepPoint>,
}

fn main() {
    let args = Args::parse(0.05);
    banner(
        "Figure 6",
        "hit rate vs hint propagation delay (minutes)",
        &args,
    );
    let spec = args.dec_spec();

    let delays = [0.0, 1.0, 5.0, 10.0, 60.0, 300.0, 1000.0];
    // Each point is an independent simulation: run them in parallel.
    let points: Vec<HintSweepPoint> = bh_bench::parallel_map(delays.to_vec(), 4, |mins| {
        hint_delay_sweep(&spec, args.seed, &[mins]).remove(0)
    });

    println!(
        "\n{:>10} {:>10} {:>13} {:>13}",
        "minutes", "hit-rate", "remote-hits", "false-pos"
    );
    for p in &points {
        println!(
            "{:>10.0} {:>10.3} {:>13.3} {:>13.4}",
            p.x, p.hit_ratio, p.remote_hit_fraction, p.false_positive_rate
        );
    }
    println!("\n(paper: hit rate holds up to a few minutes of delay, then degrades)");
    args.write_json(
        "fig6",
        &Fig6 {
            trace: spec.name.to_string(),
            scale: args.scale,
            points,
        },
    );
}
