//! Measures the engine's three stages — trace generation, materialized
//! replay, and `Simulator::run_trace` per strategy — in requests/second,
//! and writes `BENCH_sim.json` (default: repo root) so the perf trajectory
//! is tracked across PRs. The `sim_throughput` criterion bench measures
//! the same quantities interactively.
//!
//! ```text
//! cargo run --release -p bh-bench --bin bench_sim -- [--out BENCH_sim.json]
//! ```

use bh_bench::report::Envelope;
use bh_core::sim::{SimConfig, Simulator};
use bh_core::strategies::StrategyKind;
use bh_core::Topology;
use bh_netmodel::{CostModel, TestbedModel};
use bh_trace::{MaterializedTrace, TraceGenerator, WorkloadSpec};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// Lifetime event-queue stats from one instrumented simulation run —
/// the hint strategy's pending-update queue, profiled through the
/// `Strategy::queue_stats` hook.
#[derive(Serialize)]
struct QueueProfile {
    strategy: String,
    events_scheduled: u64,
    peak_depth: usize,
}

#[derive(Serialize)]
struct BenchSim {
    requests: u64,
    repeats: u32,
    trace_gen_rps: f64,
    replay_rps: f64,
    strategies_rps: Vec<(String, f64)>,
    queue_profile: Option<QueueProfile>,
}

/// Best-of-`repeats` requests/second for one measured closure.
fn best_rps(requests: u64, repeats: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        // bh-lint: allow(no-wall-clock, reason = "this binary measures real throughput; timing is the product")
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    requests as f64 / best
}

fn main() {
    let mut out = "BENCH_sim.json".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out = it.next().expect("--out requires a path"),
            other => panic!("unknown flag {other}; usage: bench_sim [--out path]"),
        }
    }

    let spec = WorkloadSpec::small().with_requests(20_000);
    let repeats = 5;
    let tb = TestbedModel::new();
    let arena = MaterializedTrace::generate(&spec, 9);

    let trace_gen_rps = best_rps(spec.requests, repeats, || {
        black_box(TraceGenerator::new(&spec, 9).last());
    });
    let replay_rps = best_rps(spec.requests, repeats, || {
        black_box(arena.iter().last());
    });

    let mut strategies_rps = Vec::new();
    for kind in [
        StrategyKind::DataHierarchy,
        StrategyKind::CentralDirectory,
        StrategyKind::HintHierarchy,
    ] {
        let rps = best_rps(spec.requests, repeats, || {
            let models: Vec<&dyn CostModel> = vec![&tb];
            let sim = Simulator::new(SimConfig::infinite(&spec));
            black_box(sim.run_trace(&arena, kind, &models));
        });
        strategies_rps.push((kind.to_string(), rps));
    }

    // Event-queue profile: one extra instrumented hint-hierarchy run.
    // A non-zero propagation delay forces the real (non-oracle) hint
    // store, whose pending-update [`bh_simcore::EventQueue`] reports its
    // lifetime scheduled total and peak depth.
    let queue_profile = {
        let sim = Simulator::new(
            SimConfig::infinite(&spec).with_hint_delay(bh_simcore::SimDuration::from_secs(30)),
        );
        let kind = StrategyKind::HintHierarchy;
        let topo = Topology::from_spec(arena.spec());
        let mut strategy = kind.build(
            topo,
            &sim.config().space,
            sim.config().hint_delay,
            arena.seed(),
        );
        let models: Vec<&dyn CostModel> = vec![&tb];
        black_box(sim.run_with_trace(&arena, strategy.as_mut(), &models, kind.idealized()));
        strategy.queue_stats().map(|qs| QueueProfile {
            strategy: kind.to_string(),
            events_scheduled: qs.scheduled,
            peak_depth: qs.peak_depth,
        })
    };

    let result = BenchSim {
        requests: spec.requests,
        repeats,
        trace_gen_rps,
        replay_rps,
        strategies_rps,
        queue_profile,
    };
    for (name, rps) in [
        ("trace_gen", result.trace_gen_rps),
        ("replay", result.replay_rps),
    ] {
        eprintln!("{name:<18} {rps:>12.0} req/s");
    }
    for (name, rps) in &result.strategies_rps {
        eprintln!("sim/{name:<14} {rps:>12.0} req/s");
    }
    if let Some(q) = &result.queue_profile {
        eprintln!(
            "queue/{:<14} {:>12} events scheduled, peak depth {}",
            q.strategy, q.events_scheduled, q.peak_depth
        );
    }
    let envelope = Envelope::of("bench_sim", &result);
    let json = serde_json::to_string_pretty(&envelope).expect("serialize");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("[wrote {out}]");
}
