//! Figure 8 + Table 6: simulated mean response time for the traditional
//! data hierarchy, the centralized directory, and the hint architecture,
//! under the Testbed / Min / Max access-time parameterizations, with
//! (a) infinite disk and (b) the space-constrained arrangement.

use bh_bench::{banner, fmt_speedup, Args};
use bh_core::experiments::{response_time_matrix, ResponseTimeResult};
use bh_netmodel::{CostModel, RousskovModel, TestbedModel};
use serde::Serialize;

#[derive(Serialize)]
struct Fig8 {
    results: Vec<ResponseTimeResult>,
    speedups: Vec<(String, bool, String, f64)>, // (trace, constrained, model, speedup)
}

fn main() {
    let args = Args::parse(0.1);
    banner(
        "Figure 8 / Table 6",
        "mean response time: Hierarchy vs Directory vs Hints",
        &args,
    );

    let tb = TestbedModel::new();
    let min = RousskovModel::min();
    let max = RousskovModel::max();
    let models: Vec<&dyn CostModel> = vec![&max, &min, &tb]; // the paper's bar order

    let mut out = Fig8 {
        results: Vec::new(),
        speedups: Vec::new(),
    };
    for constrained in [false, true] {
        println!(
            "\n=== ({}) {} ===",
            if constrained { "b" } else { "a" },
            if constrained {
                "space constrained"
            } else {
                "infinite disk"
            }
        );
        for spec in args.specs() {
            let r = response_time_matrix(&spec, args.seed, constrained, &models);
            println!("\n--- {} ---", spec.name);
            println!(
                "{:<12} {:>10} {:>10} {:>10}",
                "Strategy", "Max", "Min", "Testbed"
            );
            for strategy in ["Hierarchy", "Directory", "Hints"] {
                println!(
                    "{:<12} {:>10.0} {:>10.0} {:>10.0}",
                    strategy,
                    r.cell(strategy, "Max").unwrap_or(f64::NAN),
                    r.cell(strategy, "Min").unwrap_or(f64::NAN),
                    r.cell(strategy, "Testbed").unwrap_or(f64::NAN),
                );
            }
            print!("speedup (Hierarchy/Hints): ");
            for model in ["Max", "Min", "Testbed"] {
                let s = r.speedup(model).unwrap_or(f64::NAN);
                print!("{model}={} ", fmt_speedup(s));
                out.speedups
                    .push((spec.name.to_string(), constrained, model.to_string(), s));
            }
            println!();
            out.results.push(r);
        }
    }
    println!("\n(paper Table 6 — speedups: Prodigy 1.80/1.38/2.31, Berkeley 1.79/1.32/2.79,");
    println!(" DEC 1.62/1.28/1.99 for Max/Min/Testbed; hints always win)");
    args.write_json("fig8", &out);
}
