//! Figure 8 / Table 6: mean response time across architectures.
//!
//! Thin wrapper: the experiment lives in `bh_bench::runners` so that
//! `all` can run it in-process on the shared job queue.

fn main() {
    bh_bench::suite::run_standalone(&bh_bench::runners::fig8::Fig8);
}
