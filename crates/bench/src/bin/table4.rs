//! Table 4: characteristics of the trace workloads — regenerated from the
//! synthetic workload models (clients, accesses, distinct URLs, days).

use bh_bench::{banner, Args};
use bh_trace::{TraceGenerator, TraceSummary};
use serde::Serialize;

#[derive(Serialize)]
struct Table4Row {
    trace: String,
    summary: TraceSummary,
    paper_clients: u64,
    paper_accesses_m: f64,
    paper_distinct_m: f64,
}

fn main() {
    let args = Args::parse(0.1);
    banner(
        "Table 4",
        "characteristics of trace workloads (scaled)",
        &args,
    );

    let paper: &[(&str, u64, f64, f64)] = &[
        ("DEC", 16_660, 22.1, 4.15),
        ("Berkeley", 8_372, 8.8, 1.8),
        ("Prodigy", 35_354, 4.2, 1.2),
    ];

    println!(
        "\n{:<10} {:>9} {:>12} {:>14} {:>7}   (paper @ scale 1: clients / accesses / distinct)",
        "Trace", "Clients", "Accesses", "DistinctURLs", "Days"
    );
    let mut rows = Vec::new();
    for spec in args.specs() {
        let summary = TraceSummary::compute(TraceGenerator::new(&spec, args.seed));
        println!(
            "{}   ({} / {:.1}M / {:.2}M)",
            summary.table4_row(&spec.name.to_string()),
            paper
                .iter()
                .find(|(n, ..)| *n == spec.name.to_string())
                .map(|(_, c, ..)| *c)
                .unwrap_or(0),
            paper
                .iter()
                .find(|(n, ..)| *n == spec.name.to_string())
                .map(|(_, _, a, _)| *a)
                .unwrap_or(0.0),
            paper
                .iter()
                .find(|(n, ..)| *n == spec.name.to_string())
                .map(|(_, _, _, d)| *d)
                .unwrap_or(0.0),
        );
        let (pc, pa, pd) = paper
            .iter()
            .find(|(n, ..)| *n == spec.name.to_string())
            .map(|(_, c, a, d)| (*c, *a, *d))
            .unwrap_or((0, 0.0, 0.0));
        rows.push(Table4Row {
            trace: spec.name.to_string(),
            summary,
            paper_clients: pc,
            paper_accesses_m: pa,
            paper_distinct_m: pd,
        });
    }
    println!("\nDistinct/total ratios should match the paper at any scale:");
    for r in &rows {
        println!(
            "  {:<10} distinct/total = {:.3} (paper: {:.3})",
            r.trace,
            r.summary.distinct_ratio,
            r.paper_distinct_m / r.paper_accesses_m
        );
    }
    args.write_json("table4", &rows);
}
