//! Table 4: workload summary statistics for the three traces.
//!
//! Thin wrapper: the experiment lives in `bh_bench::runners` so that
//! `all` can run it in-process on the shared job queue.

fn main() {
    bh_bench::suite::run_standalone(&bh_bench::runners::table4::Table4);
}
