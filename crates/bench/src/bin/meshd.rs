//! A long-lived smoke mesh for exercising the mesh API from outside the
//! process — CI's `meta-smoke` job drives it with the `obs` CLI.
//!
//! ```text
//! meshd [--nodes n] [--secs s] [--out dir]
//! ```
//!
//! Spawns an origin plus an `n`-node full mesh, pushes one object
//! through node 0 and propagates its hint over the control plane
//! (`Set control/flush` — meshd itself is a thin client of the
//! namespace), then writes two artifacts and serves until `--secs`
//! elapses:
//!
//! * `<out>/addrs.txt` — one `ip:port` per line, node 0 first, written
//!   only after the hint is observable at node 1 so scripts can start
//!   scraping the moment the file exists;
//! * `<out>/meshd.json` — an enveloped Report artifact describing the
//!   mesh (`obs validate` must accept it).

use bh_bench::meshapi::MeshClient;
use bh_bench::report::Envelope;
use bh_proto::node::{CacheNode, NodeConfig};
use bh_proto::origin::OriginServer;
use serde::Serialize;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

#[derive(Serialize)]
struct MeshdArtifact {
    nodes: usize,
    serve_secs: u64,
    origin: String,
    addrs: Vec<String>,
    seeded_url: String,
}

fn main() {
    let mut nodes = 4usize;
    let mut secs = 60u64;
    let mut out = PathBuf::from("target/meshd");
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{flag} requires a {what} argument"))
        };
        match flag.as_str() {
            "--nodes" => nodes = value("count").parse().expect("--nodes takes an integer"),
            "--secs" => secs = value("count").parse().expect("--secs takes an integer"),
            "--out" => out = PathBuf::from(value("path")),
            "--help" | "-h" => {
                println!("usage: meshd [--nodes n] [--secs s] [--out dir]");
                return;
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    assert!(nodes >= 2, "--nodes must be at least 2 (hints need a peer)");

    let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
    let mesh: Vec<CacheNode> = (0..nodes)
        .map(|_| {
            CacheNode::spawn(
                NodeConfig::new("127.0.0.1:0", origin.addr())
                    .with_flush_max(Duration::from_secs(3600)),
            )
            .expect("node")
        })
        .collect();
    let addrs: Vec<SocketAddr> = mesh.iter().map(CacheNode::addr).collect();
    for (i, node) in mesh.iter().enumerate() {
        node.set_neighbors(
            addrs
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, a)| *a)
                .collect(),
        );
    }

    // Seed one object through node 0 and flush its hint to the mesh via
    // the namespace, then wait until node 1 can serve the hint read.
    let url = "http://t.test/meshd-seed";
    bh_proto::fetch(addrs[0], url).expect("seed fetch");
    let client = MeshClient::new(addrs.clone());
    client
        .set(addrs[0], "mesh/nodes/self/control/flush", "1")
        .expect("schedule flush");
    let digest_path = format!("mesh/nodes/self/hints/{:016x}", bh_md5::url_key(url));
    let mut propagated = false;
    for _ in 0..5000 {
        if client.get(addrs[1], &digest_path).is_ok() {
            propagated = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(propagated, "seed hint never reached node 1");

    std::fs::create_dir_all(&out).expect("create output directory");
    let artifact = MeshdArtifact {
        nodes,
        serve_secs: secs,
        origin: origin.addr().to_string(),
        addrs: addrs.iter().map(|a| a.to_string()).collect(),
        seeded_url: url.to_string(),
    };
    let json = serde_json::to_string_pretty(&Envelope::of("meshd", &artifact)).expect("serialize");
    std::fs::write(out.join("meshd.json"), json).expect("write meshd.json");
    let lines: String = addrs.iter().map(|a| format!("{a}\n")).collect();
    std::fs::write(out.join("addrs.txt"), lines).expect("write addrs.txt");

    eprintln!(
        "meshd: serving {nodes} nodes for {secs}s (node 0 at {}); artifacts in {}",
        addrs[0],
        out.display()
    );
    std::thread::sleep(Duration::from_secs(secs));
    for node in mesh {
        node.shutdown();
    }
}
