//! Figure 3: overall per-read and per-byte hit rates within infinite L1
//! caches (256 clients), L2 caches (2048 clients), and the L3 cache (all
//! clients) — sharing raises the achievable hit rate.

use bh_bench::{banner, Args};
use bh_core::experiments::{sharing, SharingResult};

fn main() {
    let args = Args::parse(0.1);
    banner(
        "Figure 3",
        "hit rates vs sharing level (infinite caches)",
        &args,
    );

    let mut results: Vec<SharingResult> = Vec::new();
    println!(
        "\n{:<10} {:>8} {:>8} {:>8}   {:>9} {:>9} {:>9}",
        "Trace", "L1 hit", "L2 hit", "L3 hit", "L1 bytes", "L2 bytes", "L3 bytes"
    );
    for spec in args.specs() {
        let r = sharing(&spec, args.seed);
        println!(
            "{:<10} {:>8.3} {:>8.3} {:>8.3}   {:>9.3} {:>9.3} {:>9.3}",
            r.workload,
            r.hit_ratio[0],
            r.hit_ratio[1],
            r.hit_ratio[2],
            r.byte_hit_ratio[0],
            r.byte_hit_ratio[1],
            r.byte_hit_ratio[2]
        );
        results.push(r);
    }
    println!("\n(paper, DEC: 50% L1 → 62% L2 → 78% L3; hit rate grows with sharing)");
    args.write_json("fig3", &results);
}
