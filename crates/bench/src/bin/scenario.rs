//! Scenario experiment: hint-propagation lag vs the flash-crowd ramp.
//!
//! Thin wrapper: the experiment lives in `bh_bench::runners` so that
//! `all` can run it in-process on the shared job queue. (The *live*
//! scenario harness — chaos over a real mesh — is `loadgen --scenario`.)

fn main() {
    bh_bench::suite::run_standalone(&bh_bench::runners::scenario::ScenarioLag);
}
