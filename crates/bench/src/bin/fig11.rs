//! Figure 11: push efficiency and bandwidth.
//!
//! Thin wrapper: the experiment lives in `bh_bench::runners` so that
//! `all` can run it in-process on the shared job queue.

fn main() {
    bh_bench::suite::run_standalone(&bh_bench::runners::fig11::Fig11);
}
