//! Figure 11: (a) efficiency — the fraction of pushed bytes later used —
//! and (b) bandwidth consumed by pushed vs demand-fetched data, for the
//! push algorithms on the DEC trace.

use bh_bench::{banner, Args};
use bh_core::experiments::{push_comparison, PushComparisonRow};
use bh_netmodel::{CostModel, TestbedModel};
use serde::Serialize;

#[derive(Serialize)]
struct Fig11 {
    trace: String,
    scale: f64,
    rows: Vec<PushComparisonRow>,
}

fn main() {
    let args = Args::parse(0.05);
    banner(
        "Figure 11",
        "push efficiency and bandwidth (DEC, space-constrained)",
        &args,
    );
    let spec = args.dec_spec();

    let tb = TestbedModel::new();
    let models: Vec<&dyn CostModel> = vec![&tb];
    let rows = push_comparison(&spec, args.seed, &models);

    println!("\n(a) efficiency — fraction of pushed bytes later accessed");
    println!("{:<14} {:>12}", "Strategy", "efficiency");
    for r in rows.iter().filter(|r| r.push_bw_kbps > 0.0) {
        println!("{:<14} {:>12.3}", r.strategy, r.efficiency);
    }

    println!("\n(b) bandwidth (KB/s over the measured window)");
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "Strategy", "pushed", "demand", "total"
    );
    for r in &rows {
        println!(
            "{:<14} {:>10.1} {:>10.1} {:>10.1}",
            r.strategy,
            r.push_bw_kbps,
            r.demand_bw_kbps,
            r.push_bw_kbps + r.demand_bw_kbps
        );
    }

    println!("\n(paper: update push ≈1/3 of pushed bytes used; hierarchical push 4–13%");
    println!(" efficient and up to ~4x the demand bandwidth — latency bought with bandwidth)");
    args.write_json(
        "fig11",
        &Fig11 {
            trace: spec.name.to_string(),
            scale: args.scale,
            rows,
        },
    );
}
