//! Trace-replay load generator for the live hint-protocol prototype.
//!
//! Spawns an origin plus an N-node full-mesh cache cluster on loopback and
//! replays a synthetic `bh-trace` workload through it from M concurrent
//! closed-loop clients (`bh_proto::replay::replay_concurrent`). Reports
//! aggregate throughput, hit/probe/false-positive counts, and p50/p95/p99
//! request latency, and writes the same JSON-artifact format as the other
//! experiment binaries to `<out>/loadgen.json`.
//!
//! ```text
//! loadgen [--nodes n] [--clients m] [--requests r]
//!         [--mode sharded|legacy|both] [--chaos smoke|<plan.json>]
//!         [--seed n] [--out dir]
//! ```
//!
//! `--mode both` (the default) runs the legacy thread-per-connection engine
//! first and the sharded engine second on identical workloads, printing the
//! throughput ratio — the before/after for the sharded-engine change.
//!
//! `--chaos` switches to fault-injection mode: the workload is replayed
//! segment by segment under a [`FaultPlan`] (crash/restart, partition,
//! latency, drop), reporting hit rate, false-probe rate, and latency
//! percentiles before/during/after every fault window. The schedule is
//! derived purely from the plan, so the emitted event log
//! (`loadgen_chaos_events.log`) is byte-identical across runs of the same
//! seed; metrics land in `loadgen_chaos.json`. The process exits nonzero
//! if the mesh fails to recover after any window.

use bh_bench::Args;
use bh_proto::chaos::{ChaosMesh, FaultKind, FaultPlan};
use bh_proto::liveness::PeerHealth;
use bh_proto::node::{CacheNode, NodeConfig, NodeStats, ThreadingMode};
use bh_proto::origin::OriginServer;
use bh_proto::replay::{replay_concurrent, ConcurrentReplayReport, ReplayConfig};
use bh_trace::{TraceGenerator, TraceRecord, WorkloadSpec};
use serde::Serialize;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Parsed loadgen CLI (a superset of the shared harness flags).
struct LoadgenArgs {
    nodes: usize,
    clients: usize,
    requests: u64,
    mode: String,
    shards: usize,
    workers: usize,
    p_new: f64,
    seed: u64,
    chaos: Option<String>,
    out: PathBuf,
}

impl LoadgenArgs {
    fn parse() -> LoadgenArgs {
        let mut args = LoadgenArgs {
            nodes: 4,
            clients: 16,
            requests: 50_000,
            mode: "both".to_string(),
            shards: 1,
            workers: 16,
            p_new: 0.35,
            seed: 42,
            chaos: None,
            out: PathBuf::from("target/experiments"),
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |what: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("{flag} requires a {what} argument"))
            };
            match flag.as_str() {
                "--nodes" => {
                    args.nodes = value("count").parse().expect("--nodes takes an integer");
                    assert!(args.nodes >= 1, "--nodes must be at least 1");
                }
                "--clients" => {
                    args.clients = value("count").parse().expect("--clients takes an integer");
                    assert!(args.clients >= 1, "--clients must be at least 1");
                }
                "--requests" => {
                    args.requests = value("count").parse().expect("--requests takes an integer");
                }
                "--mode" => {
                    args.mode = value("name").to_lowercase();
                    assert!(
                        matches!(args.mode.as_str(), "sharded" | "legacy" | "both"),
                        "--mode must be sharded, legacy, or both"
                    );
                }
                "--shards" => {
                    args.shards = value("count").parse().expect("--shards takes an integer");
                }
                "--workers" => {
                    args.workers = value("count").parse().expect("--workers takes an integer");
                }
                "--p-new" => {
                    args.p_new = value("probability").parse().expect("--p-new takes a float");
                    assert!(
                        (0.0..=1.0).contains(&args.p_new),
                        "--p-new must be in [0,1]"
                    );
                }
                "--seed" => args.seed = value("number").parse().expect("--seed takes an integer"),
                "--chaos" => args.chaos = Some(value("plan")),
                "--out" => args.out = PathBuf::from(value("path")),
                "--help" | "-h" => {
                    println!(
                        "usage: loadgen [--nodes n] [--clients m] [--requests r] \
                         [--mode sharded|legacy|both] [--chaos smoke|<plan.json>] \
                         [--shards s] [--workers w] \
                         [--p-new f] [--seed n] [--out dir]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        args
    }

    /// The shared-harness view of these args, for `write_json`.
    fn harness(&self) -> Args {
        Args {
            scale: 1.0,
            seed: self.seed,
            trace: "custom".to_string(),
            out: self.out.clone(),
            jobs: 1,
        }
    }
}

/// One measured replay run, serialized into the JSON artifact.
#[derive(Debug, Serialize)]
struct LoadgenRun {
    mode: String,
    nodes: usize,
    client_threads: usize,
    requests: u64,
    errors: u64,
    local_hits: u64,
    peer_hits: u64,
    origin_fetches: u64,
    false_positives: u64,
    hit_ratio: f64,
    bytes: u64,
    wall_seconds: f64,
    requests_per_second: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// The full artifact: each run plus the sharded/legacy throughput ratio
/// when both engines were measured.
#[derive(Debug, Serialize)]
struct LoadgenResult {
    runs: Vec<LoadgenRun>,
    speedup_sharded_over_legacy: Option<f64>,
}

fn run_mode(
    mode: ThreadingMode,
    args: &LoadgenArgs,
    records: &[TraceRecord],
    spec: &WorkloadSpec,
) -> LoadgenRun {
    let origin = OriginServer::spawn("127.0.0.1:0").expect("spawn origin");

    let mut nodes = Vec::with_capacity(args.nodes);
    for _ in 0..args.nodes {
        let config = NodeConfig::new("127.0.0.1:0", origin.addr())
            .with_mode(mode)
            .with_shards(args.shards)
            .with_workers(args.workers)
            .with_flush_max(Duration::from_millis(25));
        nodes.push(CacheNode::spawn(config).expect("spawn cache node"));
    }
    let addrs: Vec<_> = nodes.iter().map(CacheNode::addr).collect();
    for node in &nodes {
        node.set_neighbors(
            addrs
                .iter()
                .copied()
                .filter(|a| *a != node.addr())
                .collect(),
        );
    }

    let mut config = ReplayConfig::flat_out(addrs);
    config.clients_per_l1 = spec.clients_per_l1;
    config.dynamic_client_ids = spec.dynamic_client_ids;
    let outcome = replay_concurrent(&config, records, args.clients).expect("concurrent replay");

    let false_positives: u64 = nodes.iter().map(|n| n.stats().false_positives).sum();
    let [p50, p95, p99] = [
        outcome.latency.p50().unwrap_or(0.0),
        outcome.latency.p95().unwrap_or(0.0),
        outcome.latency.p99().unwrap_or(0.0),
    ];
    let run = LoadgenRun {
        mode: format!("{mode:?}").to_lowercase(),
        nodes: args.nodes,
        client_threads: args.clients,
        requests: outcome.report.requests,
        errors: outcome.report.errors,
        local_hits: outcome.report.local_hits,
        peer_hits: outcome.report.peer_hits,
        origin_fetches: outcome.report.origin_fetches,
        false_positives,
        hit_ratio: outcome.report.hit_ratio(),
        bytes: outcome.report.bytes,
        wall_seconds: outcome.wall_seconds,
        requests_per_second: outcome.requests_per_second(),
        p50_ms: p50 * 1e3,
        p95_ms: p95 * 1e3,
        p99_ms: p99 * 1e3,
    };

    for node in nodes {
        node.shutdown();
    }
    origin.shutdown();
    run
}

fn print_run(run: &LoadgenRun) {
    println!(
        "{:>8}  {:>9.0} req/s  {:>7} req  {:>6} local  {:>6} peer  {:>6} origin  \
         {:>4} fp  {:>3} err  p50 {:>6.2} ms  p95 {:>6.2} ms  p99 {:>6.2} ms",
        run.mode,
        run.requests_per_second,
        run.requests,
        run.local_hits,
        run.peer_hits,
        run.origin_fetches,
        run.false_positives,
        run.errors,
        run.p50_ms,
        run.p95_ms,
        run.p99_ms,
    );
}

/// Hit-rate / false-probe / latency summary of one replay segment.
#[derive(Debug, Serialize)]
struct ChaosSegment {
    window: usize,
    /// `pre` (healthy baseline), `hold` (fault active), or `post`
    /// (recovery) — the before/during/after triple per window.
    phase: String,
    fault: String,
    requests: u64,
    errors: u64,
    local_hits: u64,
    peer_hits: u64,
    origin_fetches: u64,
    hit_ratio: f64,
    /// Mesh-wide false-positive probes during this segment.
    false_positives: u64,
    /// Mesh-wide transport-failed probes that degraded to the origin.
    degraded_to_origin: u64,
    false_probe_rate: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// End-of-run resilience counters for one node.
#[derive(Debug, Serialize)]
struct ChaosNodeReport {
    addr: String,
    heartbeats_ok: u64,
    heartbeats_failed: u64,
    peers_confirmed_dead: u64,
    stale_hints_gc: u64,
    plaxton_repair_entries: u64,
    degraded_to_origin: u64,
    resyncs_served: u64,
}

/// The `loadgen_chaos.json` artifact.
#[derive(Debug, Serialize)]
struct ChaosResult {
    plan: FaultPlan,
    nodes: usize,
    client_threads: usize,
    segments: Vec<ChaosSegment>,
    /// Hint records rebuilt by resync after each crash window, in window
    /// order.
    recovered_hints: Vec<usize>,
    node_reports: Vec<ChaosNodeReport>,
    /// True when every window's post segment met the recovery criteria.
    recovered: bool,
}

/// Replays `count` records starting at `cursor` against the mesh. While
/// `crashed` names a down node, its client groups are rerouted to a live
/// survivor — the clients reconnect, they don't stall.
fn replay_segment(
    mesh: &ChaosMesh,
    args: &LoadgenArgs,
    spec: &WorkloadSpec,
    records: &[TraceRecord],
    cursor: &mut usize,
    count: u64,
    crashed: Option<usize>,
) -> ConcurrentReplayReport {
    let end = (*cursor + count as usize).min(records.len());
    let slice = &records[*cursor..end];
    *cursor = end;
    let mut addrs: Vec<SocketAddr> = mesh.addrs().to_vec();
    if let Some(dead) = crashed {
        let survivor = mesh
            .live_node(dead)
            .expect("mesh has at least one live node");
        addrs[dead] = mesh.addrs()[survivor];
    }
    let mut config = ReplayConfig::flat_out(addrs);
    config.clients_per_l1 = spec.clients_per_l1;
    config.dynamic_client_ids = spec.dynamic_client_ids;
    replay_concurrent(&config, slice, args.clients).expect("chaos replay segment")
}

/// Sums the `(false_positives, degraded_to_origin)` deltas across nodes
/// between two stats snapshots. A node that crashed mid-interval
/// contributes nothing; a node that restarted counts from zero.
fn probe_deltas(prev: &[Option<NodeStats>], cur: &[Option<NodeStats>]) -> (u64, u64) {
    let mut fp = 0u64;
    let mut degraded = 0u64;
    for (p, c) in prev.iter().zip(cur.iter()) {
        let Some(c) = c else { continue };
        let base = p
            .as_ref()
            .map(|p| (p.false_positives, p.degraded_to_origin));
        let (fp0, dg0) = base.unwrap_or((0, 0));
        fp += c.false_positives.saturating_sub(fp0);
        degraded += c.degraded_to_origin.saturating_sub(dg0);
    }
    (fp, degraded)
}

fn segment_from(
    window: usize,
    phase: &str,
    fault: &FaultKind,
    out: &ConcurrentReplayReport,
    probes: (u64, u64),
) -> ChaosSegment {
    let (false_positives, degraded_to_origin) = probes;
    let requests = out.report.requests;
    ChaosSegment {
        window,
        phase: phase.to_string(),
        fault: fault.describe(),
        requests,
        errors: out.report.errors,
        local_hits: out.report.local_hits,
        peer_hits: out.report.peer_hits,
        origin_fetches: out.report.origin_fetches,
        hit_ratio: out.report.hit_ratio(),
        false_positives,
        degraded_to_origin,
        false_probe_rate: if requests > 0 {
            (false_positives + degraded_to_origin) as f64 / requests as f64
        } else {
            0.0
        },
        p50_ms: out.latency.p50().unwrap_or(0.0) * 1e3,
        p95_ms: out.latency.p95().unwrap_or(0.0) * 1e3,
        p99_ms: out.latency.p99().unwrap_or(0.0) * 1e3,
    }
}

fn print_segment(seg: &ChaosSegment) {
    println!(
        "window {} {:>4}  [{}]  {:>5} req  hit {:>5.1}%  fp {:>3}  degraded {:>3}  \
         {:>3} err  p50 {:>6.2} ms  p99 {:>6.2} ms",
        seg.window,
        seg.phase,
        seg.fault,
        seg.requests,
        seg.hit_ratio * 100.0,
        seg.false_positives,
        seg.degraded_to_origin,
        seg.errors,
        seg.p50_ms,
        seg.p99_ms,
    );
}

/// Drives heartbeats until every survivor has confirmed `dead` dead (so
/// stale-hint GC and Plaxton repair have fired), bounded by a wall-clock
/// deadline. Returns whether confirmation was reached.
fn await_confirmed_death(mesh: &ChaosMesh, dead: usize) -> bool {
    let addr = mesh.addrs()[dead];
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        mesh.heartbeat_all();
        let confirmed = (0..mesh.addrs().len())
            .filter(|&i| i != dead)
            .filter_map(|i| mesh.node(i))
            .all(|n| n.peer_health(addr) == PeerHealth::Dead);
        if confirmed {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    false
}

/// Runs the fault plan end to end; returns `false` if any window failed
/// its recovery check.
fn run_chaos(args: &LoadgenArgs, plan: FaultPlan) -> bool {
    let harness = args.harness();
    println!(
        "chaos: {} windows over {} nodes, {} requests total",
        plan.windows.len(),
        args.nodes,
        plan.total_requests()
    );

    // The schedule is a pure function of the plan: write it out before
    // anything runs, so two runs of the same seed can be byte-diffed.
    let event_log = plan.event_log();
    std::fs::create_dir_all(&args.out).expect("create output dir");
    let log_path = args.out.join("loadgen_chaos_events.log");
    std::fs::write(&log_path, &event_log).expect("write chaos event log");
    print!("{event_log}");

    let spec = WorkloadSpec::small()
        .with_requests(plan.total_requests())
        .with_clients(args.nodes as u32 * 256)
        .with_p_new(args.p_new);
    let records: Vec<TraceRecord> = TraceGenerator::new(&spec, plan.seed).collect();

    // Fast failure-detector settings: crash windows must reach confirmed
    // death (suspicion + confirmation window) inside the run.
    let mut mesh = ChaosMesh::spawn(args.nodes, |c| {
        c.with_mode(ThreadingMode::Sharded)
            .with_shards(args.shards)
            .with_workers(args.workers)
            .with_flush_max(Duration::from_millis(25))
            .with_heartbeat_interval(Duration::from_millis(40))
            .with_suspicion_threshold(2)
            .with_confirm_death_after(Duration::from_millis(150))
            .with_shutdown_deadline(Duration::from_secs(2))
    })
    .expect("spawn chaos mesh");

    let mut cursor = 0usize;
    let mut segments: Vec<ChaosSegment> = Vec::new();
    let mut recovered_hints: Vec<usize> = Vec::new();
    let mut recovered = true;

    for (i, w) in plan.windows.iter().enumerate() {
        let mut snapshot = mesh.stats();

        let out = replay_segment(&mesh, args, &spec, &records, &mut cursor, w.pre, None);
        let cur = mesh.stats();
        let pre = segment_from(i, "pre", &w.fault, &out, probe_deltas(&snapshot, &cur));
        snapshot = cur;
        print_segment(&pre);

        mesh.inject(w.fault).expect("inject fault");
        let crashed = match w.fault {
            FaultKind::Crash { node } => Some(node),
            _ => None,
        };
        let out = replay_segment(&mesh, args, &spec, &records, &mut cursor, w.hold, crashed);
        if let Some(dead) = crashed {
            if !await_confirmed_death(&mesh, dead) {
                eprintln!("window {i}: survivors never confirmed node {dead} dead");
                recovered = false;
            }
        }
        let cur = mesh.stats();
        let hold = segment_from(i, "hold", &w.fault, &out, probe_deltas(&snapshot, &cur));
        snapshot = cur;
        print_segment(&hold);

        // Lift: crash windows restart the node on its old port and rebuild
        // its hint table by anti-entropy; the extra heartbeat/flush round
        // lets survivors mark the revival and re-advertise before the
        // recovery segment is measured.
        match w.fault {
            FaultKind::Crash { node } => {
                let rebuilt = mesh.restart(node).expect("restart crashed node");
                recovered_hints.push(rebuilt);
                println!("window {i}: node {node} restarted, {rebuilt} hint records resynced");
                mesh.heartbeat_all();
                mesh.flush_all();
            }
            other => mesh.lift(other).expect("lift fault"),
        }
        let out = replay_segment(&mesh, args, &spec, &records, &mut cursor, w.post, None);
        let cur = mesh.stats();
        let post = segment_from(i, "post", &w.fault, &out, probe_deltas(&snapshot, &cur));
        print_segment(&post);

        // Recovery criteria: the mesh must serve everything again (no
        // client-visible errors) without a hit-rate collapse relative to
        // the pre-window baseline.
        if post.errors > 0 {
            eprintln!(
                "window {i}: {} errors after the fault was lifted",
                post.errors
            );
            recovered = false;
        }
        if post.hit_ratio + 0.25 < pre.hit_ratio {
            eprintln!(
                "window {i}: hit ratio collapsed {:.3} -> {:.3} after recovery",
                pre.hit_ratio, post.hit_ratio
            );
            recovered = false;
        }
        segments.push(pre);
        segments.push(hold);
        segments.push(post);
    }

    let node_reports: Vec<ChaosNodeReport> = mesh
        .addrs()
        .iter()
        .zip(mesh.stats())
        .map(|(addr, stats)| {
            let s = stats.unwrap_or_default();
            ChaosNodeReport {
                addr: addr.to_string(),
                heartbeats_ok: s.heartbeats_ok,
                heartbeats_failed: s.heartbeats_failed,
                peers_confirmed_dead: s.peers_confirmed_dead,
                stale_hints_gc: s.stale_hints_gc,
                plaxton_repair_entries: s.plaxton_repair_entries,
                degraded_to_origin: s.degraded_to_origin,
                resyncs_served: s.resyncs_served,
            }
        })
        .collect();

    harness.write_json(
        "loadgen_chaos",
        &ChaosResult {
            plan,
            nodes: args.nodes,
            client_threads: args.clients,
            segments,
            recovered_hints,
            node_reports,
            recovered,
        },
    );
    println!(
        "chaos event log: {} ({} bytes)",
        log_path.display(),
        event_log.len()
    );
    println!("recovered: {recovered}");
    mesh.shutdown();
    recovered
}

fn main() {
    let args = LoadgenArgs::parse();
    let harness = args.harness();
    bh_bench::banner(
        "loadgen",
        "prototype under load: trace replay against a live loopback mesh",
        &harness,
    );

    if let Some(plan_arg) = args.chaos.clone() {
        let plan = if plan_arg == "smoke" {
            FaultPlan::smoke(args.seed)
        } else {
            let text = std::fs::read_to_string(&plan_arg)
                .unwrap_or_else(|e| panic!("cannot read fault plan {plan_arg}: {e}"));
            serde_json::from_str(&text)
                .unwrap_or_else(|e| panic!("cannot parse fault plan {plan_arg}: {e}"))
        };
        plan.validate(args.nodes)
            .unwrap_or_else(|e| panic!("invalid fault plan: {e}"));
        let ok = run_chaos(&args, plan);
        std::process::exit(if ok { 0 } else { 1 });
    }
    println!(
        "{} nodes (full mesh), {} client threads, {} trace records, seed {}",
        args.nodes, args.clients, args.requests, args.seed
    );

    // A compact, miss-heavy workload: enough first references to exercise the
    // origin path and enough sharing to drive peer probes and hint batches.
    // Uncachable/error records are skipped by the replayer, so oversample the
    // trace to land at least `--requests` issued requests.
    let spec = WorkloadSpec::small()
        .with_requests((args.requests as f64 / 0.9).ceil() as u64)
        .with_clients(args.nodes as u32 * 256)
        .with_p_new(args.p_new);
    let records: Vec<TraceRecord> = TraceGenerator::new(&spec, args.seed).collect();

    let modes: &[ThreadingMode] = match args.mode.as_str() {
        "sharded" => &[ThreadingMode::Sharded],
        "legacy" => &[ThreadingMode::Legacy],
        _ => &[ThreadingMode::Legacy, ThreadingMode::Sharded],
    };

    let mut runs = Vec::new();
    for &mode in modes {
        let run = run_mode(mode, &args, &records, &spec);
        print_run(&run);
        runs.push(run);
    }

    let speedup = (runs.len() == 2).then(|| {
        let legacy = runs[0].requests_per_second;
        let sharded = runs[1].requests_per_second;
        if legacy > 0.0 {
            sharded / legacy
        } else {
            0.0
        }
    });
    if let Some(s) = speedup {
        println!("sharded over legacy: {}", bh_bench::fmt_speedup(s));
    }

    harness.write_json(
        "loadgen",
        &LoadgenResult {
            runs,
            speedup_sharded_over_legacy: speedup,
        },
    );
}
