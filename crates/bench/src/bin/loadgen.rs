//! Trace-replay load generator for the live hint-protocol prototype.
//!
//! Spawns an origin plus an N-node full-mesh cache cluster on loopback and
//! replays a synthetic `bh-trace` workload through it from M concurrent
//! closed-loop clients (`bh_proto::replay::replay_concurrent`). Reports
//! aggregate throughput, hit/probe/false-positive counts, and p50/p95/p99
//! request latency, and writes the same JSON-artifact format as the other
//! experiment binaries to `<out>/loadgen.json`.
//!
//! ```text
//! loadgen [--nodes n] [--clients m] [--requests r]
//!         [--mode sharded|legacy|both] [--chaos smoke|<plan.json>]
//!         [--obs] [--seed n] [--out dir]
//! ```
//!
//! `--obs` scrapes every node's obs registry over the wire (the `Stats`
//! operator frame) after each replay, prints a per-node summary, and
//! writes the full snapshots to `<out>/loadgen_obs.json`.
//!
//! `--mode both` (the default) runs the legacy thread-per-connection engine
//! first and the sharded engine second on identical workloads, printing the
//! throughput ratio — the before/after for the sharded-engine change.
//!
//! `--chaos` switches to fault-injection mode, driven by the
//! [`bh_bench::chaos`] library: the workload is replayed segment by
//! segment under a [`FaultPlan`] (crash/restart, partition, one-way
//! partition, latency, drop), reporting hit rate, false-probe rate, and
//! latency percentiles before/during/after every fault window. The
//! deterministic schedule and request counts land in
//! `loadgen_chaos_events.log` + `loadgen_chaos.json` (byte-identical
//! across runs of the same seed); measured metrics land in
//! `loadgen_chaos_metrics.json`. The process exits nonzero if the mesh
//! fails to recover after any window.
//!
//! `--scenario` runs a named or file-loaded [`bh_bench::scenario`]
//! bundle — a scenario workload (flash crowd or diurnal churn), a mesh
//! topology (including the two-level hint hierarchy), and a fault plan
//! that may target hierarchy roles (`CrashParent`). Artifacts follow
//! the chaos naming with a `scenario_<name>` stem, and the process
//! exits nonzero unless every window recovered, every orphaned child
//! re-homed, and live Plaxton repair matched the analytic churn count.
//!
//! `--mesh-sweep n1,n2,...` runs the mesh-scaling experiment as a weak
//! scaling sweep: each point spawns a fresh sharded mesh of that many
//! nodes — control plane wired as a ring lattice with n-scaled flush
//! and heartbeat periods ([`mesh_control_plane`]) — and drives
//! `max(1, clients/nodes)` client threads *per node* through
//! `--requests` trace records *per node*, so the offered load grows
//! with the mesh. The regime is the paper's: a capacity-limited cache
//! tier (`--data-cap-mb` per node — one node cannot hold the working
//! set, aggregate capacity is what scales) in front of a distant origin
//! (`--origin-delay-ms` per fetch, the WAN round trip). Client errors
//! fail the process. Two artifacts land in
//! `<out>`: `BENCH_mesh_plan.json` (the deterministic sweep schedule —
//! byte-identical across runs of the same seed) and `BENCH_mesh.json`
//! (measured req/s, latency percentiles, and the per-node
//! admission/writev/wakeup counters).
//!
//! `--recovery` runs the warm-restart comparison
//! ([`bh_bench::recovery`]): the same seeded warm-up, crash, and
//! restart executed twice — once with the durable hint log
//! (`BENCH_recovery_plan.json` / `BENCH_recovery.json`) and once with
//! the resync baseline — and exits nonzero unless the log replay
//! recovered hints without a network resync.

use bh_bench::chaos::{run_chaos, ChaosOptions};
use bh_bench::meshapi::{metric_values_from_meta, pick, MeshClient};
use bh_bench::recovery::{run_recovery, RecoveryOptions};
use bh_bench::report::MetricValue;
use bh_bench::scenario::{run_scenario, Scenario};
use bh_bench::Args;
use bh_proto::chaos::FaultPlan;
use bh_proto::node::{CacheNode, NodeConfig, ThreadingMode};
use bh_proto::origin::OriginServer;
use bh_proto::replay::{replay_concurrent, ReplayConfig};
use bh_trace::{TraceGenerator, TraceRecord, WorkloadSpec};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Duration;

/// Parsed loadgen CLI (a superset of the shared harness flags).
struct LoadgenArgs {
    nodes: usize,
    clients: usize,
    requests: u64,
    mode: String,
    shards: usize,
    workers: usize,
    p_new: f64,
    seed: u64,
    chaos: Option<String>,
    scenario: Option<String>,
    mesh_sweep: Option<Vec<usize>>,
    recovery: bool,
    data_cap_mb: u64,
    origin_delay_ms: u64,
    obs: bool,
    out: PathBuf,
}

impl LoadgenArgs {
    fn parse() -> LoadgenArgs {
        let mut args = LoadgenArgs {
            nodes: 4,
            clients: 16,
            requests: 50_000,
            mode: "both".to_string(),
            shards: 1,
            workers: 16,
            p_new: 0.35,
            seed: 42,
            chaos: None,
            scenario: None,
            mesh_sweep: None,
            recovery: false,
            data_cap_mb: 8,
            origin_delay_ms: 2,
            obs: false,
            out: PathBuf::from("target/experiments"),
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |what: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("{flag} requires a {what} argument"))
            };
            match flag.as_str() {
                "--nodes" => {
                    args.nodes = value("count").parse().expect("--nodes takes an integer");
                    assert!(args.nodes >= 1, "--nodes must be at least 1");
                }
                "--clients" => {
                    args.clients = value("count").parse().expect("--clients takes an integer");
                    assert!(args.clients >= 1, "--clients must be at least 1");
                }
                "--requests" => {
                    args.requests = value("count").parse().expect("--requests takes an integer");
                }
                "--mode" => {
                    args.mode = value("name").to_lowercase();
                    assert!(
                        matches!(args.mode.as_str(), "sharded" | "legacy" | "both"),
                        "--mode must be sharded, legacy, or both"
                    );
                }
                "--shards" => {
                    args.shards = value("count").parse().expect("--shards takes an integer");
                }
                "--workers" => {
                    args.workers = value("count").parse().expect("--workers takes an integer");
                }
                "--p-new" => {
                    args.p_new = value("probability").parse().expect("--p-new takes a float");
                    assert!(
                        (0.0..=1.0).contains(&args.p_new),
                        "--p-new must be in [0,1]"
                    );
                }
                "--seed" => args.seed = value("number").parse().expect("--seed takes an integer"),
                "--chaos" => args.chaos = Some(value("plan")),
                "--scenario" => args.scenario = Some(value("scenario")),
                "--mesh-sweep" => {
                    let points: Vec<usize> = value("node-count list")
                        .split(',')
                        .map(|p| p.trim().parse().expect("--mesh-sweep takes node counts"))
                        .collect();
                    assert!(
                        !points.is_empty() && points.iter().all(|&n| n >= 1),
                        "--mesh-sweep needs at least one node count >= 1"
                    );
                    args.mesh_sweep = Some(points);
                }
                "--recovery" => args.recovery = true,
                "--data-cap-mb" => {
                    args.data_cap_mb = value("megabytes")
                        .parse()
                        .expect("--data-cap-mb takes an integer");
                    assert!(args.data_cap_mb >= 1, "--data-cap-mb must be at least 1");
                }
                "--origin-delay-ms" => {
                    args.origin_delay_ms = value("milliseconds")
                        .parse()
                        .expect("--origin-delay-ms takes an integer");
                }
                "--obs" => args.obs = true,
                "--out" => args.out = PathBuf::from(value("path")),
                "--help" | "-h" => {
                    println!(
                        "usage: loadgen [--nodes n] [--clients m] [--requests r] \
                         [--mode sharded|legacy|both] [--chaos smoke|<plan.json>] \
                         [--scenario flash-crowd|diurnal-churn|<scenario.json>] \
                         [--mesh-sweep n1,n2,...] [--recovery] [--data-cap-mb mb] \
                         [--origin-delay-ms ms] \
                         [--shards s] [--workers w] [--obs] \
                         [--p-new f] [--seed n] [--out dir]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        args
    }

    /// The shared-harness view of these args, for `write_json`.
    fn harness(&self) -> Args {
        Args {
            scale: 1.0,
            seed: self.seed,
            trace: "custom".to_string(),
            out: self.out.clone(),
            jobs: 1,
        }
    }

    /// The chaos-library view of these args.
    fn chaos_options(&self) -> ChaosOptions {
        ChaosOptions {
            nodes: self.nodes,
            clients: self.clients,
            shards: self.shards,
            workers: self.workers,
            p_new: self.p_new,
        }
    }
}

/// One measured replay run, serialized into the JSON artifact.
#[derive(Debug, Serialize)]
struct LoadgenRun {
    mode: String,
    nodes: usize,
    client_threads: usize,
    requests: u64,
    errors: u64,
    local_hits: u64,
    peer_hits: u64,
    origin_fetches: u64,
    false_positives: u64,
    hit_ratio: f64,
    bytes: u64,
    wall_seconds: f64,
    requests_per_second: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// The full artifact: each run plus the sharded/legacy throughput ratio
/// when both engines were measured.
#[derive(Debug, Serialize)]
struct LoadgenResult {
    runs: Vec<LoadgenRun>,
    speedup_sharded_over_legacy: Option<f64>,
}

/// One node's end-of-run registry snapshot, scraped over the wire via
/// the `Stats` frame (the `--obs` artifact).
#[derive(Debug, Serialize)]
struct ObsNode {
    mode: String,
    addr: String,
    metrics: Vec<MetricValue>,
}

/// Scrapes every node through the mesh API namespace
/// (`Get mesh/nodes/self/metrics` per node — the same operator path
/// `obs get`/`obs scrape` use) and prints a per-node summary.
fn scrape_nodes(mode: ThreadingMode, nodes: &[CacheNode]) -> Vec<ObsNode> {
    let mesh = MeshClient::new(nodes.iter().map(CacheNode::addr).collect());
    mesh.get_all("mesh/nodes/self/metrics")
        .expect("scrape node metrics")
        .into_iter()
        .map(|reply| {
            let metrics = metric_values_from_meta(&reply.entries);
            println!(
                "obs {:>21}  local {:>6}  peer {:>5}  origin {:>6}  fp {:>4}  \
                 served {:>7}  live-conns {:>3}",
                reply.addr,
                pick(&metrics, "local_hits"),
                pick(&metrics, "peer_hits"),
                pick(&metrics, "origin_fetches"),
                pick(&metrics, "false_positives"),
                pick(&metrics, "request_service_micros.count"),
                pick(&metrics, "pool_live_connections"),
            );
            ObsNode {
                mode: format!("{mode:?}").to_lowercase(),
                addr: reply.addr.to_string(),
                metrics,
            }
        })
        .collect()
}

/// One planned sweep point: everything here is derived from the CLI and
/// the seed, so the plan artifact is byte-identical across runs.
#[derive(Debug, Serialize)]
struct MeshPointPlan {
    nodes: usize,
    client_threads: usize,
    requests: u64,
    trace_records: usize,
    ring_neighbors: usize,
    flush_max_ms: u64,
    heartbeat_ms: u64,
    pool_idle_cap: usize,
}

/// Control-plane knobs for one sweep point, derived purely from the node
/// count so the plan artifact and the live nodes cannot disagree.
///
/// A full mesh is the non-scalable strawman: flushing hints to `n - 1`
/// neighbors every 100 ms and heartbeating all of them every second is
/// O(n²) round trips per interval — at 64 nodes that demands ~44k
/// connection round trips per second of the control plane alone, which
/// thrashes the fd table (§3.1.2 is precisely about not flooding hint
/// updates). The sweep instead wires a deterministic ring lattice (each
/// node flushes and heartbeats its `min(n - 1, 8)` ring successors;
/// hints reach the rest by gossip hops) and stretches the flush and
/// heartbeat periods linearly with the mesh so control traffic stays
/// O(n) per second. Request-path probes are unaffected: they follow
/// hints to any machine, neighbor or not.
fn mesh_control_plane(n: usize) -> MeshControlPlane {
    MeshControlPlane {
        ring_neighbors: n.saturating_sub(1).min(8),
        flush_max_ms: (25 * n as u64).max(100),
        heartbeat_ms: 1000 + 125 * n as u64,
        // All n nodes share one process and one fd rlimit (20k on the
        // bench box). At ~5 fds per pooled connection (client stream +
        // reader clone, server stream + registry + reader clones),
        // 1024/n warm connections per node keeps even a 100-node point
        // near 5k fds instead of walking into EMFILE.
        pool_idle_cap: (1024 / n).clamp(4, 256),
    }
}

struct MeshControlPlane {
    ring_neighbors: usize,
    flush_max_ms: u64,
    heartbeat_ms: u64,
    pool_idle_cap: usize,
}

/// The deterministic half of the sweep (`BENCH_mesh_plan.json`).
#[derive(Debug, Serialize)]
struct MeshSweepPlan {
    seed: u64,
    p_new: f64,
    data_cap_mb: u64,
    origin_delay_ms: u64,
    clients_per_node: usize,
    points: Vec<MeshPointPlan>,
}

/// One measured sweep point (`BENCH_mesh.json`): replay outcome plus the
/// data-path counters scraped from every node's obs registry.
#[derive(Debug, Serialize)]
struct MeshPoint {
    nodes: usize,
    client_threads: usize,
    requests: u64,
    errors: u64,
    redirects: u64,
    local_hits: u64,
    peer_hits: u64,
    origin_fetches: u64,
    hit_ratio: f64,
    requests_per_second: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    admission_rejects: u64,
    queue_saturation_events: u64,
    hint_batch_overflow: u64,
    wakeups_coalesced: u64,
    writev_batches: u64,
}

/// The measured half of the sweep.
#[derive(Debug, Serialize)]
struct MeshSweepResult {
    seed: u64,
    data_cap_mb: u64,
    origin_delay_ms: u64,
    clients_per_node: usize,
    points: Vec<MeshPoint>,
}

/// Spawns a fresh sharded `n`-node mesh (ring-lattice control plane,
/// see [`mesh_control_plane`]) in the capacity-limited regime and
/// replays `records` through it.
fn run_mesh_point(
    args: &LoadgenArgs,
    n: usize,
    clients: usize,
    records: &[TraceRecord],
) -> MeshPoint {
    let origin =
        OriginServer::spawn_with_delay("127.0.0.1:0", Duration::from_millis(args.origin_delay_ms))
            .expect("spawn origin");
    let cp = mesh_control_plane(n);
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        let config = NodeConfig::new("127.0.0.1:0", origin.addr())
            .with_mode(ThreadingMode::Sharded)
            .with_shards(args.shards)
            .with_workers(args.workers)
            .with_data_capacity(bh_simcore::ByteSize::from_mb(args.data_cap_mb))
            .with_flush_max(Duration::from_millis(cp.flush_max_ms))
            .with_heartbeat_interval(Duration::from_millis(cp.heartbeat_ms))
            .with_pool_idle_cap(cp.pool_idle_cap);
        nodes.push(CacheNode::spawn(config).expect("spawn cache node"));
    }
    let addrs: Vec<_> = nodes.iter().map(CacheNode::addr).collect();
    for (i, node) in nodes.iter().enumerate() {
        // Ring lattice: node i flushes hints to (and heartbeats) its
        // ring_neighbors successors; see mesh_control_plane.
        node.set_neighbors(
            (1..=cp.ring_neighbors)
                .map(|d| addrs[(i + d) % n])
                .collect(),
        );
    }

    let config = ReplayConfig::flat_out(addrs).with_origin(origin.addr());
    let outcome = replay_concurrent(&config, records, clients).expect("concurrent replay");

    let stats: Vec<_> = nodes.iter().map(|node| node.stats()).collect();
    let sum = |f: fn(&bh_proto::node::NodeStats) -> u64| stats.iter().map(f).sum::<u64>();
    let point = MeshPoint {
        nodes: n,
        client_threads: clients,
        requests: outcome.report.requests,
        errors: outcome.report.errors,
        redirects: outcome.report.redirects,
        local_hits: outcome.report.local_hits,
        peer_hits: outcome.report.peer_hits,
        origin_fetches: outcome.report.origin_fetches,
        hit_ratio: outcome.report.hit_ratio(),
        requests_per_second: outcome.requests_per_second(),
        p50_ms: outcome.latency.p50().unwrap_or(0.0) * 1e3,
        p95_ms: outcome.latency.p95().unwrap_or(0.0) * 1e3,
        p99_ms: outcome.latency.p99().unwrap_or(0.0) * 1e3,
        admission_rejects: sum(|s| s.admission_rejects),
        queue_saturation_events: sum(|s| s.queue_saturation_events),
        hint_batch_overflow: sum(|s| s.hint_batch_overflow),
        wakeups_coalesced: sum(|s| s.wakeups_coalesced),
        writev_batches: sum(|s| s.writev_batches),
    };
    for node in nodes {
        node.shutdown();
    }
    origin.shutdown();
    point
}

/// Drives the full sweep and writes both artifact halves. Returns false
/// if any point saw client errors.
fn run_mesh_sweep(harness: &Args, args: &LoadgenArgs, points: &[usize]) -> bool {
    let clients_per_node = (args.clients / args.nodes).max(1);
    println!(
        "mesh sweep over {points:?} nodes (weak scaling), {clients_per_node} clients/node, \
         {} requests/node, {} MB data capacity/node, {} ms origin delay, seed {}",
        args.requests, args.data_cap_mb, args.origin_delay_ms, args.seed
    );

    let mut plan = MeshSweepPlan {
        seed: args.seed,
        p_new: args.p_new,
        data_cap_mb: args.data_cap_mb,
        origin_delay_ms: args.origin_delay_ms,
        clients_per_node,
        points: Vec::with_capacity(points.len()),
    };
    let mut result = MeshSweepResult {
        seed: args.seed,
        data_cap_mb: args.data_cap_mb,
        origin_delay_ms: args.origin_delay_ms,
        clients_per_node,
        points: Vec::with_capacity(points.len()),
    };
    for &n in points {
        let clients = clients_per_node * n;
        let requests = args.requests * n as u64;
        let spec = WorkloadSpec::small()
            .with_requests((requests as f64 / 0.9).ceil() as u64)
            .with_clients(n as u32 * 256)
            .with_p_new(args.p_new);
        let records: Vec<TraceRecord> = TraceGenerator::new(&spec, args.seed).collect();
        let cp = mesh_control_plane(n);
        plan.points.push(MeshPointPlan {
            nodes: n,
            client_threads: clients,
            requests,
            trace_records: records.len(),
            ring_neighbors: cp.ring_neighbors,
            flush_max_ms: cp.flush_max_ms,
            heartbeat_ms: cp.heartbeat_ms,
            pool_idle_cap: cp.pool_idle_cap,
        });
        let point = run_mesh_point(args, n, clients, &records);
        println!(
            "{:>4} nodes  {:>9.0} req/s  hit {:>5.1}%  {:>6} local  {:>6} peer  \
             {:>6} origin  {:>4} redir  {:>3} err  p50 {:>6.2} ms  p99 {:>6.2} ms  \
             writev {:>6}  coalesced {:>6}",
            point.nodes,
            point.requests_per_second,
            point.hit_ratio * 100.0,
            point.local_hits,
            point.peer_hits,
            point.origin_fetches,
            point.redirects,
            point.errors,
            point.p50_ms,
            point.p99_ms,
            point.writev_batches,
            point.wakeups_coalesced,
        );
        result.points.push(point);
    }

    let clean = result.points.iter().all(|p| p.errors == 0);
    if !clean {
        eprintln!("mesh sweep saw client errors; failing the run");
    }
    harness.write_json("BENCH_mesh_plan", &plan);
    harness.write_json("BENCH_mesh", &result);
    clean
}

fn run_mode(
    mode: ThreadingMode,
    args: &LoadgenArgs,
    records: &[TraceRecord],
    spec: &WorkloadSpec,
) -> (LoadgenRun, Vec<ObsNode>) {
    let origin = OriginServer::spawn("127.0.0.1:0").expect("spawn origin");

    let mut nodes = Vec::with_capacity(args.nodes);
    for _ in 0..args.nodes {
        let config = NodeConfig::new("127.0.0.1:0", origin.addr())
            .with_mode(mode)
            .with_shards(args.shards)
            .with_workers(args.workers)
            .with_flush_max(Duration::from_millis(25));
        nodes.push(CacheNode::spawn(config).expect("spawn cache node"));
    }
    let addrs: Vec<_> = nodes.iter().map(CacheNode::addr).collect();
    for node in &nodes {
        node.set_neighbors(
            addrs
                .iter()
                .copied()
                .filter(|a| *a != node.addr())
                .collect(),
        );
    }

    let mut config = ReplayConfig::flat_out(addrs);
    config.clients_per_l1 = spec.clients_per_l1;
    config.dynamic_client_ids = spec.dynamic_client_ids;
    let outcome = replay_concurrent(&config, records, args.clients).expect("concurrent replay");

    let false_positives: u64 = nodes.iter().map(|n| n.stats().false_positives).sum();
    let [p50, p95, p99] = [
        outcome.latency.p50().unwrap_or(0.0),
        outcome.latency.p95().unwrap_or(0.0),
        outcome.latency.p99().unwrap_or(0.0),
    ];
    let run = LoadgenRun {
        mode: format!("{mode:?}").to_lowercase(),
        nodes: args.nodes,
        client_threads: args.clients,
        requests: outcome.report.requests,
        errors: outcome.report.errors,
        local_hits: outcome.report.local_hits,
        peer_hits: outcome.report.peer_hits,
        origin_fetches: outcome.report.origin_fetches,
        false_positives,
        hit_ratio: outcome.report.hit_ratio(),
        bytes: outcome.report.bytes,
        wall_seconds: outcome.wall_seconds,
        requests_per_second: outcome.requests_per_second(),
        p50_ms: p50 * 1e3,
        p95_ms: p95 * 1e3,
        p99_ms: p99 * 1e3,
    };

    let scrapes = if args.obs {
        scrape_nodes(mode, &nodes)
    } else {
        Vec::new()
    };

    for node in nodes {
        node.shutdown();
    }
    origin.shutdown();
    (run, scrapes)
}

fn print_run(run: &LoadgenRun) {
    println!(
        "{:>8}  {:>9.0} req/s  {:>7} req  {:>6} local  {:>6} peer  {:>6} origin  \
         {:>4} fp  {:>3} err  p50 {:>6.2} ms  p95 {:>6.2} ms  p99 {:>6.2} ms",
        run.mode,
        run.requests_per_second,
        run.requests,
        run.local_hits,
        run.peer_hits,
        run.origin_fetches,
        run.false_positives,
        run.errors,
        run.p50_ms,
        run.p95_ms,
        run.p99_ms,
    );
}

fn main() {
    let args = LoadgenArgs::parse();
    let harness = args.harness();
    bh_bench::banner(
        "loadgen",
        "prototype under load: trace replay against a live loopback mesh",
        &harness,
    );

    if let Some(scenario_arg) = args.scenario.clone() {
        assert!(
            args.chaos.is_none(),
            "--scenario and --chaos are mutually exclusive"
        );
        let scenario = match Scenario::named(&scenario_arg, args.seed) {
            Some(s) => s,
            None => Scenario::load(std::path::Path::new(&scenario_arg))
                .unwrap_or_else(|e| panic!("{e}")),
        };
        scenario
            .validate()
            .unwrap_or_else(|e| panic!("invalid scenario: {e}"));
        let ok = run_scenario(&harness, &scenario);
        std::process::exit(if ok { 0 } else { 1 });
    }
    if let Some(points) = args.mesh_sweep.clone() {
        assert!(
            args.chaos.is_none() && args.scenario.is_none(),
            "--mesh-sweep is mutually exclusive with --chaos and --scenario"
        );
        let ok = run_mesh_sweep(&harness, &args, &points);
        std::process::exit(if ok { 0 } else { 1 });
    }
    if args.recovery {
        assert!(
            args.chaos.is_none() && args.scenario.is_none(),
            "--recovery is mutually exclusive with --chaos and --scenario"
        );
        let opts = RecoveryOptions {
            nodes: args.nodes.max(2),
            requests: args.requests.min(5_000),
            crash_node: 1,
            clients: args.clients,
        };
        let ok = run_recovery(&harness, &opts);
        std::process::exit(if ok { 0 } else { 1 });
    }
    if let Some(plan_arg) = args.chaos.clone() {
        let plan = if plan_arg == "smoke" {
            FaultPlan::smoke(args.seed)
        } else {
            let text = std::fs::read_to_string(&plan_arg)
                .unwrap_or_else(|e| panic!("cannot read fault plan {plan_arg}: {e}"));
            serde_json::from_str(&text)
                .unwrap_or_else(|e| panic!("cannot parse fault plan {plan_arg}: {e}"))
        };
        plan.validate(args.nodes)
            .unwrap_or_else(|e| panic!("invalid fault plan: {e}"));
        let ok = run_chaos(&harness, &args.chaos_options(), plan);
        std::process::exit(if ok { 0 } else { 1 });
    }
    println!(
        "{} nodes (full mesh), {} client threads, {} trace records, seed {}",
        args.nodes, args.clients, args.requests, args.seed
    );

    // A compact, miss-heavy workload: enough first references to exercise the
    // origin path and enough sharing to drive peer probes and hint batches.
    // Uncachable/error records are skipped by the replayer, so oversample the
    // trace to land at least `--requests` issued requests.
    let spec = WorkloadSpec::small()
        .with_requests((args.requests as f64 / 0.9).ceil() as u64)
        .with_clients(args.nodes as u32 * 256)
        .with_p_new(args.p_new);
    let records: Vec<TraceRecord> = TraceGenerator::new(&spec, args.seed).collect();

    let modes: &[ThreadingMode] = match args.mode.as_str() {
        "sharded" => &[ThreadingMode::Sharded],
        "legacy" => &[ThreadingMode::Legacy],
        _ => &[ThreadingMode::Legacy, ThreadingMode::Sharded],
    };

    let mut runs = Vec::new();
    let mut scrapes = Vec::new();
    for &mode in modes {
        let (run, mode_scrapes) = run_mode(mode, &args, &records, &spec);
        print_run(&run);
        runs.push(run);
        scrapes.extend(mode_scrapes);
    }

    let speedup = (runs.len() == 2).then(|| {
        let legacy = runs[0].requests_per_second;
        let sharded = runs[1].requests_per_second;
        if legacy > 0.0 {
            sharded / legacy
        } else {
            0.0
        }
    });
    if let Some(s) = speedup {
        println!("sharded over legacy: {}", bh_bench::fmt_speedup(s));
    }

    harness.write_json(
        "loadgen",
        &LoadgenResult {
            runs,
            speedup_sharded_over_legacy: speedup,
        },
    );
    if args.obs {
        harness.write_json("loadgen_obs", &scrapes);
    }
}
