//! Figure 2: request and byte miss-class breakdown for a global shared
//! cache as cache size varies (compulsory / capacity / communication /
//! error / uncachable).
//!
//! The x-axis is labeled in *full-scale-equivalent* GB: at `--scale s` the
//! simulated cache is `s × label` so that eviction pressure matches the
//! full-size experiment.

use bh_bench::{banner, Args};
use bh_core::experiments::miss_breakdown;
use serde::Serialize;

#[derive(Serialize)]
struct Fig2 {
    trace: String,
    scale: f64,
    points: Vec<bh_core::experiments::MissBreakdownPoint>,
}

fn main() {
    let args = Args::parse(0.1);
    banner(
        "Figure 2",
        "miss-class breakdown vs global cache size",
        &args,
    );

    // Full-scale axis (GB), as in the paper's 0–35 GB sweep.
    let axis = [1.0, 2.0, 5.0, 10.0, 20.0, 35.0, f64::INFINITY];
    let mut results = Vec::new();
    for spec in args.specs() {
        let scaled: Vec<f64> = axis
            .iter()
            .map(|gb| if gb.is_finite() { gb * args.scale } else { *gb })
            .collect();
        // Each cache size is an independent pass over the trace.
        let mut points: Vec<bh_core::experiments::MissBreakdownPoint> =
            bh_bench::parallel_map(scaled, 4, |gb| {
                miss_breakdown(&spec, args.seed, &[gb], 0.1).remove(0)
            });
        // Relabel with the full-scale axis.
        for (p, label) in points.iter_mut().zip(axis.iter()) {
            p.cache_gb = *label;
        }
        println!("\n--- {} (per-read rates) ---", spec.name);
        println!(
            "{:>8} {:>8} {:>11} {:>9} {:>14} {:>7} {:>11} {:>11}",
            "GB",
            "hit",
            "compulsory",
            "capacity",
            "communication",
            "error",
            "uncachable",
            "total-miss"
        );
        for p in &points {
            let g = |name: &str| {
                p.read_rates
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap_or(0.0)
            };
            println!(
                "{:>8} {:>8.3} {:>11.3} {:>9.3} {:>14.3} {:>7.3} {:>11.3} {:>11.3}",
                if p.cache_gb.is_finite() {
                    format!("{:.0}", p.cache_gb)
                } else {
                    "inf".into()
                },
                g("hit"),
                g("compulsory"),
                g("capacity"),
                g("communication"),
                g("error"),
                g("uncachable"),
                p.total_miss_ratio
            );
        }
        results.push(Fig2 {
            trace: spec.name.to_string(),
            scale: args.scale,
            points,
        });
    }
    println!("\n(paper: compulsory dominates; capacity misses minor for multi-GB caches;");
    println!(" DEC ≈19% compulsory; Berkeley/Prodigy have more uncachable + communication)");
    args.write_json("fig2", &results);
}
