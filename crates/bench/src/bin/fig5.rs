//! Figure 5: global hit rate vs hint-cache size (16-byte records, 4-way
//! set-associative), DEC trace, 64 proxies × 256 clients.
//!
//! X-axis labels are full-scale-equivalent MB (the simulated store is
//! `scale ×` the label, matching the scaled object universe).

use bh_bench::{banner, Args};
use bh_core::experiments::{hint_size_sweep, HintSweepPoint};
use serde::Serialize;

#[derive(Serialize)]
struct Fig5 {
    trace: String,
    scale: f64,
    points: Vec<HintSweepPoint>,
}

fn main() {
    let args = Args::parse(0.05);
    banner("Figure 5", "hit rate vs hint-cache size (MB)", &args);
    let spec = args.dec_spec();

    let axis = [0.1, 1.0, 10.0, 50.0, 100.0, 500.0, f64::INFINITY];
    let scaled: Vec<f64> = axis
        .iter()
        .map(|mb| if mb.is_finite() { mb * args.scale } else { *mb })
        .collect();
    // Each point is an independent simulation: run them in parallel.
    let mut points: Vec<HintSweepPoint> = bh_bench::parallel_map(scaled, 4, |mb| {
        hint_size_sweep(&spec, args.seed, &[mb]).remove(0)
    });
    for (p, label) in points.iter_mut().zip(axis.iter()) {
        p.x = *label;
    }

    println!(
        "\n{:>10} {:>10} {:>13} {:>13}",
        "MB", "hit-rate", "remote-hits", "false-pos"
    );
    for p in &points {
        println!(
            "{:>10} {:>10.3} {:>13.3} {:>13.4}",
            if p.x.is_finite() {
                format!("{:.1}", p.x)
            } else {
                "inf".into()
            },
            p.hit_ratio,
            p.remote_hit_fraction,
            p.false_positive_rate
        );
    }
    println!("\n(paper: <10 MB adds little reach; ~100 MB tracks almost all data in the system)");
    args.write_json(
        "fig5",
        &Fig5 {
            trace: spec.name.to_string(),
            scale: args.scale,
            points,
        },
    );
}
