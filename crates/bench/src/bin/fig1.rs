//! Figure 1: analytic miss-latency model for a caching hierarchy.
//!
//! Thin wrapper: the experiment lives in `bh_bench::runners` so that
//! `all` can run it in-process on the shared job queue.

fn main() {
    bh_bench::suite::run_standalone(&bh_bench::runners::fig1::Fig1);
}
