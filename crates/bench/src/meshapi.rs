//! Mesh-wide fan-out client for the path-addressed mesh API.
//!
//! [`MeshClient`] holds the addresses of every node in a mesh and fans
//! one namespace operation out to all of them (or aims it at one),
//! opening a fresh [`Connection`] per call — the same operator path the
//! `obs` CLI uses, so harness code and a human at a terminal see exactly
//! the same tree. Fan-out is sequential in address order, keeping output
//! deterministic for seeded runs.
//!
//! The free helpers ([`leaf`], [`metric_values_from_meta`], [`pick`])
//! convert namespace entries (`path` → string `value`) back into the
//! numeric metric shapes the artifact writers expect.

use crate::report::MetricValue;
use bh_proto::client::Connection;
use bh_proto::wire::MetaEntry;
use std::io;
use std::net::SocketAddr;

/// One node's answer to a fanned-out namespace operation.
#[derive(Debug, Clone)]
pub struct NodeReply {
    /// The node that answered.
    pub addr: SocketAddr,
    /// Its entries, exactly as replied (sorted by the node).
    pub entries: Vec<MetaEntry>,
}

/// A thin mesh-wide client over the `MetaRequest`/`MetaReply` frames.
#[derive(Debug, Clone)]
pub struct MeshClient {
    addrs: Vec<SocketAddr>,
}

impl MeshClient {
    /// A client over every node in `addrs` (fan-out order = `addrs`
    /// order).
    pub fn new(addrs: Vec<SocketAddr>) -> MeshClient {
        MeshClient { addrs }
    }

    /// The mesh addresses this client fans out to.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// `Get path` against one node.
    ///
    /// # Errors
    ///
    /// Fails on connect/protocol errors or a non-`Ok` reply status.
    pub fn get(&self, addr: SocketAddr, path: &str) -> io::Result<Vec<MetaEntry>> {
        Connection::open(addr)?.meta_get(path)
    }

    /// `List path` against one node.
    ///
    /// # Errors
    ///
    /// Fails on connect/protocol errors or a non-`Ok` reply status.
    pub fn list(&self, addr: SocketAddr, path: &str) -> io::Result<Vec<MetaEntry>> {
        Connection::open(addr)?.meta_list(path)
    }

    /// Control-plane `Set path = value` against one node.
    ///
    /// # Errors
    ///
    /// Fails on connect/protocol errors or a non-`Ok` reply status.
    pub fn set(&self, addr: SocketAddr, path: &str, value: &str) -> io::Result<Vec<MetaEntry>> {
        Connection::open(addr)?.meta_set(path, value)
    }

    /// `Get path` fanned out to every node, in address order.
    ///
    /// # Errors
    ///
    /// Fails fast on the first node that errors.
    pub fn get_all(&self, path: &str) -> io::Result<Vec<NodeReply>> {
        self.fan_out(|conn| conn.meta_get(path))
    }

    /// `List path` fanned out to every node, in address order.
    ///
    /// # Errors
    ///
    /// Fails fast on the first node that errors.
    pub fn list_all(&self, path: &str) -> io::Result<Vec<NodeReply>> {
        self.fan_out(|conn| conn.meta_list(path))
    }

    /// `Set path = value` fanned out to every node, in address order.
    ///
    /// # Errors
    ///
    /// Fails fast on the first node that errors.
    pub fn set_all(&self, path: &str, value: &str) -> io::Result<Vec<NodeReply>> {
        self.fan_out(|conn| conn.meta_set(path, value))
    }

    fn fan_out(
        &self,
        mut op: impl FnMut(&mut Connection) -> io::Result<Vec<MetaEntry>>,
    ) -> io::Result<Vec<NodeReply>> {
        self.addrs
            .iter()
            .map(|&addr| {
                let mut conn = Connection::open(addr)?;
                Ok(NodeReply {
                    addr,
                    entries: op(&mut conn)?,
                })
            })
            .collect()
    }
}

/// The last path segment of a namespace entry — the metric/counter name
/// under `.../metrics/<name>` and `.../pool/stats/<name>`.
pub fn leaf(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

/// Converts a `Get .../metrics` scrape back into the numeric
/// [`MetricValue`] rows the artifact writers serialize: name = path
/// leaf, value = parsed decimal (entries with non-numeric values are
/// dropped — the metrics branch never emits any).
pub fn metric_values_from_meta(entries: &[MetaEntry]) -> Vec<MetricValue> {
    entries
        .iter()
        .filter_map(|e| {
            e.value.parse::<u64>().ok().map(|value| MetricValue {
                name: leaf(&e.path).to_string(),
                value,
            })
        })
        .collect()
}

/// Looks one named metric up in a converted scrape (0 when absent).
pub fn pick(metrics: &[MetricValue], name: &str) -> u64 {
    metrics
        .iter()
        .find(|m| m.name == name)
        .map_or(0, |m| m.value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(path: &str, value: &str) -> MetaEntry {
        MetaEntry {
            path: path.to_string(),
            value: value.to_string(),
        }
    }

    #[test]
    fn leaf_takes_last_segment() {
        assert_eq!(leaf("mesh/nodes/3/metrics/local_hits"), "local_hits");
        assert_eq!(
            leaf("mesh/nodes/3/metrics/request_service_micros.count"),
            "request_service_micros.count"
        );
        assert_eq!(leaf("bare"), "bare");
    }

    #[test]
    fn metric_conversion_parses_and_drops_non_numeric() {
        let entries = vec![
            entry("mesh/nodes/1/metrics/local_hits", "42"),
            entry("mesh/nodes/1/metrics/peer_hits", "not a number"),
        ];
        let metrics = metric_values_from_meta(&entries);
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].name, "local_hits");
        assert_eq!(pick(&metrics, "local_hits"), 42);
        assert_eq!(pick(&metrics, "missing"), 0);
    }
}
