//! MD5 throughput and the URL-key path used for every object identifier.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("md5");

    for size in [64usize, 1024, 65_536] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| black_box(bh_md5::md5(black_box(&data))));
        });
    }

    group.throughput(Throughput::Elements(1));
    group.bench_function("url_key", |b| {
        b.iter(|| {
            black_box(bh_md5::url_key(black_box(
                "http://www.example.com/a/b/c.html",
            )))
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
