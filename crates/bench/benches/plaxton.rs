//! Plaxton metadata-hierarchy operations: root resolution and routing.

use bh_plaxton::{NodeSpec, PlaxtonTree};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn tree(n: usize, bits: u32) -> PlaxtonTree {
    let nodes: Vec<NodeSpec> = (0..n)
        .map(|i| {
            NodeSpec::from_address(
                &format!("10.2.{}.{}:3128", i / 16, i % 16),
                ((i % 8) as f64, (i / 8) as f64),
            )
        })
        .collect();
    PlaxtonTree::build(nodes, bits).expect("build")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("plaxton");

    for (n, bits) in [(64usize, 2u32), (256, 4)] {
        let t = tree(n, bits);
        let mut i = 0u64;
        group.bench_function(format!("root_of_n{n}_b{bits}"), |b| {
            b.iter(|| {
                i += 1;
                black_box(t.root_of(black_box(i.wrapping_mul(0x9E3779B97F4A7C15))))
            });
        });
        let mut j = 0u64;
        group.bench_function(format!("route_n{n}_b{bits}"), |b| {
            b.iter(|| {
                j += 1;
                black_box(t.route(0, black_box(j.wrapping_mul(0x9E3779B97F4A7C15))))
            });
        });
    }

    group.bench_function("build_64_nodes", |b| {
        b.iter(|| black_box(tree(64, 2)));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
