//! Wire-format encode/decode throughput: hint-update batches are the
//! protocol's steady-state traffic (20 bytes/record).

use bh_proto::wire::{HintAction, HintUpdate, MachineId, Message};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn batch(n: u64) -> Message {
    Message::UpdateBatch(
        (0..n)
            .map(|i| HintUpdate {
                action: if i % 2 == 0 {
                    HintAction::Add
                } else {
                    HintAction::Remove
                },
                object: i.wrapping_mul(0x9E3779B97F4A7C15),
                machine: MachineId(i),
            })
            .collect(),
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");

    for n in [16u64, 256, 4096] {
        let msg = batch(n);
        group.throughput(Throughput::Bytes(20 * n));
        group.bench_function(format!("encode_batch_{n}"), |b| {
            b.iter(|| black_box(msg.encoded()));
        });
        let encoded = msg.encoded();
        group.bench_function(format!("decode_batch_{n}"), |b| {
            b.iter(|| {
                let mut cursor = std::io::Cursor::new(encoded.as_ref());
                black_box(bh_proto::wire::read_message(&mut cursor).expect("decode"))
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
