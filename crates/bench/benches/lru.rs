//! Data-cache (LRU) operations at simulation-realistic sizes.

use bh_cache::LruCache;
use bh_simcore::ByteSize;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru");

    group.bench_function("get_hit", |b| {
        let mut cache = LruCache::unbounded();
        for k in 0..100_000u64 {
            cache.insert(k, ByteSize::from_kb(10), 0);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 100_000;
            black_box(cache.get(black_box(i), 0))
        });
    });

    group.bench_function("insert_with_eviction", |b| {
        let mut cache = LruCache::new(ByteSize::from_mb(10)); // ~1000 × 10KB
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.insert(black_box(i), ByteSize::from_kb(10), 0))
        });
    });

    group.bench_function("classified_access", |b| {
        let mut cache = bh_cache::ClassifyingCache::new(ByteSize::from_mb(10));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.access(black_box(i % 2000), ByteSize::from_kb(10), 0, true))
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
