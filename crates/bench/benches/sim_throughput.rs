//! Throughput of the three stages the parallel experiment engine is built
//! from: raw trace generation, materialized-arena replay, and the full
//! simulator per strategy. `bench_sim` (a sibling binary) measures the
//! same quantities without criterion and archives them in `BENCH_sim.json`
//! so the perf trajectory is tracked across PRs.

use bh_core::sim::{SimConfig, Simulator};
use bh_core::strategies::StrategyKind;
use bh_netmodel::{CostModel, TestbedModel};
use bh_trace::{MaterializedTrace, TraceGenerator, WorkloadSpec};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    let spec = WorkloadSpec::small().with_requests(20_000);
    let tb = TestbedModel::new();
    let arena = MaterializedTrace::generate(&spec, 9);

    group.throughput(Throughput::Elements(spec.requests));
    group.bench_function("trace_gen", |b| {
        b.iter(|| {
            let mut last = None;
            for r in TraceGenerator::new(&spec, 9) {
                last = Some(r);
            }
            black_box(last)
        });
    });

    group.throughput(Throughput::Elements(spec.requests));
    group.bench_function("replay", |b| {
        b.iter(|| {
            let mut last = None;
            for r in arena.iter() {
                last = Some(r);
            }
            black_box(last)
        });
    });

    for kind in [
        StrategyKind::DataHierarchy,
        StrategyKind::CentralDirectory,
        StrategyKind::HintHierarchy,
    ] {
        group.throughput(Throughput::Elements(spec.requests));
        group.bench_function(format!("sim/{kind}"), |b| {
            b.iter(|| {
                let models: Vec<&dyn CostModel> = vec![&tb];
                let sim = Simulator::new(SimConfig::infinite(&spec));
                black_box(sim.run_trace(&arena, kind, &models))
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
