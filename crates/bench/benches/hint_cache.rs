//! µ1: hint-store operations — the paper measured 4.3 µs per in-memory
//! hint lookup on a 200 MHz Ultra-2; modern hardware should be far faster.

use bh_cache::HintCache;
use bh_simcore::ByteSize;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("hint_cache");

    group.bench_function("lookup_hit_100MB", |b| {
        let mut store = HintCache::with_capacity(ByteSize::from_mb(100));
        for k in 1..=1_000_000u64 {
            store.insert(k.wrapping_mul(0x9E3779B97F4A7C15), k);
        }
        let mut i = 1u64;
        b.iter(|| {
            i = i.wrapping_add(1) % 1_000_000 + 1;
            black_box(store.lookup(black_box(i.wrapping_mul(0x9E3779B97F4A7C15))))
        });
    });

    group.bench_function("lookup_miss_100MB", |b| {
        let mut store = HintCache::with_capacity(ByteSize::from_mb(100));
        for k in 1..=1_000_000u64 {
            store.insert(k.wrapping_mul(0x9E3779B97F4A7C15), k);
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(store.lookup(black_box(i | 1)))
        });
    });

    group.bench_function("insert_bounded", |b| {
        let mut store = HintCache::with_capacity(ByteSize::from_mb(10));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            store.insert(black_box(i | 1), black_box(i));
        });
    });

    group.bench_function("insert_unbounded", |b| {
        b.iter_batched(
            HintCache::unbounded,
            |mut store| {
                for k in 1..=1_000u64 {
                    store.insert(black_box(k), k);
                }
                store
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
