//! End-to-end simulator throughput: requests/second through each strategy
//! (the quantity that bounds full-scale experiment runtime).

use bh_core::sim::{SimConfig, Simulator};
use bh_core::strategies::StrategyKind;
use bh_netmodel::{CostModel, TestbedModel};
use bh_trace::WorkloadSpec;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    let spec = WorkloadSpec::small().with_requests(20_000);
    let tb = TestbedModel::new();

    for kind in [
        StrategyKind::DataHierarchy,
        StrategyKind::CentralDirectory,
        StrategyKind::HintHierarchy,
    ] {
        group.throughput(Throughput::Elements(spec.requests));
        group.bench_function(format!("{kind}"), |b| {
            b.iter(|| {
                let models: Vec<&dyn CostModel> = vec![&tb];
                let sim = Simulator::new(SimConfig::infinite(&spec));
                black_box(sim.run(&spec, 9, kind, &models))
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
