//! Windowed time-series statistics.
//!
//! Rousskov's measurements — the source of Table 3 — report the median of
//! each metric over consecutive 20-minute windows, then take the min and
//! max of those medians across the day. [`WindowedSeries`] reproduces that
//! methodology for simulator output: feed timestamped samples, get
//! per-window medians (or means/counts) back, and summarize with
//! [`WindowedSeries::median_min_max`].

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Samples bucketed into fixed windows of simulated time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowedSeries {
    window: SimDuration,
    /// Per-window sample values (window index = time / window).
    buckets: Vec<Vec<f64>>,
}

impl WindowedSeries {
    /// Creates a series with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(window > SimDuration::ZERO, "window must be positive");
        WindowedSeries {
            window,
            buckets: Vec::new(),
        }
    }

    /// The conventional 20-minute window (Rousskov's choice).
    pub fn twenty_minutes() -> Self {
        Self::new(SimDuration::from_mins(20))
    }

    /// Records a sample at `at`.
    pub fn record(&mut self, at: SimTime, value: f64) {
        let idx = (at.as_micros() / self.window.as_micros()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize_with(idx + 1, Vec::new);
        }
        self.buckets[idx].push(value);
    }

    /// Number of windows spanned so far (including empty ones).
    pub fn windows(&self) -> usize {
        self.buckets.len()
    }

    /// The median of each non-empty window, in time order.
    pub fn window_medians(&self) -> Vec<f64> {
        self.buckets
            .iter()
            .filter(|b| !b.is_empty())
            .map(|b| {
                let mut v = b.clone();
                crate::stats::percentile(&mut v, 50.0).expect("non-empty window")
            })
            .collect()
    }

    /// The mean of each non-empty window, in time order.
    pub fn window_means(&self) -> Vec<f64> {
        self.buckets
            .iter()
            .filter(|b| !b.is_empty())
            .map(|b| b.iter().sum::<f64>() / b.len() as f64)
            .collect()
    }

    /// Per-window sample counts (including empty windows), useful as a
    /// rate series when each sample is one event.
    pub fn window_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.len() as u64).collect()
    }

    /// Events per second in each window.
    pub fn window_rates(&self) -> Vec<f64> {
        let secs = self.window.as_secs_f64();
        self.window_counts()
            .into_iter()
            .map(|c| c as f64 / secs)
            .collect()
    }

    /// Rousskov's summary: `(min, max)` of the per-window medians.
    /// `None` if every window is empty.
    pub fn median_min_max(&self) -> Option<(f64, f64)> {
        let medians = self.window_medians();
        if medians.is_empty() {
            return None;
        }
        let min = medians.iter().copied().fold(f64::INFINITY, f64::min);
        let max = medians.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some((min, max))
    }

    /// Restricts the Rousskov summary to windows overlapping
    /// `[from, until)` (the paper uses 8 AM–5 PM peak hours).
    pub fn median_min_max_between(&self, from: SimTime, until: SimTime) -> Option<(f64, f64)> {
        let first = (from.as_micros() / self.window.as_micros()) as usize;
        let last = (until.as_micros().saturating_sub(1) / self.window.as_micros()) as usize;
        let medians: Vec<f64> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(i, b)| *i >= first && *i <= last && !b.is_empty())
            .map(|(_, b)| {
                let mut v = b.clone();
                crate::stats::percentile(&mut v, 50.0).expect("non-empty window")
            })
            .collect();
        if medians.is_empty() {
            return None;
        }
        let min = medians.iter().copied().fold(f64::INFINITY, f64::min);
        let max = medians.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some((min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_window() {
        let mut s = WindowedSeries::new(SimDuration::from_secs(60));
        s.record(SimTime::from_secs(10), 1.0);
        s.record(SimTime::from_secs(59), 3.0);
        s.record(SimTime::from_secs(61), 10.0);
        assert_eq!(s.windows(), 2);
        assert_eq!(s.window_counts(), vec![2, 1]);
        // Nearest-rank median of an even window takes the upper element.
        assert_eq!(s.window_medians(), vec![3.0, 10.0]);
        assert_eq!(s.window_means(), vec![2.0, 10.0]);
    }

    #[test]
    fn rates_per_second() {
        let mut s = WindowedSeries::new(SimDuration::from_secs(10));
        for t in 0..30u64 {
            s.record(SimTime::from_secs(t), 1.0);
        }
        assert_eq!(s.window_rates(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn rousskov_summary() {
        let mut s = WindowedSeries::twenty_minutes();
        // Three windows with medians 100, 500, 300.
        for (w, m) in [(0u64, 100.0), (1, 500.0), (2, 300.0)] {
            for d in [-5.0, 0.0, 5.0] {
                s.record(SimTime::from_secs(w * 1200 + 60), m + d);
            }
        }
        assert_eq!(s.median_min_max(), Some((100.0, 500.0)));
    }

    #[test]
    fn peak_hours_restriction() {
        let mut s = WindowedSeries::new(SimDuration::from_secs(100));
        s.record(SimTime::from_secs(50), 1.0); // window 0
        s.record(SimTime::from_secs(150), 9.0); // window 1
        s.record(SimTime::from_secs(250), 5.0); // window 2
        assert_eq!(
            s.median_min_max_between(SimTime::from_secs(100), SimTime::from_secs(200)),
            Some((9.0, 9.0))
        );
        assert_eq!(
            s.median_min_max_between(SimTime::from_secs(300), SimTime::from_secs(400)),
            None
        );
    }

    #[test]
    fn empty_series() {
        let s = WindowedSeries::twenty_minutes();
        assert_eq!(s.median_min_max(), None);
        assert!(s.window_medians().is_empty());
    }

    #[test]
    fn empty_windows_skipped_in_medians_but_counted_in_rates() {
        let mut s = WindowedSeries::new(SimDuration::from_secs(10));
        s.record(SimTime::from_secs(5), 2.0);
        s.record(SimTime::from_secs(25), 4.0); // window 1 empty
        assert_eq!(s.window_medians(), vec![2.0, 4.0]);
        assert_eq!(s.window_counts(), vec![1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let _ = WindowedSeries::new(SimDuration::ZERO);
    }
}
