//! Virtual time for trace-driven simulation.
//!
//! Trace timestamps drive the simulated clock. Times are stored as integer
//! microseconds since the start of the trace so that arithmetic is exact and
//! ordering is total (no NaNs), which keeps event-queue behaviour
//! deterministic across platforms.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, in microseconds since trace start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (useful as an "infinitely late" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole microseconds since trace start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from whole milliseconds since trace start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from whole seconds since trace start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Builds an instant from fractional seconds; sub-microsecond precision is truncated.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "SimTime must be finite and non-negative, got {s}"
        );
        SimTime((s * 1e6) as u64)
    }

    /// Microseconds since trace start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since trace start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed duration since `earlier`, saturating at zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition (sticks at [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000)
    }

    /// Builds a duration from fractional milliseconds; truncates below 1 µs.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_millis_f64(ms: f64) -> Self {
        assert!(
            ms.is_finite() && ms >= 0.0,
            "duration must be finite and non-negative, got {ms}"
        );
        SimDuration((ms * 1e3) as u64)
    }

    /// Builds a duration from fractional seconds; truncates below 1 µs.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative, got {s}"
        );
        SimDuration((s * 1e6) as u64)
    }

    /// Whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Checked integer division of durations, yielding a ratio.
    pub fn ratio(self, other: SimDuration) -> Option<f64> {
        if other.0 == 0 {
            None
        } else {
            Some(self.0 as f64 / other.0 as f64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_mins(2).as_secs_f64(), 120.0);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 10_500_000);
        assert_eq!((t - SimTime::from_secs(10)).as_millis_f64(), 500.0);
        let mut u = SimTime::ZERO;
        u += SimDuration::from_secs(1);
        assert_eq!(u, SimTime::from_secs(1));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::from_secs(1).saturating_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(SimDuration::from_secs(1).ratio(SimDuration::ZERO), None);
        assert_eq!(
            SimDuration::from_secs(3).ratio(SimDuration::from_secs(2)),
            Some(1.5)
        );
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_seconds_rejected() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(1),
                SimTime::from_secs(3)
            ]
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4u64).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }
}
