//! Summary statistics used by the metrics layer.
//!
//! [`OnlineStats`] accumulates count/mean/variance/min/max in O(1) space
//! (Welford's algorithm); [`Histogram`] buckets values into fixed-width or
//! logarithmic bins for the distribution plots; [`percentile`] computes exact
//! order statistics from a sample vector.

use serde::{Deserialize, Serialize};

/// Streaming count / mean / variance / min / max accumulator.
///
/// ```
/// use bh_simcore::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), Some(1.0));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `x` is NaN.
    pub fn record(&mut self, x: f64) {
        debug_assert!(!x.is_nan(), "refusing to record NaN");
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// Exact percentile (nearest-rank) of a sample; `p` in `[0, 100]`.
///
/// Returns `None` on an empty sample.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or any value is NaN.
pub fn percentile(values: &mut [f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = ((p / 100.0) * (values.len() as f64 - 1.0)).round() as usize;
    Some(values[rank.min(values.len() - 1)])
}

/// Latency sample accumulator: records individual observations (seconds),
/// merges across threads, and reports nearest-rank percentiles via
/// [`percentile`]. Used by the prototype's load generator, where each
/// closed-loop client keeps its own `LatencyStats` and the harness merges
/// them at the end.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    samples: Vec<f64>,
}

impl LatencyStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// Records one latency observation in seconds.
    pub fn record(&mut self, seconds: f64) {
        self.samples.push(seconds);
    }

    /// Absorbs another accumulator's samples.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, if any samples were recorded.
    pub fn mean(&self) -> Option<f64> {
        (!self.samples.is_empty())
            .then(|| self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// Nearest-rank percentile (`p` in `[0, 100]`), if any samples.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or any sample is NaN.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        let mut copy = self.samples.clone();
        percentile(&mut copy, p)
    }

    /// Several percentiles from a single sort (cheaper than repeated
    /// [`LatencyStats::percentile`] calls).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`percentile`].
    pub fn percentiles(&self, ps: &[f64]) -> Vec<Option<f64>> {
        let mut copy = self.samples.clone();
        copy.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
        ps.iter()
            .map(|&p| {
                assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
                if copy.is_empty() {
                    return None;
                }
                let rank = ((p / 100.0) * (copy.len() as f64 - 1.0)).round() as usize;
                Some(copy[rank.min(copy.len() - 1)])
            })
            .collect()
    }

    /// Median.
    pub fn p50(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<f64> {
        self.percentile(95.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.percentile(99.0)
    }
}

/// Fixed-bin histogram over `[lo, hi)` with out-of-range counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let last = self.bins.len() - 1;
            self.bins[idx.min(last)] += 1;
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count of observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including out-of-range.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The `[lo, hi)` edges of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "bin {i} out of range");
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }
}

/// A ratio tracker for hit rates and similar fractions.
///
/// ```
/// use bh_simcore::stats::Ratio;
///
/// let mut hits = Ratio::new();
/// hits.record(true);
/// hits.record(false);
/// hits.record(true);
/// assert!((hits.value() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Creates an empty ratio.
    pub fn new() -> Self {
        Ratio::default()
    }

    /// Records one trial; `success` increments the numerator.
    pub fn record(&mut self, success: bool) {
        self.total += 1;
        if success {
            self.hits += 1;
        }
    }

    /// Adds `n` to the numerator and denominator weightings directly.
    pub fn add(&mut self, hits: u64, total: u64) {
        self.hits += hits;
        self.total += total;
    }

    /// Numerator.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Denominator.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The fraction (0.0 when no trials recorded).
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_percentiles_and_merge() {
        let mut a = LatencyStats::new();
        assert_eq!(a.count(), 0);
        assert_eq!(a.p50(), None);
        assert_eq!(a.mean(), None);
        for ms in 1..=50 {
            a.record(ms as f64 / 1000.0);
        }
        let mut b = LatencyStats::new();
        for ms in 51..=100 {
            b.record(ms as f64 / 1000.0);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert!((a.mean().unwrap() - 0.0505).abs() < 1e-12);
        // Nearest-rank over 1..=100 ms: rank = round(0.5 * 99) = 50.
        assert_eq!(a.p50(), Some(0.051));
        assert_eq!(a.p95(), Some(0.095));
        assert_eq!(a.p99(), Some(0.099));
        // The batched form agrees with the one-at-a-time form.
        assert_eq!(
            a.percentiles(&[50.0, 95.0, 99.0]),
            vec![a.p50(), a.p95(), a.p99()]
        );
    }

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 4.0);
        assert_eq!(s.std_dev(), 2.0);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.record(1.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 1.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut v, 0.0), Some(1.0));
        assert_eq!(percentile(&mut v, 50.0), Some(3.0));
        assert_eq!(percentile(&mut v, 100.0), Some(5.0));
        let mut empty: Vec<f64> = vec![];
        assert_eq!(percentile(&mut empty, 50.0), None);
    }

    #[test]
    fn histogram_bins_and_ranges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 9.999, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
        assert_eq!(h.bin_edges(4), (8.0, 10.0));
    }

    #[test]
    fn ratio_behaviour() {
        let r = Ratio::new();
        assert_eq!(r.value(), 0.0);
        let mut r = Ratio::new();
        r.add(3, 4);
        assert_eq!(r.hits(), 3);
        assert_eq!(r.total(), 4);
        assert_eq!(r.value(), 0.75);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn mean_bounded_by_min_max(xs in proptest::collection::vec(-1e6f64..1e6, 1..500)) {
                let mut s = OnlineStats::new();
                for &x in &xs {
                    s.record(x);
                }
                prop_assert!(s.mean() >= s.min().unwrap() - 1e-9);
                prop_assert!(s.mean() <= s.max().unwrap() + 1e-9);
            }

            #[test]
            fn merge_commutes(xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
                              ys in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
                let mk = |v: &[f64]| {
                    let mut s = OnlineStats::new();
                    for &x in v { s.record(x); }
                    s
                };
                let mut ab = mk(&xs);
                ab.merge(&mk(&ys));
                let mut ba = mk(&ys);
                ba.merge(&mk(&xs));
                prop_assert_eq!(ab.count(), ba.count());
                prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
                prop_assert!((ab.variance() - ba.variance()).abs() < 1e-6);
            }

            #[test]
            fn histogram_conserves_count(xs in proptest::collection::vec(-10.0f64..20.0, 0..200)) {
                let mut h = Histogram::new(0.0, 10.0, 7);
                for &x in &xs {
                    h.record(x);
                }
                prop_assert_eq!(h.total(), xs.len() as u64);
            }
        }
    }
}
