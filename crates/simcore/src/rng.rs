//! Seedable pseudo-random number generation and the distributions the
//! workload models need.
//!
//! Simulation results must be reproducible bit-for-bit from a seed, so the
//! substrate ships its own small generators ([`SplitMix64`] for seeding and
//! stream-splitting, [`Xoshiro256`] for bulk generation) rather than relying
//! on `rand`'s unspecified default engine. Both also implement
//! [`rand::RngCore`] so they compose with the `rand` distribution adapters
//! where convenient.
//!
//! The distribution helpers are exactly the ones web-workload modelling
//! needs: Zipf-like object popularity, log-normal object sizes, and
//! exponential inter-arrival / lifetime sampling.

use rand::RngCore;

/// SplitMix64: tiny, fast generator used to seed and split streams.
///
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014); constants from the public-domain reference
/// implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Derives an independent child stream; deterministic in (seed, label).
    pub fn split(&self, label: u64) -> SplitMix64 {
        let mut base = *self;
        let a = base.next_u64();
        SplitMix64::new(a ^ label.wrapping_mul(0xA24BAED4963EE407))
    }
}

/// xoshiro256** — the workhorse generator for bulk sampling.
///
/// Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
/// generators" (2018), public-domain reference implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the generator via SplitMix64, per the authors' recommendation.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's nearly-divisionless bounded sampling with rejection for
        // exact uniformity.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Exponential deviate with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // Inversion; guard against ln(0).
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Standard normal deviate (Box–Muller, single value).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal deviate with the given parameters of the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Derives an independent child stream; deterministic in (state, label).
    pub fn split(&mut self, label: u64) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(self.next_u64() ^ label.wrapping_mul(0x9E3779B97F4A7C15))
    }
}

impl RngCore for Xoshiro256 {
    fn next_u32(&mut self) -> u32 {
        (Xoshiro256::next_u64(self) >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        Xoshiro256::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&Xoshiro256::next_u64(self).to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = Xoshiro256::next_u64(self).to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (SplitMix64::next_u64(self) >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&SplitMix64::next_u64(self).to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = SplitMix64::next_u64(self).to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Zipf-like sampler over ranks `0..n` with exponent `alpha`.
///
/// Web object popularity is famously Zipf-like with `alpha ≈ 0.7–0.8`
/// (Breslau et al.); the workload generators use this to reproduce the
/// hit-rate-vs-sharing curves of the paper's Figure 3.
///
/// Sampling is exact inverse-CDF over a precomputed cumulative weight table
/// (O(log n) per draw). The table is built once per workload; even the DEC
/// trace's 4.15 M-URL universe costs ~33 MB transiently and a few tens of
/// milliseconds to build.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    alpha: f64,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `alpha`
    /// (probability of rank *k* proportional to `1/(k+1)^alpha`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is not a sane Zipf exponent
    /// (finite, in `[0, 5]`).
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            alpha.is_finite() && (0.0..=5.0).contains(&alpha),
            "unreasonable Zipf alpha {alpha}"
        );
        let n = usize::try_from(n).expect("rank count fits in usize");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += ((k + 1) as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf, alpha }
    }

    /// Draws a rank in `0..n` (rank 0 is the most popular).
    pub fn sample(&self, rng: &mut Xoshiro256) -> u64 {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u) as u64
    }

    /// Number of ranks.
    pub fn ranks(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// The Zipf exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 1234567, from the public-domain reference.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn xoshiro_streams_differ_by_seed() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut parent1 = Xoshiro256::seed_from_u64(7);
        let mut parent2 = Xoshiro256::seed_from_u64(7);
        let mut c1 = parent1.split(11);
        let mut c2 = parent2.split(11);
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        let mut c3 = parent1.split(12);
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = Xoshiro256::seed_from_u64(4);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for c in counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Xoshiro256::seed_from_u64(0).below(0);
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = Xoshiro256::seed_from_u64(5);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exponential(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn log_normal_median_close() {
        let mut r = Xoshiro256::seed_from_u64(6);
        let mut v: Vec<f64> = (0..50_001).map(|_| r.log_normal(2.0, 1.0)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median = v[25_000];
        let expected = (2.0f64).exp();
        assert!(
            (median / expected - 1.0).abs() < 0.05,
            "median {median} vs {expected}"
        );
    }

    #[test]
    fn zipf_rank0_most_popular() {
        let z = Zipf::new(10_000, 0.8);
        let mut r = Xoshiro256::seed_from_u64(9);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..200_000 {
            *counts.entry(z.sample(&mut r)).or_insert(0u32) += 1;
        }
        let c0 = counts.get(&0).copied().unwrap_or(0);
        let c10 = counts.get(&10).copied().unwrap_or(0);
        let c1000 = counts.get(&1000).copied().unwrap_or(0);
        assert!(
            c0 > c10 && c10 > c1000,
            "popularity must decay: {c0} {c10} {c1000}"
        );
    }

    #[test]
    fn zipf_respects_rank_bounds() {
        for alpha in [0.0, 0.5, 0.75, 1.0, 1.5] {
            let z = Zipf::new(100, alpha);
            let mut r = Xoshiro256::seed_from_u64(10);
            for _ in 0..10_000 {
                assert!(z.sample(&mut r) < 100);
            }
        }
    }

    #[test]
    fn zipf_alpha_zero_is_roughly_uniform() {
        let z = Zipf::new(8, 0.0);
        let mut r = Xoshiro256::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[z.sample(&mut r) as usize] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "alpha=0 bucket {c}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut r = Xoshiro256::seed_from_u64(12);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn below_always_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
                let mut r = Xoshiro256::seed_from_u64(seed);
                for _ in 0..50 {
                    prop_assert!(r.below(n) < n);
                }
            }

            #[test]
            fn zipf_in_range(seed in any::<u64>(), n in 1u64..100_000,
                             alpha in 0.0f64..2.0) {
                let z = Zipf::new(n, alpha);
                let mut r = Xoshiro256::seed_from_u64(seed);
                for _ in 0..20 {
                    prop_assert!(z.sample(&mut r) < n);
                }
            }

            #[test]
            fn chance_extremes(seed in any::<u64>()) {
                let mut r = Xoshiro256::seed_from_u64(seed);
                prop_assert!(!r.chance(0.0));
                prop_assert!(r.chance(1.0));
            }
        }
    }
}
