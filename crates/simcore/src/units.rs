//! Byte-size newtype.
//!
//! Cache capacities, object sizes, and bandwidth bookkeeping all traffic in
//! bytes; a newtype keeps KB/MB/GB conversions explicit (the paper mixes all
//! three) and prevents unit mix-ups in cost-model arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A size in bytes. Uses decimal-power multiples (1 KB = 10³ B) only for
/// display; constructors use binary multiples (1 KB = 1024 B) to match the
/// paper's cache-size conventions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);
    /// Sentinel for "no limit" capacities.
    pub const MAX: ByteSize = ByteSize(u64::MAX);

    /// Constructs from raw bytes.
    pub const fn from_bytes(b: u64) -> Self {
        ByteSize(b)
    }

    /// Constructs from binary kilobytes (×1024).
    pub const fn from_kb(kb: u64) -> Self {
        ByteSize(kb * 1024)
    }

    /// Constructs from binary megabytes (×1024²).
    pub const fn from_mb(mb: u64) -> Self {
        ByteSize(mb * 1024 * 1024)
    }

    /// Constructs from binary gigabytes (×1024³).
    pub const fn from_gb(gb: u64) -> Self {
        ByteSize(gb * 1024 * 1024 * 1024)
    }

    /// Constructs from fractional megabytes, truncating below one byte.
    ///
    /// # Panics
    ///
    /// Panics if `mb` is negative or not finite.
    pub fn from_mb_f64(mb: f64) -> Self {
        assert!(
            mb.is_finite() && mb >= 0.0,
            "size must be finite and non-negative, got {mb}"
        );
        ByteSize((mb * 1024.0 * 1024.0) as u64)
    }

    /// Raw byte count.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Size in binary kilobytes as a float.
    pub fn as_kb_f64(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// Size in binary megabytes as a float.
    pub fn as_mb_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Size in binary gigabytes as a float.
    pub fn as_gb_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Whether this is the "no limit" sentinel.
    pub const fn is_unlimited(self) -> bool {
        self.0 == u64::MAX
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition (sticks at the unlimited sentinel).
    pub fn saturating_add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_add(rhs.0))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    /// # Panics
    /// Panics in debug builds on underflow.
    fn sub(self, rhs: ByteSize) -> ByteSize {
        debug_assert!(self.0 >= rhs.0, "ByteSize subtraction underflow");
        ByteSize(self.0 - rhs.0)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unlimited() {
            return f.write_str("unlimited");
        }
        let b = self.0 as f64;
        if self.0 >= 1024 * 1024 * 1024 {
            write!(f, "{:.2}GB", b / (1024.0 * 1024.0 * 1024.0))
        } else if self.0 >= 1024 * 1024 {
            write!(f, "{:.2}MB", b / (1024.0 * 1024.0))
        } else if self.0 >= 1024 {
            write!(f, "{:.2}KB", b / 1024.0)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(ByteSize::from_kb(8).as_bytes(), 8192);
        assert_eq!(ByteSize::from_mb(1).as_kb_f64(), 1024.0);
        assert_eq!(ByteSize::from_gb(5).as_gb_f64(), 5.0);
        assert_eq!(ByteSize::from_mb_f64(0.5).as_bytes(), 512 * 1024);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = ByteSize::from_kb(10);
        let b = ByteSize::from_kb(4);
        assert_eq!(a + b, ByteSize::from_kb(14));
        assert_eq!(a - b, ByteSize::from_kb(6));
        assert!(a > b);
        assert_eq!(b.saturating_sub(a), ByteSize::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, ByteSize::from_kb(14));
    }

    #[test]
    fn unlimited_sentinel() {
        assert!(ByteSize::MAX.is_unlimited());
        assert!(!ByteSize::from_gb(100).is_unlimited());
        assert_eq!(
            ByteSize::MAX.saturating_add(ByteSize::from_kb(1)),
            ByteSize::MAX
        );
        assert_eq!(format!("{}", ByteSize::MAX), "unlimited");
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", ByteSize::from_bytes(512)), "512B");
        assert_eq!(format!("{}", ByteSize::from_kb(2)), "2.00KB");
        assert_eq!(format!("{}", ByteSize::from_mb(3)), "3.00MB");
        assert_eq!(format!("{}", ByteSize::from_gb(4)), "4.00GB");
    }

    #[test]
    fn sum_iterator() {
        let total: ByteSize = (1..=3).map(ByteSize::from_kb).sum();
        assert_eq!(total, ByteSize::from_kb(6));
    }
}
