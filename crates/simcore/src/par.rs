//! A seeded, order-preserving work-stealing job pool.
//!
//! Experiment grids are embarrassingly parallel: every cell is an
//! independent simulation. [`sweep`] fans a job list out over scoped worker
//! threads (built on the vendored `crossbeam`), each with its own deque;
//! idle workers steal from the back of busy workers' deques, so one slow
//! cell (e.g. a push-all run) never serializes the tail of the grid.
//!
//! Determinism is structural, not scheduled: results are returned in
//! submission order, and [`sweep_seeded`] derives each job's RNG seed from
//! its submission *index* (via [`derive_seed`]), never from the worker that
//! happens to run it. A grid therefore produces bit-identical results for
//! any worker count, including the serial `workers = 1` path.

use crate::rng::SplitMix64;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Worker count matching the host: `std::thread::available_parallelism`,
/// or 1 if that cannot be determined.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// An independent RNG seed for job `index` under `base`: deterministic,
/// well-mixed (SplitMix64), and independent of scheduling.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut h = SplitMix64::new(base).split(index.wrapping_add(1));
    h.next_u64()
}

/// Runs `f(index, item)` for every item on up to `workers` work-stealing
/// threads, returning results in submission order.
///
/// `f` may borrow from the enclosing scope. With `workers <= 1` (or fewer
/// than two items) the jobs run inline on the caller's thread, in order —
/// the reference execution every parallel schedule must match.
///
/// # Panics
///
/// Propagates the first panic raised by `f`.
pub fn sweep<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let workers = workers.min(n);

    // Round-robin initial distribution over per-worker deques.
    let deques: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, item) in items.into_iter().enumerate() {
        deques[i % workers]
            .lock()
            .expect("deque poisoned")
            .push_back((i, item));
    }

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let slot_refs: Vec<Mutex<&mut Option<R>>> = slots.iter_mut().map(Mutex::new).collect();

    let run = |w: usize| loop {
        // Own deque first (front), then steal from the back of the others.
        let mut job = deques[w].lock().expect("deque poisoned").pop_front();
        if job.is_none() {
            for v in 1..workers {
                let victim = (w + v) % workers;
                job = deques[victim].lock().expect("deque poisoned").pop_back();
                if job.is_some() {
                    break;
                }
            }
        }
        let Some((idx, item)) = job else { break };
        let result = f(idx, item);
        **slot_refs[idx].lock().expect("slot poisoned") = Some(result);
    };

    let outcome = crossbeam::thread::scope(|scope| {
        for w in 0..workers {
            scope.spawn(move |_| run(w));
        }
    });
    if let Err(payload) = outcome {
        std::panic::resume_unwind(payload);
    }
    drop(slot_refs);
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("job {i} produced no result")))
        .collect()
}

/// [`sweep`] with a per-job derived seed: `f(seed, index, item)` where
/// `seed = derive_seed(base_seed, index)`. Use this for jobs that need
/// their own RNG stream — the seed depends only on the submission index,
/// so any schedule (and any `workers`) reproduces the serial results.
pub fn sweep_seeded<T, R, F>(workers: usize, base_seed: u64, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(u64, usize, T) -> R + Sync,
{
    sweep(workers, items, |i, item| {
        f(derive_seed(base_seed, i as u64), i, item)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sweep_preserves_order_for_any_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let want: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = sweep(workers, items.clone(), |_, x| x * 3 + 1);
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn sweep_handles_empty_and_single() {
        assert_eq!(sweep(8, Vec::<u32>::new(), |_, x| x), Vec::<u32>::new());
        assert_eq!(sweep(8, vec![7u32], |i, x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn sweep_passes_submission_indices() {
        let got = sweep(4, vec!['a', 'b', 'c', 'd', 'e'], |i, c| (i, c));
        assert_eq!(got, vec![(0, 'a'), (1, 'b'), (2, 'c'), (3, 'd'), (4, 'e')]);
    }

    #[test]
    fn uneven_jobs_are_stolen() {
        // One giant job on worker 0; the rest must not wait behind it.
        let done = AtomicUsize::new(0);
        let got = sweep(4, (0..16u64).collect(), |_, x| {
            if x == 0 {
                // Busy-wait until every other job has finished — only
                // possible if other workers steal them meanwhile.
                while done.load(Ordering::SeqCst) < 15 {
                    std::thread::yield_now();
                }
            } else {
                done.fetch_add(1, Ordering::SeqCst);
            }
            x * 2
        });
        assert_eq!(got, (0..16u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn seeded_sweep_is_schedule_independent() {
        let items: Vec<u64> = (0..40).collect();
        let serial = sweep_seeded(1, 42, items.clone(), |seed, i, x| (seed, i, x));
        for workers in [2, 8] {
            let par = sweep_seeded(workers, 42, items.clone(), |seed, i, x| (seed, i, x));
            assert_eq!(par, serial, "workers={workers}");
        }
        // Seeds are distinct across indices and differ across bases.
        let seeds: std::collections::HashSet<u64> = serial.iter().map(|(seed, ..)| *seed).collect();
        assert_eq!(seeds.len(), 40);
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(9, 3), derive_seed(9, 3));
        assert_ne!(derive_seed(9, 3), derive_seed(9, 4));
    }

    #[test]
    fn sweep_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            sweep(4, (0..8u32).collect(), |_, x| {
                assert!(x != 5, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn available_workers_positive() {
        assert!(available_workers() >= 1);
    }
}
