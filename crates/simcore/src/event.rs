//! Deterministic discrete-event queue.
//!
//! Events scheduled at the same [`SimTime`] pop in insertion order (FIFO
//! tie-breaking by a monotonically increasing sequence number), which makes
//! simulation runs reproducible regardless of payload type or platform.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A min-heap of timestamped events with FIFO tie-breaking.
///
/// ```
/// use bh_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "b");
/// q.schedule(SimTime::from_secs(1), "a");
/// q.schedule(SimTime::from_secs(2), "c");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    peak_depth: usize,
}

/// Lifetime profile of an [`EventQueue`], for observability surfaces.
///
/// Both figures are pure functions of the schedule/pop sequence, so they
/// are safe to include in deterministic artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Total events ever scheduled.
    pub scheduled: u64,
    /// Maximum number of events pending at once.
    pub peak_depth: usize,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (and, among
        // equals, the first-scheduled) entry surfaces first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            peak_depth: 0,
        }
    }

    /// Schedules `event` to fire at time `at`.
    ///
    /// Scheduling in the past is allowed (the event fires at the next pop);
    /// this matches trace-driven use where an update may be "already due".
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
        self.peak_depth = self.peak_depth.max(self.heap.len());
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp (the clock never moves backwards).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = self.now.max(entry.at);
        Some((entry.at, entry.event))
    }

    /// Pops the earliest event only if it is due at or before `deadline`.
    ///
    /// This is the primitive trace-driven simulators use: before handling a
    /// trace record at time *t*, drain all simulator events scheduled `<= t`.
    pub fn pop_due(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// The queue's notion of "now": the timestamp of the latest popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events. The lifetime [`QueueStats`] are kept.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Lifetime scheduling profile: total events scheduled and the peak
    /// pending depth. `seq` doubles as the scheduled-total, so this costs
    /// nothing on the hot path beyond one `max` per schedule.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            scheduled: self.seq,
            peak_depth: self.peak_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for s in [5u64, 1, 4, 2, 3] {
            q.schedule(SimTime::from_secs(s), s);
        }
        let got: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(got, [1, 2, 3, 4, 5]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let got: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "early");
        q.schedule(SimTime::from_secs(10), "late");
        assert_eq!(
            q.pop_due(SimTime::from_secs(5)).map(|(_, e)| e),
            Some("early")
        );
        assert_eq!(q.pop_due(SimTime::from_secs(5)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clock_monotone_even_with_past_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "a");
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(10));
        q.schedule(SimTime::from_secs(1), "stale");
        q.pop();
        // Clock does not move backwards.
        assert_eq!(q.now(), SimTime::from_secs(10));
    }

    #[test]
    fn len_empty_clear() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO + SimDuration::from_secs(1), ());
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn stats_track_scheduled_total_and_peak_depth() {
        let mut q = EventQueue::new();
        assert_eq!(q.stats(), QueueStats::default());
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.schedule(SimTime::from_secs(3), "c");
        q.pop();
        q.pop();
        // Depth peaked at 3 even though only 1 is pending now.
        assert_eq!(
            q.stats(),
            QueueStats {
                scheduled: 3,
                peak_depth: 3
            }
        );
        q.schedule(SimTime::from_secs(4), "d");
        // Re-scheduling after a drain does not disturb the peak.
        assert_eq!(
            q.stats(),
            QueueStats {
                scheduled: 4,
                peak_depth: 3
            }
        );
        q.clear();
        assert_eq!(q.stats().scheduled, 4);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Popped timestamps are non-decreasing for arbitrary schedules.
            #[test]
            fn pop_order_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
                let mut q = EventQueue::new();
                for (i, t) in times.iter().enumerate() {
                    q.schedule(SimTime::from_micros(*t), i);
                }
                let mut last = SimTime::ZERO;
                while let Some((t, _)) = q.pop() {
                    prop_assert!(t >= last);
                    last = t;
                }
            }

            /// Every scheduled event is eventually popped exactly once.
            #[test]
            fn conservation(times in proptest::collection::vec(0u64..1000, 0..100)) {
                let mut q = EventQueue::new();
                for (i, t) in times.iter().enumerate() {
                    q.schedule(SimTime::from_micros(*t), i);
                }
                let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
                seen.sort_unstable();
                prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
            }
        }
    }
}
