//! Deterministic simulation substrate for the Beyond Hierarchies reproduction.
//!
//! The paper evaluates its caching strategies with a trace-driven simulator.
//! This crate provides the pieces every layer above shares:
//!
//! * [`time`] — microsecond-resolution virtual time ([`SimTime`], [`SimDuration`]);
//! * [`event`] — a deterministic discrete-event queue ([`event::EventQueue`])
//!   used to model delayed hint propagation and scheduled pushes;
//! * [`par`] — a seeded, order-preserving work-stealing job pool for
//!   embarrassingly parallel experiment grids ([`par::sweep`]);
//! * [`rng`] — a small, fast, seedable PRNG ([`rng::SplitMix64`] /
//!   [`rng::Xoshiro256`]) plus distribution helpers (Zipf, log-normal,
//!   exponential) so simulations are reproducible bit-for-bit;
//! * [`stats`] — online summary statistics and fixed-bin histograms used by
//!   the metrics layer;
//! * [`timeseries`] — windowed medians/rates (Rousskov's 20-minute-median
//!   methodology, the source of Table 3);
//! * [`units`] — byte-size newtype with KB/MB/GB constructors.
//!
//! # Examples
//!
//! ```
//! use bh_simcore::event::EventQueue;
//! use bh_simcore::time::{SimDuration, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_secs(5), "later");
//! q.schedule(SimTime::ZERO + SimDuration::from_secs(1), "sooner");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "sooner");
//! assert_eq!(t.as_secs_f64(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod par;
pub mod rng;
pub mod stats;
pub mod time;
pub mod timeseries;
pub mod units;

pub use event::{EventQueue, QueueStats};
pub use time::{SimDuration, SimTime};
pub use units::ByteSize;
