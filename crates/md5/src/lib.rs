//! From-scratch MD5 (RFC 1321) message digest.
//!
//! The Beyond Hierarchies design derives identifiers from MD5 signatures:
//! node IDs are the MD5 of the node's IP address, object IDs are the MD5 of
//! the object's URL, and hint records store 8-byte (64-bit) prefixes of those
//! digests (paper §3.1.3, §3.2.1). This crate provides exactly that: a small,
//! dependency-free MD5 with helpers for the 64-bit key used throughout the
//! repository.
//!
//! MD5 is used here purely as a well-distributed deterministic hash, never
//! for security.
//!
//! # Examples
//!
//! ```
//! use bh_md5::{md5, Digest};
//!
//! let d: Digest = md5(b"abc");
//! assert_eq!(d.to_hex(), "900150983cd24fb0d6963f7d28e17f72");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A 128-bit MD5 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Digest(pub [u8; 16]);

impl Digest {
    /// Renders the digest as the conventional 32-character lowercase hex string.
    ///
    /// ```
    /// assert_eq!(bh_md5::md5(b"").to_hex(), "d41d8cd98f00b204e9800998ecf8427e");
    /// ```
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(32);
        for b in &self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
            s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
        }
        s
    }

    /// Returns the low-order 64 bits of the digest (the first 8 bytes in
    /// digest order), interpreted little-endian.
    ///
    /// This is the "8-byte object identifier (part of the MD5 signature of
    /// the object's URL)" that hint records carry on the wire (§3.2).
    pub fn low64(&self) -> u64 {
        let mut word = [0u8; 8];
        word.copy_from_slice(&self.0[..8]);
        u64::from_le_bytes(word)
    }

    /// Returns the high-order 64 bits of the digest (bytes 8..16),
    /// interpreted little-endian.
    pub fn high64(&self) -> u64 {
        let mut word = [0u8; 8];
        word.copy_from_slice(&self.0[8..]);
        u64::from_le_bytes(word)
    }

    /// Returns the raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<Digest> for [u8; 16] {
    fn from(d: Digest) -> Self {
        d.0
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Streaming MD5 context.
///
/// Feed data incrementally with [`Context::consume`] and finish with
/// [`Context::finalize`].
///
/// ```
/// use bh_md5::Context;
///
/// let mut ctx = Context::new();
/// ctx.consume(b"hello ");
/// ctx.consume(b"world");
/// assert_eq!(ctx.finalize(), bh_md5::md5(b"hello world"));
/// ```
#[derive(Clone)]
pub struct Context {
    state: [u32; 4],
    /// Total message length in bytes (mod 2^64).
    length: u64,
    buffer: [u8; 64],
    buffered: usize,
}

impl fmt::Debug for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("length", &self.length)
            .field("buffered", &self.buffered)
            .finish()
    }
}

impl Default for Context {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-round shift amounts, from RFC 1321.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, // round 1
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, // round 2
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, // round 3
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, // round 4
];

/// Sine-derived constants `K[i] = floor(2^32 * abs(sin(i + 1)))`, from RFC 1321.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

impl Context {
    /// Creates a fresh context with the RFC 1321 initial state.
    pub fn new() -> Self {
        Context {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            length: 0,
            buffer: [0u8; 64],
            buffered: 0,
        }
    }

    /// Absorbs `data` into the digest state.
    pub fn consume(&mut self, data: impl AsRef<[u8]>) {
        let mut data = data.as_ref();
        self.length = self.length.wrapping_add(data.len() as u64);

        // Top up a partially filled buffer first.
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffered = 0;
            } else {
                // Buffer still partial ⇒ the input was fully absorbed; do
                // not fall through (the remainder path would clobber
                // `buffered`).
                debug_assert!(data.is_empty());
                return;
            }
        }

        let mut chunks = data.chunks_exact(64);
        let mut block = [0u8; 64];
        for chunk in &mut chunks {
            block.copy_from_slice(chunk);
            self.process_block(&block);
        }
        let rest = chunks.remainder();
        self.buffer[..rest.len()].copy_from_slice(rest);
        self.buffered = rest.len();
    }

    /// Completes the digest, applying RFC 1321 padding.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.length.wrapping_mul(8);
        // Padding: a single 0x80 byte, zeros to 56 mod 64, then the 64-bit
        // little-endian bit length.
        self.consume([0x80u8]);
        while self.buffered != 56 {
            self.consume([0u8]);
        }
        // Consuming the length also bumps self.length, but we captured
        // bit_len before padding so the encoded value is correct.
        self.consume(bit_len.to_le_bytes());
        debug_assert_eq!(self.buffered, 0);

        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        Digest(out)
    }

    /// Creates a context pre-seeded with `key` — the prefix half of the
    /// envelope authenticator `MD5(key ‖ data ‖ key)`. Pair with
    /// [`Context::finalize_keyed`], which absorbs the trailer copy.
    ///
    /// ```
    /// use bh_md5::{keyed_md5, Context};
    ///
    /// let mut ctx = Context::keyed(b"k");
    /// ctx.consume(b"payload");
    /// assert_eq!(ctx.finalize_keyed(b"k"), keyed_md5(b"k", b"payload"));
    /// ```
    pub fn keyed(key: &[u8]) -> Context {
        let mut ctx = Context::new();
        ctx.consume(key);
        ctx
    }

    /// Completes an envelope authenticator started with
    /// [`Context::keyed`]: absorbs `key` again as the trailer, then
    /// finalizes.
    pub fn finalize_keyed(mut self, key: &[u8]) -> Digest {
        self.consume(key);
        self.finalize()
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }

        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// Computes the MD5 digest of `data` in one shot.
///
/// ```
/// assert_eq!(
///     bh_md5::md5(b"The quick brown fox jumps over the lazy dog").to_hex(),
///     "9e107d9d372bb6826bd81d3542a419d6",
/// );
/// ```
pub fn md5(data: impl AsRef<[u8]>) -> Digest {
    let mut ctx = Context::new();
    ctx.consume(data);
    ctx.finalize()
}

/// Keyed digest in envelope construction: `MD5(key ‖ data ‖ key)`.
///
/// Used as the per-peer hint-batch authenticator. Like everything else
/// in this crate it is an *integrity* primitive, not a cryptographic
/// MAC: it detects corrupted and byzantine-buggy senders, and its
/// strength is exactly the secrecy of `key` (a real deployment would
/// provision a shared secret; the prototype derives per-sender keys
/// from a public scheme, which catches corruption but not a determined
/// forger).
///
/// ```
/// let a = bh_md5::keyed_md5(b"k1", b"batch");
/// let b = bh_md5::keyed_md5(b"k2", b"batch");
/// assert_ne!(a, b, "different keys, different tags");
/// ```
pub fn keyed_md5(key: &[u8], data: &[u8]) -> Digest {
    let mut ctx = Context::keyed(key);
    ctx.consume(data);
    ctx.finalize_keyed(key)
}

/// Convenience: the 64-bit key for a URL, as used by hint records (§3.2.1).
///
/// Two distinct URLs may collide in 64 bits; the system tolerates this as a
/// false positive (the remote cache replies with an error and the request is
/// treated as a miss), exactly as the paper describes.
///
/// ```
/// let k = bh_md5::url_key("http://example.com/index.html");
/// assert_ne!(k, bh_md5::url_key("http://example.com/other.html"));
/// ```
pub fn url_key(url: &str) -> u64 {
    md5(url.as_bytes()).low64()
}

/// Convenience: the 64-bit node identifier for an address string
/// (e.g. `"128.83.120.10:3128"`), per §3.1.3's MD5-of-IP node IDs.
pub fn node_key(addr: &str) -> u64 {
    md5(addr.as_bytes()).low64()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: &[(&str, &str)] = &[
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                "abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(md5(input.as_bytes()).to_hex(), *expected, "md5({input:?})");
        }
    }

    #[test]
    fn incremental_matches_oneshot_at_block_boundaries() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0, 1, 55, 56, 63, 64, 65, 128, 999, 1000] {
            let mut ctx = Context::new();
            ctx.consume(&data[..split]);
            ctx.consume(&data[split..]);
            assert_eq!(ctx.finalize(), md5(&data), "split at {split}");
        }
    }

    #[test]
    fn incremental_byte_at_a_time() {
        let data = b"an arbitrary message that spans multiple MD5 blocks when repeated \
                     enough times to exceed sixty-four bytes in total length";
        let mut ctx = Context::new();
        for b in data.iter() {
            ctx.consume([*b]);
        }
        assert_eq!(ctx.finalize(), md5(data));
    }

    #[test]
    fn keyed_digest_is_the_envelope_construction() {
        assert_eq!(
            keyed_md5(b"key", b"data"),
            md5(b"keydatakey"),
            "keyed_md5 must equal MD5(key ‖ data ‖ key)"
        );
        let mut ctx = Context::keyed(b"key");
        ctx.consume(b"da");
        ctx.consume(b"ta");
        assert_eq!(ctx.finalize_keyed(b"key"), keyed_md5(b"key", b"data"));
        assert_ne!(keyed_md5(b"a", b"x"), keyed_md5(b"b", b"x"));
        assert_ne!(keyed_md5(b"a", b"x"), md5(b"x"));
    }

    #[test]
    fn low64_and_high64_cover_digest() {
        let d = md5(b"abc");
        let lo = d.low64().to_le_bytes();
        let hi = d.high64().to_le_bytes();
        assert_eq!(&d.0[..8], &lo);
        assert_eq!(&d.0[8..], &hi);
    }

    #[test]
    fn display_matches_hex() {
        let d = md5(b"x");
        assert_eq!(format!("{d}"), d.to_hex());
        assert!(format!("{d:?}").contains(&d.to_hex()));
    }

    #[test]
    fn url_keys_well_distributed_in_low_bits() {
        // Sanity: low bits of URL keys should spread across buckets; with 4096
        // URLs into 64 buckets, no bucket should be wildly over-occupied.
        let mut buckets = [0u32; 64];
        for i in 0..4096 {
            let k = url_key(&format!(
                "http://server{}.example.com/path/{}.html",
                i % 97,
                i
            ));
            buckets[(k % 64) as usize] += 1;
        }
        let max = *buckets.iter().max().expect("nonempty");
        let min = *buckets.iter().min().expect("nonempty");
        assert!(max < 2 * 4096 / 64, "max bucket {max} too hot");
        assert!(min > 0, "empty bucket");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Splitting the input arbitrarily never changes the digest.
            #[test]
            fn split_invariance(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                split in 0usize..2048) {
                let split = split.min(data.len());
                let mut ctx = Context::new();
                ctx.consume(&data[..split]);
                ctx.consume(&data[split..]);
                prop_assert_eq!(ctx.finalize(), md5(&data));
            }

            /// Distinct short inputs virtually never collide in 128 bits.
            #[test]
            fn distinct_inputs_distinct_digests(a in ".{0,64}", b in ".{0,64}") {
                prop_assume!(a != b);
                prop_assert_ne!(md5(a.as_bytes()), md5(b.as_bytes()));
            }

            /// Hex round-trip has fixed length and charset.
            #[test]
            fn hex_is_canonical(data in proptest::collection::vec(any::<u8>(), 0..256)) {
                let h = md5(&data).to_hex();
                prop_assert_eq!(h.len(), 32);
                prop_assert!(h.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
            }
        }
    }
}
