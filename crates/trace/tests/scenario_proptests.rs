//! Property tests for the scenario workload generators (the
//! `tests/scenario_proptests.rs` the `scenario` module doc points at):
//!
//! * arena replay is byte-identical to fresh generation for both the
//!   flash-crowd and diurnal-churn specs, across seeds and shapes;
//! * the flash-crowd ramp schedule is monotone non-decreasing;
//! * the churn schedule is sorted, complete (every leave has its
//!   node's rejoin at or after it), and in-bounds.

use bh_trace::scenario::{ChurnKind, DiurnalChurnSpec, FlashCrowdSpec};
use bh_trace::{TraceRecord, WorkloadSpec};
use proptest::prelude::*;

fn arb_flash_spec() -> BoxedStrategy<FlashCrowdSpec> {
    (100u64..800, 1u64..99, 1u64..100, 1u64..99, 0.05f64..0.9)
        .prop_map(|(requests, start_pct, len_pct, peak_pct, p_new)| {
            let base = WorkloadSpec::small()
                .with_requests(requests)
                .with_p_new(p_new);
            FlashCrowdSpec {
                ramp_start: requests * start_pct / 100,
                ramp_len: (requests * len_pct / 100).max(1),
                peak_share: peak_pct as f64 / 100.0,
                base,
            }
        })
        .boxed()
}

fn arb_churn_spec() -> BoxedStrategy<DiurnalChurnSpec> {
    (100u64..800, 2u32..12, 10.0f64..100.0)
        .prop_map(|(requests, nodes, churn_multiplier)| DiurnalChurnSpec {
            base: WorkloadSpec::small().with_requests(requests),
            nodes,
            churn_multiplier,
        })
        .boxed()
}

proptest! {
    /// Replaying the flash-crowd arena yields the generator stream
    /// verbatim — the scenario's replay path cannot drift from fresh
    /// generation.
    #[test]
    fn flash_crowd_arena_replay_equals_fresh_generation(
        spec in arb_flash_spec(),
        seed in 0u64..1_000,
    ) {
        prop_assert!(spec.validate().is_ok());
        let fresh: Vec<TraceRecord> = spec.generate(seed).collect();
        let replayed: Vec<TraceRecord> = spec.materialize(seed).iter().collect();
        prop_assert_eq!(fresh, replayed);
    }

    /// Same property for the diurnal-churn workload (whose arena is
    /// built from the amplitude-raised derived spec).
    #[test]
    fn diurnal_arena_replay_equals_fresh_generation(
        spec in arb_churn_spec(),
        seed in 0u64..1_000,
    ) {
        prop_assert!(spec.validate().is_ok());
        let fresh: Vec<TraceRecord> =
            bh_trace::TraceGenerator::new(&spec.workload(), seed).collect();
        let replayed: Vec<TraceRecord> = spec.materialize(seed).iter().collect();
        prop_assert_eq!(fresh, replayed);
    }

    /// The hot object's scheduled share never decreases along the
    /// trace, and is bounded by `peak_share`.
    #[test]
    fn flash_crowd_ramp_is_monotone(spec in arb_flash_spec()) {
        let mut prev = 0.0f64;
        for i in 0..spec.base.requests {
            let share = spec.share_at(i);
            prop_assert!(share >= prev, "share dipped at {i}: {share} < {prev}");
            prop_assert!(share <= spec.peak_share + 1e-12);
            prev = share;
        }
        prop_assert_eq!(spec.share_at(0), 0.0);
        prop_assert!(
            (spec.share_at(u64::MAX) - spec.peak_share).abs() < 1e-12,
            "the ramp plateaus at peak_share"
        );
    }

    /// The churn schedule is deterministic in the seed, sorted by
    /// `(request, node, leave-before-join)`, in-bounds, and every leave
    /// is eventually answered by the same node's rejoin.
    #[test]
    fn churn_schedule_is_ordered_and_complete(
        spec in arb_churn_spec(),
        seed in 0u64..1_000,
    ) {
        let schedule = spec.churn_schedule(seed);
        prop_assert_eq!(schedule.clone(), spec.churn_schedule(seed));
        prop_assert_eq!(schedule.len() as u64, spec.churn_pairs() * 2);

        let key = |e: &bh_trace::ChurnEvent| {
            (e.at_request, e.node, matches!(e.kind, ChurnKind::Join))
        };
        for pair in schedule.windows(2) {
            prop_assert!(key(&pair[0]) <= key(&pair[1]), "schedule must be sorted");
        }
        for (i, e) in schedule.iter().enumerate() {
            prop_assert!(e.at_request < spec.base.requests, "event past trace end");
            prop_assert!(e.node < spec.nodes, "event names an unknown node");
            if e.kind == ChurnKind::Leave {
                prop_assert!(
                    schedule[i..].iter().any(|j| j.kind == ChurnKind::Join
                        && j.node == e.node
                        && j.at_request >= e.at_request),
                    "leave of node {} at {} has no later rejoin",
                    e.node,
                    e.at_request
                );
            }
        }
    }
}
