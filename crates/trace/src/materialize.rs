//! Materialized trace arenas and the process-wide trace cache.
//!
//! [`TraceGenerator`] is cheap enough to stream once, but the experiment
//! suite replays the *same* `(spec, seed)` trace dozens of times — every
//! strategy, cache size, and delay point is an independent pass. Generating
//! costs several PRNG draws plus transcendental math per record;
//! replaying a [`MaterializedTrace`] costs four array reads.
//!
//! The arena is a struct-of-arrays buffer (no per-record allocation, no
//! padding waste): timestamps, client ids, object ids, sizes, versions, and
//! classes each live in their own dense vector, so a replay pass walks six
//! cache-friendly streams at ~29 bytes/record. [`ReplayIter`] re-assembles
//! [`TraceRecord`]s on the fly, bit-identical to the generator stream
//! (asserted by tests and the determinism suite).
//!
//! [`TraceCache`] memoizes arenas process-wide, keyed by
//! `(spec fingerprint, seed)`, with byte-capped LRU eviction, so concurrent
//! experiment cells share one generation pass via `Arc`.

use crate::generate::TraceGenerator;
use crate::record::{ClientId, ObjectId, RequestClass, TraceRecord};
use crate::spec::WorkloadSpec;
use bh_simcore::{ByteSize, SimTime};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A `(spec, seed)` trace, generated once into dense columnar arrays.
#[derive(Debug, Clone)]
pub struct MaterializedTrace {
    spec: WorkloadSpec,
    seed: u64,
    times_us: Vec<u64>,
    clients: Vec<u32>,
    objects: Vec<u64>,
    sizes: Vec<u32>,
    versions: Vec<u32>,
    classes: Vec<u8>,
    distinct_objects: u64,
    distinct_clients: u32,
}

impl MaterializedTrace {
    /// Drains a fresh [`TraceGenerator`] for `(spec, seed)` into an arena.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`] or an object
    /// exceeds 4 GiB (the arena stores sizes as `u32`; every preset caps
    /// objects at 8 MiB).
    pub fn generate(spec: &WorkloadSpec, seed: u64) -> Self {
        let mut gen = TraceGenerator::new(spec, seed);
        let n = spec.requests as usize;
        let mut arena = MaterializedTrace {
            spec: spec.clone(),
            seed,
            times_us: Vec::with_capacity(n),
            clients: Vec::with_capacity(n),
            objects: Vec::with_capacity(n),
            sizes: Vec::with_capacity(n),
            versions: Vec::with_capacity(n),
            classes: Vec::with_capacity(n),
            distinct_objects: 0,
            distinct_clients: 0,
        };
        for r in gen.by_ref() {
            let size = r.size.as_bytes();
            assert!(
                u32::try_from(size).is_ok(),
                "object of {size} B overflows the u32 size column"
            );
            arena.times_us.push(r.time.as_micros());
            arena.clients.push(r.client.0);
            arena.objects.push(r.object.0);
            arena.sizes.push(size as u32);
            arena.versions.push(r.version);
            arena.classes.push(class_to_u8(r.class));
        }
        arena.distinct_objects = gen.distinct_objects();
        arena.distinct_clients = gen.distinct_clients();
        arena
    }

    /// Builds an arena from an explicit record stream — the entry point
    /// for scenario workloads (flash crowd, diurnal churn), whose
    /// generators wrap [`TraceGenerator`] rather than being one.
    /// Replaying the arena yields `records` verbatim.
    ///
    /// `spec` is the *base* workload the records were derived from (it
    /// labels the arena; scenario identity lives in the scenario spec's
    /// own fingerprint). The caller supplies the distinct counts its
    /// generator tracked.
    ///
    /// # Panics
    ///
    /// Panics if an object exceeds 4 GiB (the u32 size column).
    pub fn from_records(
        spec: &WorkloadSpec,
        seed: u64,
        records: impl IntoIterator<Item = TraceRecord>,
        distinct_objects: u64,
        distinct_clients: u32,
    ) -> Self {
        let mut arena = MaterializedTrace {
            spec: spec.clone(),
            seed,
            times_us: Vec::new(),
            clients: Vec::new(),
            objects: Vec::new(),
            sizes: Vec::new(),
            versions: Vec::new(),
            classes: Vec::new(),
            distinct_objects,
            distinct_clients,
        };
        for r in records {
            let size = r.size.as_bytes();
            assert!(
                u32::try_from(size).is_ok(),
                "object of {size} B overflows the u32 size column"
            );
            arena.times_us.push(r.time.as_micros());
            arena.clients.push(r.client.0);
            arena.objects.push(r.object.0);
            arena.sizes.push(size as u32);
            arena.versions.push(r.version);
            arena.classes.push(class_to_u8(r.class));
        }
        arena
    }

    /// The spec this trace was generated from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The seed this trace was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.times_us.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.times_us.is_empty()
    }

    /// Number of distinct objects the generator created.
    pub fn distinct_objects(&self) -> u64 {
        self.distinct_objects
    }

    /// Number of distinct client IDs the generator handed out.
    pub fn distinct_clients(&self) -> u32 {
        self.distinct_clients
    }

    /// Approximate resident size of the arena in bytes.
    pub fn approx_bytes(&self) -> u64 {
        (self.times_us.capacity() * 8
            + self.clients.capacity() * 4
            + self.objects.capacity() * 8
            + self.sizes.capacity() * 4
            + self.versions.capacity() * 4
            + self.classes.capacity()) as u64
    }

    /// The record at `index` (panics if out of range).
    pub fn get(&self, index: usize) -> TraceRecord {
        TraceRecord {
            time: SimTime::from_micros(self.times_us[index]),
            client: ClientId(self.clients[index]),
            object: ObjectId(self.objects[index]),
            size: ByteSize::from_bytes(self.sizes[index] as u64),
            version: self.versions[index],
            class: class_from_u8(self.classes[index]),
        }
    }

    /// Zero-copy replay: yields the generator's record stream verbatim.
    pub fn iter(&self) -> ReplayIter<'_> {
        ReplayIter {
            trace: self,
            next: 0,
        }
    }
}

impl<'a> IntoIterator for &'a MaterializedTrace {
    type Item = TraceRecord;
    type IntoIter = ReplayIter<'a>;

    fn into_iter(self) -> ReplayIter<'a> {
        self.iter()
    }
}

fn class_to_u8(c: RequestClass) -> u8 {
    match c {
        RequestClass::Cacheable => 0,
        RequestClass::Uncachable => 1,
        RequestClass::Error => 2,
    }
}

fn class_from_u8(b: u8) -> RequestClass {
    match b {
        0 => RequestClass::Cacheable,
        1 => RequestClass::Uncachable,
        _ => RequestClass::Error,
    }
}

/// Borrowing replay iterator over a [`MaterializedTrace`].
#[derive(Debug, Clone)]
pub struct ReplayIter<'a> {
    trace: &'a MaterializedTrace,
    next: usize,
}

impl Iterator for ReplayIter<'_> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if self.next >= self.trace.len() {
            return None;
        }
        let r = self.trace.get(self.next);
        self.next += 1;
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.trace.len() - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for ReplayIter<'_> {}

/// One memoization slot: filled at most once, shared by waiters.
type Slot = Arc<OnceLock<Arc<MaterializedTrace>>>;

#[derive(Default)]
struct CacheInner {
    slots: HashMap<(u64, u64), (Slot, u64)>,
    tick: u64,
    capacity_bytes: u64,
    generated: u64,
    hits: u64,
}

/// Counters describing the cache's effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCacheStats {
    /// Arenas currently resident.
    pub entries: usize,
    /// Approximate resident bytes across all arenas.
    pub resident_bytes: u64,
    /// Generation passes performed since process start (or last `clear`).
    pub generated: u64,
    /// Lookups served from a resident arena.
    pub hits: u64,
}

/// Process-wide memoizing cache of [`MaterializedTrace`] arenas.
///
/// Keyed by `(spec.fingerprint(), seed)`. Concurrent requests for the same
/// key generate once and share the result; distinct keys generate in
/// parallel without blocking each other. Total resident bytes are capped
/// (default 3 GiB, override with `BH_TRACE_CACHE_BYTES`); least-recently
/// used arenas are dropped first, though in-flight `Arc`s keep them alive
/// until their last user finishes.
pub struct TraceCache;

fn cache() -> &'static Mutex<CacheInner> {
    static CACHE: OnceLock<Mutex<CacheInner>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let capacity_bytes = std::env::var("BH_TRACE_CACHE_BYTES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3 * 1024 * 1024 * 1024);
        Mutex::new(CacheInner {
            capacity_bytes,
            ..CacheInner::default()
        })
    })
}

impl TraceCache {
    /// The arena for `(spec, seed)`, generating and memoizing it on first
    /// use.
    pub fn get(spec: &WorkloadSpec, seed: u64) -> Arc<MaterializedTrace> {
        let key = (spec.fingerprint(), seed);
        let (slot, fresh) = {
            let mut inner = cache().lock().expect("trace cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            match inner.slots.get_mut(&key) {
                Some((slot, last_used)) => {
                    *last_used = tick;
                    (Arc::clone(slot), false)
                }
                None => {
                    let slot: Slot = Arc::new(OnceLock::new());
                    inner.slots.insert(key, (Arc::clone(&slot), tick));
                    (slot, true)
                }
            }
        };
        let mut initialized_here = false;
        let trace = Arc::clone(slot.get_or_init(|| {
            initialized_here = true;
            Arc::new(MaterializedTrace::generate(spec, seed))
        }));
        {
            let mut inner = cache().lock().expect("trace cache poisoned");
            if initialized_here {
                inner.generated += 1;
            } else if !fresh {
                inner.hits += 1;
            }
            Self::evict_over_capacity(&mut inner, key);
        }
        trace
    }

    /// Drops LRU arenas until resident bytes fit the cap, never evicting
    /// `keep` (the entry the current caller just touched).
    fn evict_over_capacity(inner: &mut CacheInner, keep: (u64, u64)) {
        loop {
            let resident: u64 = inner
                .slots
                .values()
                .filter_map(|(s, _)| s.get())
                .map(|t| t.approx_bytes())
                .sum();
            if resident <= inner.capacity_bytes {
                return;
            }
            let victim = inner
                .slots
                .iter()
                .filter(|(k, (s, _))| **k != keep && s.get().is_some())
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    inner.slots.remove(&k);
                }
                None => return,
            }
        }
    }

    /// Drops every memoized arena and resets the counters.
    pub fn clear() {
        let mut inner = cache().lock().expect("trace cache poisoned");
        inner.slots.clear();
        inner.generated = 0;
        inner.hits = 0;
    }

    /// Current cache statistics.
    pub fn stats() -> TraceCacheStats {
        let inner = cache().lock().expect("trace cache poisoned");
        let resident_bytes = inner
            .slots
            .values()
            .filter_map(|(s, _)| s.get())
            .map(|t| t.approx_bytes())
            .sum();
        TraceCacheStats {
            entries: inner.slots.len(),
            resident_bytes,
            generated: inner.generated,
            hits: inner.hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(requests: u64) -> WorkloadSpec {
        WorkloadSpec::small().with_requests(requests)
    }

    #[test]
    fn replay_matches_generator_record_for_record() {
        let spec = small(5_000);
        let trace = MaterializedTrace::generate(&spec, 17);
        assert_eq!(trace.len(), 5_000);
        let mut gen = TraceGenerator::new(&spec, 17);
        let mut replayed = 0usize;
        for (i, r) in trace.iter().enumerate() {
            assert_eq!(r, gen.next().expect("generator shorter than arena"), "{i}");
            replayed += 1;
        }
        assert_eq!(replayed, 5_000);
        assert!(gen.next().is_none(), "generator longer than arena");
        assert_eq!(trace.distinct_objects(), {
            let mut g = TraceGenerator::new(&spec, 17);
            for _ in g.by_ref() {}
            g.distinct_objects()
        });
    }

    #[test]
    fn get_and_iter_agree() {
        let trace = MaterializedTrace::generate(&small(500), 3);
        for (i, r) in trace.iter().enumerate() {
            assert_eq!(r, trace.get(i));
        }
        assert_eq!(trace.iter().len(), 500);
    }

    #[test]
    fn class_round_trips() {
        for c in [
            RequestClass::Cacheable,
            RequestClass::Uncachable,
            RequestClass::Error,
        ] {
            assert_eq!(class_from_u8(class_to_u8(c)), c);
        }
    }

    #[test]
    fn arena_is_compact() {
        let trace = MaterializedTrace::generate(&small(10_000), 1);
        // 29 bytes/record of column data; allow slack for Vec growth.
        assert!(trace.approx_bytes() <= 10_000 * 29 * 2);
        assert!(trace.approx_bytes() >= 10_000 * 29);
    }

    #[test]
    fn cache_returns_same_arena_for_same_key() {
        let spec = small(1_000);
        let a = TraceCache::get(&spec, 991);
        let b = TraceCache::get(&spec, 991);
        assert!(Arc::ptr_eq(&a, &b), "same (spec, seed) must share an arena");
        let c = TraceCache::get(&spec, 992);
        assert!(!Arc::ptr_eq(&a, &c), "different seed, different arena");
        let d = TraceCache::get(&spec.clone().with_p_new(0.31), 991);
        assert!(!Arc::ptr_eq(&a, &d), "different spec, different arena");
    }

    #[test]
    fn cache_shares_across_threads() {
        let spec = small(2_000);
        let arenas: Vec<Arc<MaterializedTrace>> =
            bh_simcore::par::sweep(4, (0..8).collect(), |_, _: u64| TraceCache::get(&spec, 555));
        for a in &arenas[1..] {
            assert!(Arc::ptr_eq(&arenas[0], a));
        }
    }

    #[test]
    fn eviction_respects_capacity_and_keeps_current() {
        let mut inner = CacheInner {
            capacity_bytes: 1, // force eviction of everything evictable
            ..CacheInner::default()
        };
        let spec = small(200);
        for seed in 0..3u64 {
            let slot: Slot = Arc::new(OnceLock::new());
            slot.get_or_init(|| Arc::new(MaterializedTrace::generate(&spec, seed)));
            inner.tick += 1;
            let tick = inner.tick;
            inner.slots.insert((spec.fingerprint(), seed), (slot, tick));
        }
        let keep = (spec.fingerprint(), 2);
        TraceCache::evict_over_capacity(&mut inner, keep);
        assert_eq!(inner.slots.len(), 1, "only the kept entry survives");
        assert!(inner.slots.contains_key(&keep));
    }
}
