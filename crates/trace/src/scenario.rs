//! Synthetic scenario workloads: flash crowds and diurnal churn.
//!
//! The 1999 traces (Table 4) can't express the workloads a production
//! cache mesh actually faces. This module layers two scenario shapes
//! over the base [`WorkloadSpec`] model:
//!
//! * **Flash crowd** ([`FlashCrowdSpec`]): a cold object's request
//!   share ramps linearly from zero to a viral peak on a seeded
//!   schedule, then holds — the "slashdot" shape tiered-cache work
//!   (PAPERS.md) evaluates against. The scenario wraps the base
//!   generator and substitutes the hot object per-record, re-deriving
//!   size and version from [`ObjectAttrs`] so every component agrees
//!   on the object's identity.
//! * **Diurnal churn** ([`DiurnalChurnSpec`]): the base arrival process
//!   with its diurnal swing amplified, plus a seeded schedule of mesh
//!   join/leave events at 10–100× the paper-era baseline (roughly one
//!   membership change per node per week). The request stream and the
//!   churn schedule share a spec so replay and fault injection stay in
//!   lockstep.
//!
//! Both scenarios materialize through [`MaterializedTrace`], so replay
//! is byte-identical to fresh generation (asserted by proptests in
//! `tests/scenario_proptests.rs`) and the bench harness can share
//! arenas the way it does for the Table 4 presets.

use crate::generate::{ObjectAttrs, TraceGenerator};
use crate::materialize::MaterializedTrace;
use crate::record::{ObjectId, TraceRecord};
use crate::spec::WorkloadSpec;
use bh_simcore::rng::Xoshiro256;
use serde::{Deserialize, Serialize};

/// Object ids at or above this bound are reserved for scenario-injected
/// objects. The base generator numbers objects densely from zero and
/// can never reach `1 << 62` (that would need 2^62 requests), so
/// injected ids cannot collide with generated ones.
pub const SCENARIO_OBJECT_BASE: u64 = 1 << 62;

/// A flash-crowd scenario: one cold object goes viral on a seeded,
/// request-indexed schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowdSpec {
    /// The background workload the crowd rides on.
    pub base: WorkloadSpec,
    /// Request index at which the ramp begins (the object is cold — by
    /// construction never requested — before this).
    pub ramp_start: u64,
    /// Number of requests over which the hot object's share climbs
    /// linearly from 0 to `peak_share`; it holds at the peak after.
    pub ramp_len: u64,
    /// The hot object's share of requests at (and after) the peak, in
    /// `(0, 1)`.
    pub peak_share: f64,
}

impl FlashCrowdSpec {
    /// A small flash crowd over the [`WorkloadSpec::small`] background:
    /// the ramp starts a fifth of the way in, climbs for two fifths,
    /// and peaks at 40% of all requests.
    pub fn smoke() -> Self {
        let base = WorkloadSpec::small();
        FlashCrowdSpec {
            ramp_start: base.requests / 5,
            ramp_len: base.requests * 2 / 5,
            peak_share: 0.4,
            base,
        }
    }

    /// Validates the scenario parameters and the base spec.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        self.base.validate()?;
        if !(0.0..1.0).contains(&self.peak_share) || self.peak_share == 0.0 {
            return Err(format!(
                "peak_share must be in (0,1), got {}",
                self.peak_share
            ));
        }
        if self.ramp_len == 0 {
            return Err("ramp_len must be positive".into());
        }
        if self.ramp_start >= self.base.requests {
            return Err(format!(
                "ramp_start {} is past the end of the {}-request trace",
                self.ramp_start, self.base.requests
            ));
        }
        Ok(())
    }

    /// The hot object's scheduled request share at record index `i`:
    /// 0 before the ramp, linear during it, `peak_share` after. Monotone
    /// non-decreasing in `i` (pinned by a proptest).
    pub fn share_at(&self, i: u64) -> f64 {
        if i < self.ramp_start {
            return 0.0;
        }
        let into = (i - self.ramp_start).min(self.ramp_len);
        self.peak_share * into as f64 / self.ramp_len as f64
    }

    /// The viral object: the first reserved-range id that is a plain
    /// cacheable immutable object under the base spec, so the crowd
    /// measures propagation, not CGI/consistency side effects. A pure
    /// function of the base spec.
    pub fn hot_object(&self) -> ObjectId {
        (SCENARIO_OBJECT_BASE..)
            .map(ObjectId)
            .find(|&o| {
                let a = ObjectAttrs::derive(o, &self.base);
                !a.cgi && a.mod_rate_per_sec == 0.0
            })
            .expect("some reserved id must derive cacheable immutable attrs")
    }

    /// A 64-bit fingerprint over the base spec and every scenario
    /// parameter (the same contract as [`WorkloadSpec::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        let mut h =
            bh_simcore::rng::SplitMix64::new(self.base.fingerprint() ^ 0xF1A5_4C40_1D5E_ED01);
        let mut mix = |v: u64| {
            h = bh_simcore::rng::SplitMix64::new(h.next_u64() ^ v);
        };
        mix(self.ramp_start);
        mix(self.ramp_len);
        mix(self.peak_share.to_bits());
        h.next_u64()
    }

    /// A fresh streaming generator for `(self, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails [`FlashCrowdSpec::validate`].
    pub fn generate(&self, seed: u64) -> FlashCrowdGenerator {
        if let Err(msg) = self.validate() {
            panic!("invalid flash-crowd spec: {msg}");
        }
        let hot = self.hot_object();
        FlashCrowdGenerator {
            inner: TraceGenerator::new(&self.base, seed),
            spec: self.clone(),
            // An independent stream: the substitution coin must not
            // perturb the base generator's draws, so the background
            // traffic is the byte-identical base trace wherever the
            // crowd does not strike.
            rng: Xoshiro256::seed_from_u64(seed ^ 0xF1A5_4C40_0C0F_FEE5),
            hot,
            hot_attrs: ObjectAttrs::derive(hot, &self.base),
            index: 0,
            hot_requests: 0,
        }
    }

    /// Materializes the scenario into an arena; replaying it yields the
    /// generator stream verbatim.
    pub fn materialize(&self, seed: u64) -> MaterializedTrace {
        let mut gen = self.generate(seed);
        let records: Vec<TraceRecord> = gen.by_ref().collect();
        let distinct = gen.distinct_objects();
        let clients = gen.inner.distinct_clients();
        MaterializedTrace::from_records(&self.base, seed, records, distinct, clients)
    }
}

/// Streaming flash-crowd generator: the base stream with seeded
/// hot-object substitution. Deterministic in `(spec, seed)`.
#[derive(Debug, Clone)]
pub struct FlashCrowdGenerator {
    inner: TraceGenerator,
    spec: FlashCrowdSpec,
    rng: Xoshiro256,
    hot: ObjectId,
    hot_attrs: ObjectAttrs,
    index: u64,
    hot_requests: u64,
}

impl FlashCrowdGenerator {
    /// The viral object this run substitutes.
    pub fn hot_object(&self) -> ObjectId {
        self.hot
    }

    /// How many emitted records referenced the hot object so far.
    pub fn hot_requests(&self) -> u64 {
        self.hot_requests
    }

    /// Distinct objects emitted so far: the base generator's count plus
    /// the hot object once it has appeared.
    pub fn distinct_objects(&self) -> u64 {
        self.inner.distinct_objects() + u64::from(self.hot_requests > 0)
    }
}

impl Iterator for FlashCrowdGenerator {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let mut r = self.inner.next()?;
        let share = self.spec.share_at(self.index);
        self.index += 1;
        // Draw the coin unconditionally so the substitution stream
        // stays aligned with the record index whatever `share` is.
        let strike = self.rng.chance(share);
        if strike && r.class.is_cacheable() {
            r.object = self.hot;
            r.size = self.hot_attrs.size;
            r.version = self.hot_attrs.version_at(r.time);
            self.hot_requests += 1;
        }
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for FlashCrowdGenerator {}

/// One membership change in a churn schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Request offset at which the event fires (strictly less than the
    /// trace's request count).
    pub at_request: u64,
    /// The mesh node affected.
    pub node: u32,
    /// Leave or (re)join.
    pub kind: ChurnKind,
}

/// Whether a [`ChurnEvent`] removes or restores a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnKind {
    /// The node leaves (crash-stop, no goodbye).
    Leave,
    /// The node rejoins at its original coordinates.
    Join,
}

/// A diurnal-swing workload with join/leave churn at a multiple of the
/// paper-era baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalChurnSpec {
    /// The base workload; [`DiurnalChurnSpec::workload`] amplifies its
    /// diurnal swing.
    pub base: WorkloadSpec,
    /// Mesh nodes subject to churn.
    pub nodes: u32,
    /// Churn rate as a multiple of the baseline (one membership change
    /// per node per simulated week). The scenario harness targets the
    /// 10–100× band.
    pub churn_multiplier: f64,
}

impl DiurnalChurnSpec {
    /// A small diurnal-churn scenario over [`WorkloadSpec::small`]:
    /// 4 nodes at 50× the baseline churn rate.
    pub fn smoke() -> Self {
        DiurnalChurnSpec {
            base: WorkloadSpec::small(),
            nodes: 4,
            churn_multiplier: 50.0,
        }
    }

    /// Validates the scenario parameters and the base spec.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        self.base.validate()?;
        if self.nodes < 2 {
            return Err(format!("churn needs at least 2 nodes, got {}", self.nodes));
        }
        if !self.churn_multiplier.is_finite() || self.churn_multiplier <= 0.0 {
            return Err(format!(
                "churn_multiplier must be positive, got {}",
                self.churn_multiplier
            ));
        }
        Ok(())
    }

    /// The request workload: the base spec with its diurnal amplitude
    /// raised to 0.9 (just under the validation bound), so the swing
    /// between trough and peak arrival rate is 19:1.
    pub fn workload(&self) -> WorkloadSpec {
        let mut w = self.base.clone();
        w.diurnal_amplitude = 0.9;
        w
    }

    /// Expected leave/join pairs over the trace: baseline one change
    /// per node per week, times the multiplier, never less than one.
    pub fn churn_pairs(&self) -> u64 {
        let pairs = self.nodes as f64 * self.base.duration_days / 7.0 * self.churn_multiplier;
        (pairs.round() as u64).max(1)
    }

    /// A 64-bit fingerprint over the base spec and scenario parameters
    /// (the same contract as [`WorkloadSpec::fingerprint`]); covers the
    /// churn schedule too, which is a pure function of `(self, seed)`.
    pub fn fingerprint(&self) -> u64 {
        let mut h =
            bh_simcore::rng::SplitMix64::new(self.base.fingerprint() ^ 0xD1A7_C4A0_5EED_ED02);
        let mut mix = |v: u64| {
            h = bh_simcore::rng::SplitMix64::new(h.next_u64() ^ v);
        };
        mix(self.nodes as u64);
        mix(self.churn_multiplier.to_bits());
        h.next_u64()
    }

    /// The seeded churn schedule: `churn_pairs()` leave events at
    /// uniform request offsets, each followed by the node's rejoin
    /// after a hold of 1/20th of the trace (clamped to the end).
    /// Sorted by `(at_request, node, Leave-before-Join)`; a node's
    /// rejoin always follows its leave (pinned by proptests).
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails [`DiurnalChurnSpec::validate`].
    pub fn churn_schedule(&self, seed: u64) -> Vec<ChurnEvent> {
        if let Err(msg) = self.validate() {
            panic!("invalid diurnal-churn spec: {msg}");
        }
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xD1A7_C4A0_0C0F_FEE5);
        let requests = self.base.requests;
        let hold = (requests / 20).max(1);
        let mut events = Vec::new();
        for _ in 0..self.churn_pairs() {
            let node = rng.below(self.nodes as u64) as u32;
            // Leave early enough that the rejoin still lands inside the
            // trace, so every pair completes and the mesh ends whole.
            let leave_at = rng.below(requests.saturating_sub(hold).max(1));
            events.push(ChurnEvent {
                at_request: leave_at,
                node,
                kind: ChurnKind::Leave,
            });
            events.push(ChurnEvent {
                at_request: (leave_at + hold).min(requests - 1),
                node,
                kind: ChurnKind::Join,
            });
        }
        events.sort_by_key(|e| (e.at_request, e.node, matches!(e.kind, ChurnKind::Join)));
        events
    }

    /// Materializes the diurnal request workload into an arena;
    /// replaying it yields the generator stream verbatim.
    pub fn materialize(&self, seed: u64) -> MaterializedTrace {
        MaterializedTrace::generate(&self.workload(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_specs_validate() {
        FlashCrowdSpec::smoke().validate().expect("flash crowd");
        DiurnalChurnSpec::smoke().validate().expect("diurnal churn");
    }

    #[test]
    fn share_ramps_linearly_then_holds() {
        let s = FlashCrowdSpec::smoke();
        assert_eq!(s.share_at(0), 0.0);
        assert_eq!(s.share_at(s.ramp_start.saturating_sub(1)), 0.0);
        let mid = s.share_at(s.ramp_start + s.ramp_len / 2);
        assert!((mid - s.peak_share / 2.0).abs() < s.peak_share * 0.01);
        assert_eq!(s.share_at(s.ramp_start + s.ramp_len), s.peak_share);
        assert_eq!(s.share_at(u64::MAX), s.peak_share);
    }

    #[test]
    fn hot_object_is_cold_cacheable_and_fixed() {
        let s = FlashCrowdSpec::smoke();
        let hot = s.hot_object();
        assert!(hot.0 >= SCENARIO_OBJECT_BASE);
        let attrs = ObjectAttrs::derive(hot, &s.base);
        assert!(!attrs.cgi);
        assert_eq!(attrs.mod_rate_per_sec, 0.0);
        assert_eq!(hot, s.hot_object(), "hot object must be deterministic");
    }

    #[test]
    fn crowd_strikes_only_after_the_ramp_starts() {
        let s = FlashCrowdSpec::smoke();
        let hot = s.hot_object();
        let records: Vec<TraceRecord> = s.generate(7).collect();
        assert_eq!(records.len() as u64, s.base.requests);
        let first_hot = records
            .iter()
            .position(|r| r.object == hot)
            .expect("a 40%-peak crowd must strike at least once");
        assert!(first_hot as u64 >= s.ramp_start, "struck at {first_hot}");
        // After the peak the hot share of cacheable requests must be
        // near peak_share (only cacheable records are struck).
        let tail: Vec<&TraceRecord> = records[(s.ramp_start + s.ramp_len) as usize..]
            .iter()
            .filter(|r| r.is_cacheable())
            .collect();
        let hot_frac = tail.iter().filter(|r| r.object == hot).count() as f64 / tail.len() as f64;
        assert!(
            (hot_frac - s.peak_share).abs() < 0.05,
            "tail hot share {hot_frac} vs peak {}",
            s.peak_share
        );
    }

    #[test]
    fn crowd_leaves_the_background_intact() {
        let s = FlashCrowdSpec::smoke();
        let hot = s.hot_object();
        let base: Vec<TraceRecord> = TraceGenerator::new(&s.base, 11).collect();
        let crowd: Vec<TraceRecord> = s.generate(11).collect();
        for (b, c) in base.iter().zip(&crowd) {
            if c.object != hot {
                assert_eq!(b, c, "non-struck records must be the base stream");
            } else {
                assert_eq!(b.time, c.time);
                assert_eq!(b.client, c.client);
                assert_eq!(b.class, c.class);
            }
        }
    }

    #[test]
    fn churn_schedule_is_sorted_paired_and_seed_deterministic() {
        let s = DiurnalChurnSpec::smoke();
        let a = s.churn_schedule(3);
        let b = s.churn_schedule(3);
        let c = s.churn_schedule(4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len() as u64, 2 * s.churn_pairs());
        for w in a.windows(2) {
            assert!(w[0].at_request <= w[1].at_request, "must be sorted");
        }
        for e in &a {
            assert!(e.node < s.nodes);
            assert!(e.at_request < s.base.requests);
        }
    }

    #[test]
    fn churn_pairs_scale_with_the_multiplier() {
        let mut s = DiurnalChurnSpec::smoke();
        s.churn_multiplier = 10.0;
        let low = s.churn_pairs();
        s.churn_multiplier = 100.0;
        let high = s.churn_pairs();
        let ratio = high as f64 / low as f64;
        assert!((ratio - 10.0).abs() < 1.0, "10× multiplier gave {ratio}×");
    }

    #[test]
    fn fingerprints_separate_scenarios_from_bases() {
        let f = FlashCrowdSpec::smoke();
        let d = DiurnalChurnSpec::smoke();
        assert_ne!(f.fingerprint(), f.base.fingerprint());
        assert_ne!(d.fingerprint(), d.base.fingerprint());
        assert_ne!(f.fingerprint(), d.fingerprint());
        let mut f2 = f.clone();
        f2.peak_share = 0.5;
        assert_ne!(f.fingerprint(), f2.fingerprint());
    }

    #[test]
    fn scenario_specs_round_trip_through_serde() {
        let f = FlashCrowdSpec::smoke();
        let json = serde_json::to_string(&f).expect("serialize");
        let back: FlashCrowdSpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(f, back);
        let d = DiurnalChurnSpec::smoke();
        let json = serde_json::to_string(&d).expect("serialize");
        let back: DiurnalChurnSpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(d, back);
    }
}
