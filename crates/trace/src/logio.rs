//! Trace serialization: JSON-lines and a Squid-style access-log format.
//!
//! The paper's simulator consumes proxy access logs. We support two
//! interchange formats so that externally captured traces can be replayed
//! and synthetic traces can be archived:
//!
//! * **JSON lines** — one [`TraceRecord`] per line, lossless;
//! * **Squid-style log** — `epoch_ms duration client code/status bytes
//!   method url` — the common denominator of real proxy logs; lossy
//!   (version information is re-derived on load).

use crate::record::{ClientId, ObjectId, RequestClass, TraceRecord};
use bh_simcore::{ByteSize, SimTime};
use std::io::{self, BufRead, Write};

/// Writes records as JSON lines.
///
/// # Errors
///
/// Propagates I/O errors from the writer and serialization failures.
pub fn write_jsonl<W: Write>(
    mut w: W,
    records: impl IntoIterator<Item = TraceRecord>,
) -> io::Result<()> {
    for r in records {
        let line = serde_json::to_string(&r).map_err(io::Error::other)?;
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Reads records from JSON lines, in order.
///
/// # Errors
///
/// Fails on I/O errors or malformed lines (with the line number).
pub fn read_jsonl<R: BufRead>(r: R) -> io::Result<Vec<TraceRecord>> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let rec: TraceRecord = serde_json::from_str(&line)
            .map_err(|e| io::Error::other(format!("line {}: {e}", i + 1)))?;
        out.push(rec);
    }
    Ok(out)
}

/// Writes records in a Squid-1.x-style access-log format:
///
/// ```text
/// <epoch_ms> <elapsed_ms> <client> <code>/<status> <bytes> <method> <url>
/// ```
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_squid_log<W: Write>(
    mut w: W,
    records: impl IntoIterator<Item = TraceRecord>,
) -> io::Result<()> {
    for r in records {
        let (code, status, method) = match r.class {
            RequestClass::Cacheable => ("TCP_MISS", 200, "GET"),
            RequestClass::Uncachable => ("TCP_CLIENT_REFRESH", 200, "GET"),
            RequestClass::Error => ("TCP_MISS", 500, "GET"),
        };
        writeln!(
            w,
            "{} {} client{} {}/{} {} {} {}",
            r.time.as_micros() / 1000,
            0,
            r.client.0,
            code,
            status,
            r.size.as_bytes(),
            method,
            r.object.synthetic_url(),
        )?;
    }
    Ok(())
}

/// Parses a Squid-style access log produced by [`write_squid_log`] (or a
/// real proxy, as long as the seven leading fields match).
///
/// URL → [`ObjectId`] mapping is assigned densely in order of first
/// appearance, exactly like the synthetic generator numbers objects.
///
/// # Errors
///
/// Fails on I/O errors or lines with fewer than seven fields / unparsable
/// numbers (with the line number).
pub fn read_squid_log<R: BufRead>(r: R) -> io::Result<Vec<TraceRecord>> {
    let mut out = Vec::new();
    let mut url_ids: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let mut f = line.split_whitespace();
        let err = |what: &str| io::Error::other(format!("line {}: {what}", i + 1));
        let epoch_ms: u64 = f
            .next()
            .ok_or_else(|| err("missing timestamp"))?
            .parse()
            .map_err(|_| err("bad timestamp"))?;
        let _elapsed = f.next().ok_or_else(|| err("missing elapsed"))?;
        let client_field = f.next().ok_or_else(|| err("missing client"))?;
        let code_status = f.next().ok_or_else(|| err("missing code/status"))?;
        let bytes: u64 = f
            .next()
            .ok_or_else(|| err("missing bytes"))?
            .parse()
            .map_err(|_| err("bad bytes"))?;
        let method = f.next().ok_or_else(|| err("missing method"))?;
        let url = f.next().ok_or_else(|| err("missing url"))?;

        let client_num: u32 = client_field
            .trim_start_matches(|c: char| !c.is_ascii_digit())
            .parse()
            .unwrap_or_else(|_| {
                // Hash arbitrary client identifiers (e.g. IP addresses).
                (bh_md5::md5(client_field.as_bytes()).low64() & 0x7FFF_FFFF) as u32
            });
        let status: u32 = code_status
            .rsplit('/')
            .next()
            .and_then(|s| s.parse().ok())
            .unwrap_or(200);

        let next_id = url_ids.len() as u64;
        let object = ObjectId(*url_ids.entry(url.to_string()).or_insert(next_id));

        let class = if status >= 400 {
            RequestClass::Error
        } else if method != "GET" || url.contains("cgi") || url.contains('?') {
            RequestClass::Uncachable
        } else {
            RequestClass::Cacheable
        };

        out.push(TraceRecord {
            time: SimTime::from_millis(epoch_ms),
            client: ClientId(client_num),
            object,
            size: ByteSize::from_bytes(bytes),
            version: 0,
            class,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::TraceGenerator;
    use crate::spec::WorkloadSpec;

    fn sample_records(n: u64) -> Vec<TraceRecord> {
        TraceGenerator::new(&WorkloadSpec::small().with_requests(n), 42).collect()
    }

    #[test]
    fn jsonl_round_trip_lossless() {
        let records = sample_records(500);
        let mut buf = Vec::new();
        write_jsonl(&mut buf, records.iter().copied()).expect("write");
        let back = read_jsonl(&buf[..]).expect("read");
        assert_eq!(records, back);
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let records = sample_records(3);
        let mut buf = Vec::new();
        write_jsonl(&mut buf, records.iter().copied()).expect("write");
        buf.extend_from_slice(b"\n\n");
        let back = read_jsonl(&buf[..]).expect("read");
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn jsonl_reports_bad_line_number() {
        let err = read_jsonl("not json\n".as_bytes()).expect_err("must fail");
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn squid_log_round_trip_preserves_structure() {
        let records = sample_records(500);
        let mut buf = Vec::new();
        write_squid_log(&mut buf, records.iter().copied()).expect("write");
        let back = read_squid_log(&buf[..]).expect("read");
        assert_eq!(back.len(), records.len());
        for (orig, parsed) in records.iter().zip(&back) {
            assert_eq!(orig.time.as_micros() / 1000, parsed.time.as_micros() / 1000);
            assert_eq!(orig.client, parsed.client);
            assert_eq!(orig.size, parsed.size);
        }
        // Object identity is preserved up to renumbering: same repeat structure.
        let orig_repeats = records
            .iter()
            .filter(|r| r.object.0 < records.len() as u64)
            .count();
        assert_eq!(orig_repeats, records.len());
        let distinct_orig: std::collections::HashSet<_> =
            records.iter().map(|r| r.object).collect();
        let distinct_back: std::collections::HashSet<_> = back.iter().map(|r| r.object).collect();
        assert_eq!(distinct_orig.len(), distinct_back.len());
    }

    #[test]
    fn squid_parser_handles_real_style_lines() {
        let log =
            "847167163000 1200 10.0.0.3 TCP_MISS/200 4717 GET http://www.example.com/a.html\n\
                   847167164000 90 10.0.0.3 TCP_HIT/200 4717 GET http://www.example.com/a.html\n\
                   847167165000 300 10.0.0.4 TCP_MISS/404 512 GET http://www.example.com/missing\n\
                   847167166000 50 10.0.0.5 TCP_MISS/200 900 POST http://www.example.com/form\n";
        let recs = read_squid_log(log.as_bytes()).expect("parse");
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].object, recs[1].object, "same URL same object");
        assert_eq!(recs[0].client, recs[1].client);
        assert_eq!(recs[2].class, RequestClass::Error);
        assert_eq!(
            recs[3].class,
            RequestClass::Uncachable,
            "POST is uncachable"
        );
    }

    #[test]
    fn squid_parser_flags_query_strings_uncachable() {
        let log = "1000 1 c1 TCP_MISS/200 100 GET http://x.test/cgi-bin/s?q=1\n";
        let recs = read_squid_log(log.as_bytes()).expect("parse");
        assert_eq!(recs[0].class, RequestClass::Uncachable);
    }

    #[test]
    fn squid_parser_rejects_garbage_with_location() {
        let err = read_squid_log("only three fields here\n".as_bytes()).expect_err("must fail");
        assert!(err.to_string().contains("line 1"));
    }
}
