//! Aggregate trace characteristics (the paper's Table 4).

use crate::record::{RequestClass, TraceRecord};
use bh_simcore::{ByteSize, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Summary statistics of a trace, mirroring Table 4 plus the request-class
/// mix used by Figure 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Number of requests.
    pub accesses: u64,
    /// Number of distinct client IDs observed.
    pub clients: u64,
    /// Number of distinct URLs observed.
    pub distinct_urls: u64,
    /// Trace duration (first to last record).
    pub duration_days: f64,
    /// Total bytes requested.
    pub total_bytes: ByteSize,
    /// Mean object size over requests.
    pub mean_request_bytes: f64,
    /// Fraction of requests that are uncachable.
    pub uncachable_fraction: f64,
    /// Fraction of requests that are errors.
    pub error_fraction: f64,
    /// Distinct/total ratio (the global compulsory-miss rate of an infinite
    /// shared cache, before communication misses).
    pub distinct_ratio: f64,
}

impl TraceSummary {
    /// Computes the summary in one pass over the records.
    pub fn compute(records: impl IntoIterator<Item = TraceRecord>) -> Self {
        let mut accesses = 0u64;
        let mut clients = HashSet::new();
        let mut urls = HashSet::new();
        let mut first: Option<SimTime> = None;
        let mut last = SimTime::ZERO;
        let mut total_bytes = 0u64;
        let mut uncachable = 0u64;
        let mut errors = 0u64;
        for r in records {
            accesses += 1;
            clients.insert(r.client);
            urls.insert(r.object);
            first.get_or_insert(r.time);
            last = last.max(r.time);
            total_bytes += r.size.as_bytes();
            match r.class {
                RequestClass::Uncachable => uncachable += 1,
                RequestClass::Error => errors += 1,
                RequestClass::Cacheable => {}
            }
        }
        let duration = last.saturating_since(first.unwrap_or(SimTime::ZERO));
        let n = accesses.max(1) as f64;
        TraceSummary {
            accesses,
            clients: clients.len() as u64,
            distinct_urls: urls.len() as u64,
            duration_days: duration.as_secs_f64() / 86_400.0,
            total_bytes: ByteSize::from_bytes(total_bytes),
            mean_request_bytes: total_bytes as f64 / n,
            uncachable_fraction: uncachable as f64 / n,
            error_fraction: errors as f64 / n,
            distinct_ratio: urls.len() as f64 / n,
        }
    }

    /// Renders a Table 4-style row: `clients, accesses, distinct URLs, days`.
    pub fn table4_row(&self, name: &str) -> String {
        format!(
            "{:<10} {:>9} {:>12} {:>14} {:>7.1}",
            name, self.clients, self.accesses, self.distinct_urls, self.duration_days
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::TraceGenerator;
    use crate::spec::WorkloadSpec;

    #[test]
    fn summary_counts_match_generator() {
        let spec = WorkloadSpec::small().with_requests(10_000);
        let mut gen = TraceGenerator::new(&spec, 11);
        let records: Vec<_> = gen.by_ref().collect();
        let s = TraceSummary::compute(records.iter().copied());
        assert_eq!(s.accesses, 10_000);
        assert_eq!(s.distinct_urls, gen.distinct_objects());
        assert!(s.clients <= spec.clients as u64);
        assert!(s.duration_days > 0.0);
        assert!((s.distinct_ratio - spec.p_new).abs() < 0.05);
    }

    #[test]
    fn summary_of_empty_trace() {
        let s = TraceSummary::compute(std::iter::empty());
        assert_eq!(s.accesses, 0);
        assert_eq!(s.distinct_urls, 0);
        assert_eq!(s.total_bytes, ByteSize::ZERO);
    }

    #[test]
    fn class_fractions_sum_below_one() {
        let spec = WorkloadSpec::small().with_requests(5_000);
        let s = TraceSummary::compute(TraceGenerator::new(&spec, 12));
        assert!(s.uncachable_fraction + s.error_fraction < 0.5);
        assert!(s.uncachable_fraction > 0.0);
        assert!(s.error_fraction > 0.0);
    }

    #[test]
    fn table4_row_contains_fields() {
        let spec = WorkloadSpec::small().with_requests(1_000);
        let s = TraceSummary::compute(TraceGenerator::new(&spec, 13));
        let row = s.table4_row("Test");
        assert!(row.contains("Test"));
        assert!(row.contains("1000"));
    }
}
