//! Web workload substrate for the Beyond Hierarchies reproduction.
//!
//! The paper evaluates its cache designs on three large proxy traces — DEC,
//! Berkeley Home-IP, and Prodigy (Table 4). Those traces are proprietary and
//! no longer distributed, so this crate provides *synthetic generators*
//! calibrated to the traces' published aggregate characteristics (see
//! `DESIGN.md` §1, substitution 1):
//!
//! * client population, request count, and distinct-URL count (Table 4);
//! * compulsory-miss fraction (≈ distinct/total; the paper reports 19% for
//!   DEC) via a preferential-attachment reference process;
//! * hierarchical sharing (L1 < L2 < L3 hit rates, Figure 3) via per-group
//!   locality in the reference process;
//! * heavy-tailed object sizes (≈10 KB mean, log-normal);
//! * object modifications (communication misses), uncachable requests
//!   (CGI / non-GET / cache-control), and error replies (Figure 2 classes);
//! * a diurnal arrival process and per-client activity skew;
//! * dynamic client-ID binding for Prodigy (clients are dial-up sessions).
//!
//! Traces stream: [`TraceGenerator`] is an iterator of [`TraceRecord`]s and
//! is deterministic in `(spec, seed)`, so multi-pass algorithms (e.g. the
//! ideal-push upper bound) simply re-instantiate it.
//!
//! # Examples
//!
//! ```
//! use bh_trace::{TraceGenerator, WorkloadSpec};
//!
//! let spec = WorkloadSpec::dec().scaled(0.001);
//! let records: Vec<_> = TraceGenerator::new(&spec, 42).collect();
//! assert_eq!(records.len() as u64, spec.requests);
//! // Deterministic in the seed:
//! let again: Vec<_> = TraceGenerator::new(&spec, 42).collect();
//! assert_eq!(records, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
pub mod logio;
pub mod materialize;
pub mod record;
pub mod scenario;
pub mod spec;
pub mod summary;
pub mod transform;

pub use generate::TraceGenerator;
pub use materialize::{MaterializedTrace, TraceCache, TraceCacheStats};
pub use record::{ClientId, ObjectId, RequestClass, TraceRecord};
pub use scenario::{ChurnEvent, ChurnKind, DiurnalChurnSpec, FlashCrowdGenerator, FlashCrowdSpec};
pub use spec::{TraceName, WorkloadSpec};
pub use summary::TraceSummary;
