//! Trace records and identifiers.

use bh_simcore::{ByteSize, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A client identity, as seen by the proxy (Table 4's "Client ID").
///
/// For the DEC and Berkeley workloads the ID is stable for the whole trace;
/// for Prodigy, IDs are dynamically bound at login, so the ID space grows
/// over the trace even though the concurrent population is smaller.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(pub u32);

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client#{}", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client#{}", self.0)
    }
}

/// A distinct web object (URL), numbered densely in order of first
/// appearance in the trace.
///
/// The simulator works with dense indices; wherever the architecture needs
/// the paper's 64-bit MD5-derived object key (hint records, Plaxton routing),
/// use [`ObjectId::key`], a SplitMix64-mixed stand-in with the same
/// uniform-distribution property as an MD5 prefix.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// The 64-bit well-mixed key for this object (stand-in for the 8-byte
    /// MD5-of-URL prefix of §3.2.1).
    pub fn key(self) -> u64 {
        // SplitMix64 finalizer: bijective, so distinct objects get distinct keys.
        let mut z = self.0.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// The synthetic URL this object stands for (used by the prototype and
    /// log output; the simulator never materializes it).
    pub fn synthetic_url(self) -> String {
        format!(
            "http://origin-{:02}.synth.example/obj/{}",
            self.0 % 64,
            self.0
        )
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// The request class, following the miss taxonomy of Figure 2.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum RequestClass {
    /// An ordinary cacheable GET.
    #[default]
    Cacheable,
    /// The cache must contact the server (non-GET, CGI, or cache-control);
    /// never served from cache.
    Uncachable,
    /// The request generates an error reply.
    Error,
}

impl RequestClass {
    /// Whether a cache is allowed to serve this request from a stored copy.
    pub fn is_cacheable(self) -> bool {
        matches!(self, RequestClass::Cacheable)
    }
}

/// One trace record: a client request observed at the proxy at a point in
/// simulated time.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TraceRecord {
    /// When the request arrives.
    pub time: SimTime,
    /// Which client issued it.
    pub client: ClientId,
    /// The object requested.
    pub object: ObjectId,
    /// The object's transfer size.
    pub size: ByteSize,
    /// The object's version at request time. A version bump since the last
    /// access invalidates cached copies (strong consistency, §2.2.1) and the
    /// re-fetch is a *communication* miss.
    pub version: u32,
    /// Cacheability class.
    pub class: RequestClass,
}

impl TraceRecord {
    /// Whether this record can produce a cache hit at all.
    pub fn is_cacheable(&self) -> bool {
        self.class.is_cacheable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_keys_are_distinct_and_mixed() {
        let a = ObjectId(0).key();
        let b = ObjectId(1).key();
        assert_ne!(a, b);
        // SplitMix64 is bijective; a few million sequential ids cannot collide,
        // sample a few to make sure keys do not preserve ordering trivially.
        let keys: Vec<u64> = (0..100).map(|i| ObjectId(i).key()).collect();
        let sorted = {
            let mut k = keys.clone();
            k.sort_unstable();
            k
        };
        assert_ne!(keys, sorted, "keys should not be monotone in the id");
    }

    #[test]
    fn synthetic_urls_unique_per_object() {
        assert_ne!(ObjectId(1).synthetic_url(), ObjectId(2).synthetic_url());
        assert!(ObjectId(7).synthetic_url().starts_with("http://"));
    }

    #[test]
    fn request_class_cacheability() {
        assert!(RequestClass::Cacheable.is_cacheable());
        assert!(!RequestClass::Uncachable.is_cacheable());
        assert!(!RequestClass::Error.is_cacheable());
        assert_eq!(RequestClass::default(), RequestClass::Cacheable);
    }

    #[test]
    fn record_serde_round_trip() {
        let r = TraceRecord {
            time: SimTime::from_millis(1500),
            client: ClientId(7),
            object: ObjectId(99),
            size: ByteSize::from_kb(8),
            version: 2,
            class: RequestClass::Cacheable,
        };
        let json = serde_json::to_string(&r).expect("serialize");
        let back: TraceRecord = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(r, back);
    }
}
