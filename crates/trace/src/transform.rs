//! Trace transformations: the standard toolkit for slicing and reshaping
//! request streams before simulation.
//!
//! All transforms are lazy iterator adapters so multi-gigabyte traces never
//! materialize:
//!
//! * [`clients`] — keep only requests from a client subset (e.g. replay one
//!   L1 group's traffic against a single prototype node);
//! * [`sample_clients`] — deterministic 1-in-N *client* sampling, the
//!   standard way to shrink a proxy trace without destroying per-client
//!   locality (sampling requests instead would);
//! * [`time_window`] — keep a `[from, until)` slice (e.g. peak hours);
//! * [`cacheable_only`] — drop uncachable/error records (§2.2.2's rule);
//! * [`renumber_objects`] — densify object IDs after filtering so
//!   downstream tables stay small.

use crate::record::{ObjectId, TraceRecord};
use bh_simcore::SimTime;
use std::collections::HashMap;

/// Keeps only records whose client satisfies `keep`.
pub fn clients<I>(
    records: I,
    keep: impl Fn(crate::record::ClientId) -> bool,
) -> impl Iterator<Item = TraceRecord>
where
    I: IntoIterator<Item = TraceRecord>,
{
    records.into_iter().filter(move |r| keep(r.client))
}

/// Deterministic 1-in-`n` client sampling: a client is kept iff a hash of
/// its ID falls in the sampled residue. Preserves each kept client's full
/// request stream (and therefore its locality), unlike request sampling.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sample_clients<I>(records: I, n: u32, salt: u64) -> impl Iterator<Item = TraceRecord>
where
    I: IntoIterator<Item = TraceRecord>,
{
    assert!(n > 0, "sampling modulus must be positive");
    records.into_iter().filter(move |r| {
        let mut h = bh_simcore::rng::SplitMix64::new(r.client.0 as u64 ^ salt);
        h.next_u64().is_multiple_of(n as u64)
    })
}

/// Keeps records with `from <= time < until`.
pub fn time_window<I>(
    records: I,
    from: SimTime,
    until: SimTime,
) -> impl Iterator<Item = TraceRecord>
where
    I: IntoIterator<Item = TraceRecord>,
{
    records
        .into_iter()
        .filter(move |r| r.time >= from && r.time < until)
}

/// Drops uncachable and error records (the paper excludes them from cache
/// statistics, §2.2.2).
pub fn cacheable_only<I>(records: I) -> impl Iterator<Item = TraceRecord>
where
    I: IntoIterator<Item = TraceRecord>,
{
    records.into_iter().filter(|r| r.is_cacheable())
}

/// Renumbers objects densely in order of first appearance. Useful after
/// filtering, when the surviving stream references a sparse subset of the
/// original ID space.
pub fn renumber_objects<I>(records: I) -> impl Iterator<Item = TraceRecord>
where
    I: IntoIterator<Item = TraceRecord>,
{
    let mut map: HashMap<ObjectId, u64> = HashMap::new();
    records.into_iter().map(move |mut r| {
        let next = map.len() as u64;
        let id = *map.entry(r.object).or_insert(next);
        r.object = ObjectId(id);
        r
    })
}

/// Shifts all timestamps so the first record lands at `SimTime::ZERO`
/// (useful after [`time_window`]). Buffers nothing: the first record fixes
/// the offset.
pub fn rebase_time<I>(records: I) -> impl Iterator<Item = TraceRecord>
where
    I: IntoIterator<Item = TraceRecord>,
{
    let mut offset: Option<SimTime> = None;
    records.into_iter().map(move |mut r| {
        let base = *offset.get_or_insert(r.time);
        r.time = SimTime::from_micros(r.time.as_micros() - base.as_micros());
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::TraceGenerator;
    use crate::record::{ClientId, RequestClass};
    use crate::spec::WorkloadSpec;

    fn records() -> Vec<TraceRecord> {
        TraceGenerator::new(&WorkloadSpec::small().with_requests(5_000), 21).collect()
    }

    #[test]
    fn clients_filter_keeps_only_matching() {
        let out: Vec<_> = clients(records(), |c| c.0 < 100).collect();
        assert!(!out.is_empty());
        assert!(out.iter().all(|r| r.client.0 < 100));
    }

    #[test]
    fn sample_clients_is_deterministic_and_proportional() {
        let all = records();
        let a: Vec<_> = sample_clients(all.clone(), 4, 9).collect();
        let b: Vec<_> = sample_clients(all.clone(), 4, 9).collect();
        assert_eq!(a, b, "same salt, same sample");
        let distinct_all: std::collections::HashSet<_> = all.iter().map(|r| r.client).collect();
        let distinct_sample: std::collections::HashSet<_> = a.iter().map(|r| r.client).collect();
        let frac = distinct_sample.len() as f64 / distinct_all.len() as f64;
        assert!(
            (0.15..0.40).contains(&frac),
            "sampled client fraction {frac}"
        );
        // Every kept client keeps its whole stream.
        for c in &distinct_sample {
            let orig = all.iter().filter(|r| r.client == *c).count();
            let kept = a.iter().filter(|r| r.client == *c).count();
            assert_eq!(orig, kept);
        }
    }

    #[test]
    fn different_salt_different_sample() {
        let all = records();
        let a: std::collections::HashSet<_> = sample_clients(all.clone(), 4, 1)
            .map(|r| r.client)
            .collect();
        let b: std::collections::HashSet<_> = sample_clients(all, 4, 2).map(|r| r.client).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn time_window_and_rebase() {
        let all = records();
        let mid = all[all.len() / 2].time;
        let end = all[all.len() - 1].time;
        let sliced: Vec<_> = rebase_time(time_window(all, mid, end)).collect();
        assert!(!sliced.is_empty());
        assert_eq!(sliced[0].time, SimTime::ZERO);
        // Order and relative spacing preserved.
        for w in sliced.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn cacheable_only_drops_the_rest() {
        let out: Vec<_> = cacheable_only(records()).collect();
        assert!(out.iter().all(|r| r.class == RequestClass::Cacheable));
        assert!(out.len() < 5_000, "some records must have been dropped");
    }

    #[test]
    fn renumber_objects_densifies() {
        let filtered: Vec<_> =
            renumber_objects(clients(records(), |c: ClientId| c.0.is_multiple_of(7))).collect();
        let distinct: std::collections::HashSet<_> = filtered.iter().map(|r| r.object).collect();
        let max_id = filtered.iter().map(|r| r.object.0).max().unwrap_or(0);
        assert_eq!(
            max_id + 1,
            distinct.len() as u64,
            "IDs must be dense from 0"
        );
        // Repeat structure preserved: same object → same new ID.
        let a = &filtered[0];
        for r in &filtered {
            if r.object == a.object {
                assert_eq!(r.object.0, a.object.0);
            }
        }
    }

    #[test]
    fn transforms_compose() {
        let out: Vec<_> =
            renumber_objects(cacheable_only(sample_clients(records(), 2, 3))).collect();
        assert!(!out.is_empty());
    }
}
