//! Synthetic trace generation.
//!
//! The generator reproduces the *statistics* the simulator consumes rather
//! than any particular byte stream: who references what, when, how large the
//! object is, and when it was last modified. The reference process is a
//! bounded-memory preferential-attachment ("Chinese restaurant"-style)
//! process with a per-L1-group locality bias:
//!
//! 1. with probability `p_new`, the request references a brand-new URL
//!    (globally compulsory — this pins the distinct/total ratio of Table 4);
//! 2. otherwise, with probability `p_local`, it re-references an object drawn
//!    uniformly from the client's L1 group's recent-access window;
//! 3. otherwise it re-references an object drawn uniformly from the global
//!    recent-access window.
//!
//! Drawing uniformly from *accesses* (not objects) is preferential
//! attachment, which yields the Zipf-like popularity observed in web traces;
//! the bounded windows add temporal locality; the group bias reproduces the
//! L1 < L2 < L3 sharing gradient of Figure 3.

use crate::record::{ClientId, ObjectId, RequestClass, TraceRecord};
use crate::spec::WorkloadSpec;
use bh_simcore::rng::{SplitMix64, Xoshiro256};
use bh_simcore::{ByteSize, SimTime};

/// Deterministic per-object attributes, derived from the object's key so
/// they never need to be stored: every component that sees the object
/// derives the same size, cacheability, and modification rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectAttrs {
    /// Transfer size.
    pub size: ByteSize,
    /// Whether the object is dynamically generated (CGI): always uncachable.
    pub cgi: bool,
    /// Modifications per second (0.0 for immutable objects).
    pub mod_rate_per_sec: f64,
}

impl ObjectAttrs {
    /// Derives the attributes of `object` under `spec`.
    pub fn derive(object: ObjectId, spec: &WorkloadSpec) -> Self {
        let mut rng = SplitMix64::new(object.key() ^ 0xA076_1D64_78BD_642F);
        let u_size = next_f64(&mut rng);
        let u_size2 = next_f64(&mut rng);
        let u_cgi = next_f64(&mut rng);
        let u_mut = next_f64(&mut rng);
        let u_rate = next_f64(&mut rng);

        // Log-normal size via Box–Muller on two deterministic uniforms.
        let z = (-2.0 * (1.0 - u_size).ln()).sqrt() * (std::f64::consts::TAU * u_size2).cos();
        let mu = spec.median_object_bytes.ln();
        let raw = (mu + spec.size_sigma * z).exp();
        let size = raw.clamp(128.0, spec.max_object_bytes as f64) as u64;

        let cgi = u_cgi < spec.p_cgi_object;
        let mod_rate_per_sec = if u_mut < spec.p_mutable_object {
            // Log-uniform spread of one decade around the mean interval.
            let interval_hours = spec.mean_mod_interval_hours * 10f64.powf(u_rate * 2.0 - 1.0);
            1.0 / (interval_hours * 3600.0)
        } else {
            0.0
        };
        ObjectAttrs {
            size: ByteSize::from_bytes(size),
            cgi,
            mod_rate_per_sec,
        }
    }

    /// The object's version at simulated time `t` (number of modifications
    /// since trace start). Monotone in `t`.
    pub fn version_at(&self, t: SimTime) -> u32 {
        (t.as_secs_f64() * self.mod_rate_per_sec) as u32
    }
}

fn next_f64(rng: &mut SplitMix64) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Fixed-capacity ring of recent accesses (object ids), supporting uniform
/// sampling over its current contents.
#[derive(Debug, Clone)]
struct HistoryRing {
    buf: Vec<u64>,
    cap: usize,
    next: usize,
}

impl HistoryRing {
    fn new(cap: usize) -> Self {
        HistoryRing {
            buf: Vec::with_capacity(cap.min(1 << 20)),
            cap,
            next: 0,
        }
    }

    fn push(&mut self, id: u64) {
        if self.buf.len() < self.cap {
            self.buf.push(id);
        } else {
            self.buf[self.next] = id;
            self.next = (self.next + 1) % self.cap;
        }
    }

    fn sample(&self, rng: &mut Xoshiro256) -> Option<u64> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.buf[rng.below(self.buf.len() as u64) as usize])
        }
    }
}

/// Weighted client sampler (Zipf-skewed activity over a shuffled rank order).
#[derive(Debug, Clone)]
struct ClientSampler {
    cumulative: Vec<f64>,
}

impl ClientSampler {
    fn new(clients: u32, alpha: f64, rng: &mut Xoshiro256) -> Self {
        let n = clients as usize;
        // Assign ranks randomly so client index does not correlate with
        // activity (clients of one L1 group must not all be the hot ones).
        let mut perm: Vec<u32> = (0..clients).collect();
        for i in (1..n).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            perm.swap(i, j);
        }
        let mut weights = vec![0.0f64; n];
        for (rank, &client) in perm.iter().enumerate() {
            weights[client as usize] = ((rank + 1) as f64).powf(-alpha);
        }
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cumulative.push(acc);
        }
        for c in &mut cumulative {
            *c /= acc;
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        ClientSampler { cumulative }
    }

    fn sample(&self, rng: &mut Xoshiro256) -> u32 {
        let u = rng.next_f64();
        self.cumulative.partition_point(|&c| c < u) as u32
    }
}

/// Session seat for dynamic client-ID workloads (Prodigy): the seat is a
/// phone line; each login gets a fresh [`ClientId`].
#[derive(Debug, Clone, Copy)]
struct Seat {
    current_id: u32,
    remaining: u32,
}

/// Streaming, deterministic trace generator.
///
/// See the [crate docs](crate) for the generative model. The iterator yields
/// exactly `spec.requests` records in non-decreasing time order.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    spec: WorkloadSpec,
    emitted: u64,
    now: SimTime,
    mean_ia_secs: f64,

    rng_arrival: Xoshiro256,
    rng_client: Xoshiro256,
    rng_object: Xoshiro256,
    rng_class: Xoshiro256,

    clients: ClientSampler,
    seats: Vec<Seat>,
    /// Sessions minted so far (dynamic mode) — new IDs are
    /// `session * groups + group` so the L1 group stays recoverable from the
    /// ID (see [`WorkloadSpec::l1_group_of`]).
    sessions: u32,
    groups: u32,

    global_history: HistoryRing,
    group_histories: Vec<HistoryRing>,
    next_object: u64,
}

impl TraceGenerator {
    /// Creates a generator for `spec`, deterministic in `(spec, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`].
    pub fn new(spec: &WorkloadSpec, seed: u64) -> Self {
        if let Err(msg) = spec.validate() {
            panic!("invalid workload spec: {msg}");
        }
        let mut root = Xoshiro256::seed_from_u64(seed ^ 0x7459_4A93_12F1_77D3);
        let rng_arrival = root.split(1);
        let mut rng_client = root.split(2);
        let rng_object = root.split(3);
        let rng_class = root.split(4);

        let groups = spec.l1_groups() as usize;
        let seat_count = (spec.clients_per_l1 as usize) * groups;
        let (clients, seats) = if spec.dynamic_client_ids {
            let seats = (0..seat_count)
                .map(|i| Seat {
                    current_id: i as u32,
                    remaining: 0,
                })
                .collect::<Vec<_>>();
            (
                ClientSampler::new(
                    seat_count as u32,
                    spec.client_activity_alpha,
                    &mut rng_client,
                ),
                seats,
            )
        } else {
            (
                ClientSampler::new(spec.clients, spec.client_activity_alpha, &mut rng_client),
                Vec::new(),
            )
        };

        TraceGenerator {
            spec: spec.clone(),
            emitted: 0,
            now: SimTime::ZERO,
            mean_ia_secs: spec.mean_interarrival_secs(),
            rng_arrival,
            rng_client,
            rng_object,
            rng_class,
            clients,
            seats,
            sessions: 0,
            groups: groups as u32,
            global_history: HistoryRing::new(spec.history_window),
            group_histories: (0..groups)
                .map(|_| HistoryRing::new(spec.group_history_window))
                .collect(),
            next_object: 0,
        }
    }

    /// The spec this generator was built from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Number of distinct objects created so far.
    pub fn distinct_objects(&self) -> u64 {
        self.next_object
    }

    /// Number of distinct client IDs handed out so far: the static
    /// population for non-dynamic workloads, the session count for
    /// Prodigy-style dynamic binding.
    pub fn distinct_clients(&self) -> u32 {
        if self.spec.dynamic_client_ids {
            self.sessions
        } else {
            self.spec.clients
        }
    }

    fn advance_clock(&mut self) {
        // Non-homogeneous Poisson arrivals: scale the exponential gap by the
        // diurnal rate at the current instant (peak mid-afternoon).
        let a = self.spec.diurnal_amplitude;
        let day_frac = (self.now.as_secs_f64() / 86_400.0).fract();
        let rate_factor = 1.0 + a * (std::f64::consts::TAU * (day_frac - 0.625)).cos();
        let dt = self.rng_arrival.exponential(self.mean_ia_secs) / rate_factor.max(1e-3);
        self.now += bh_simcore::SimDuration::from_secs_f64(dt);
    }

    fn pick_client(&mut self) -> (ClientId, usize) {
        if self.spec.dynamic_client_ids {
            let seat_idx = self.clients.sample(&mut self.rng_client) as usize;
            let mean = self.spec.mean_session_requests;
            let group = seat_idx / self.spec.clients_per_l1 as usize;
            let groups = self.groups;
            let sessions = &mut self.sessions;
            let remaining = (self.rng_client.exponential(mean).ceil() as u32).max(1);
            let seat = &mut self.seats[seat_idx];
            if seat.remaining == 0 {
                // Encode the L1 group in the ID so it stays recoverable:
                // id = session * groups + group.
                seat.current_id = *sessions * groups + group as u32;
                *sessions += 1;
                seat.remaining = remaining;
            }
            seat.remaining -= 1;
            (ClientId(seat.current_id), group)
        } else {
            let c = self.clients.sample(&mut self.rng_client);
            let group = (c / self.spec.clients_per_l1) as usize;
            (ClientId(c), group.min(self.group_histories.len() - 1))
        }
    }

    fn pick_object(&mut self, group: usize) -> ObjectId {
        let choice = if self.next_object == 0 || self.rng_object.chance(self.spec.p_new) {
            None
        } else if self.rng_object.chance(self.spec.p_local) {
            self.group_histories[group]
                .sample(&mut self.rng_object)
                .or_else(|| self.global_history.sample(&mut self.rng_object))
        } else {
            self.global_history.sample(&mut self.rng_object)
        };
        let id = choice.unwrap_or_else(|| {
            let id = self.next_object;
            self.next_object += 1;
            id
        });
        self.global_history.push(id);
        self.group_histories[group].push(id);
        ObjectId(id)
    }
}

impl Iterator for TraceGenerator {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if self.emitted >= self.spec.requests {
            return None;
        }
        self.emitted += 1;
        self.advance_clock();
        let (client, group) = self.pick_client();
        let object = self.pick_object(group);
        let attrs = ObjectAttrs::derive(object, &self.spec);

        let class = if self.rng_class.chance(self.spec.p_error) {
            RequestClass::Error
        } else if attrs.cgi || self.rng_class.chance(self.spec.p_uncachable_request) {
            RequestClass::Uncachable
        } else {
            RequestClass::Cacheable
        };

        Some(TraceRecord {
            time: self.now,
            client,
            object,
            size: attrs.size,
            version: attrs.version_at(self.now),
            class,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.spec.requests - self.emitted) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for TraceGenerator {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use std::collections::HashSet;

    fn small() -> WorkloadSpec {
        WorkloadSpec::small().with_requests(20_000)
    }

    #[test]
    fn emits_exact_count_in_time_order() {
        let gen = TraceGenerator::new(&small(), 1);
        let mut last = SimTime::ZERO;
        let mut n = 0u64;
        for r in gen {
            assert!(r.time >= last, "timestamps must be non-decreasing");
            last = r.time;
            n += 1;
        }
        assert_eq!(n, 20_000);
    }

    #[test]
    fn deterministic_in_seed() {
        let a: Vec<_> = TraceGenerator::new(&small(), 7).collect();
        let b: Vec<_> = TraceGenerator::new(&small(), 7).collect();
        let c: Vec<_> = TraceGenerator::new(&small(), 8).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn distinct_ratio_tracks_p_new() {
        let spec = small().with_requests(50_000).with_p_new(0.25);
        let mut gen = TraceGenerator::new(&spec, 3);
        let mut n = 0u64;
        for _ in gen.by_ref() {
            n += 1;
        }
        let ratio = gen.distinct_objects() as f64 / n as f64;
        assert!(
            (ratio - 0.25).abs() < 0.02,
            "distinct/total {ratio} should track p_new=0.25"
        );
    }

    #[test]
    fn popularity_is_skewed() {
        let spec = small().with_requests(50_000);
        let mut counts = std::collections::HashMap::new();
        for r in TraceGenerator::new(&spec, 4) {
            *counts.entry(r.object).or_insert(0u64) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // Top 10% of objects should account for well over half the repeats
        // under preferential attachment.
        let top = freqs.iter().take(freqs.len() / 10).sum::<u64>();
        let total: u64 = freqs.iter().sum();
        assert!(
            top as f64 / total as f64 > 0.4,
            "top-decile share {} too flat",
            top as f64 / total as f64
        );
    }

    #[test]
    fn object_attrs_are_deterministic_and_bounded() {
        let spec = WorkloadSpec::dec();
        for i in 0..5_000u64 {
            let a = ObjectAttrs::derive(ObjectId(i), &spec);
            let b = ObjectAttrs::derive(ObjectId(i), &spec);
            assert_eq!(a, b);
            assert!(a.size.as_bytes() >= 128);
            assert!(a.size.as_bytes() <= spec.max_object_bytes);
        }
    }

    #[test]
    fn object_sizes_have_heavy_tail_and_sane_mean() {
        let spec = WorkloadSpec::dec();
        let sizes: Vec<u64> = (0..200_000u64)
            .map(|i| ObjectAttrs::derive(ObjectId(i), &spec).size.as_bytes())
            .collect();
        let mean = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
        // Literature (and the paper's §3.1.1) quotes ~10 KB average objects.
        assert!(
            (6_000.0..20_000.0).contains(&mean),
            "mean object size {mean}"
        );
        let max = *sizes.iter().max().expect("nonempty");
        assert!(max > 500_000, "tail too light, max {max}");
    }

    #[test]
    fn versions_monotone_in_time() {
        let spec = WorkloadSpec::dec();
        // Find a mutable object.
        let obj = (0..10_000u64)
            .map(ObjectId)
            .find(|o| ObjectAttrs::derive(*o, &spec).mod_rate_per_sec > 0.0)
            .expect("some object must be mutable");
        let attrs = ObjectAttrs::derive(obj, &spec);
        let mut last = 0;
        for day in 0..30 {
            let v = attrs.version_at(SimTime::from_secs(day * 86_400));
            assert!(v >= last);
            last = v;
        }
        assert!(last > 0, "a mutable object must change within 30 days");
    }

    #[test]
    fn mutable_fraction_tracks_spec() {
        let spec = WorkloadSpec::dec();
        let n = 50_000u64;
        let mutable = (0..n)
            .filter(|&i| ObjectAttrs::derive(ObjectId(i), &spec).mod_rate_per_sec > 0.0)
            .count() as f64;
        let frac = mutable / n as f64;
        assert!(
            (frac - spec.p_mutable_object).abs() < 0.01,
            "mutable fraction {frac}"
        );
    }

    #[test]
    fn request_class_mix_reasonable() {
        let spec = small().with_requests(50_000);
        let mut errors = 0u64;
        let mut uncachable = 0u64;
        let mut total = 0u64;
        for r in TraceGenerator::new(&spec, 5) {
            total += 1;
            match r.class {
                RequestClass::Error => errors += 1,
                RequestClass::Uncachable => uncachable += 1,
                RequestClass::Cacheable => {}
            }
        }
        let e = errors as f64 / total as f64;
        let u = uncachable as f64 / total as f64;
        assert!((e - spec.p_error).abs() < 0.01, "error rate {e}");
        // Uncachable = request-level + CGI objects (weighted by popularity).
        assert!(
            u > spec.p_uncachable_request * 0.5 && u < 0.3,
            "uncachable rate {u}"
        );
    }

    #[test]
    fn static_ids_stay_in_range() {
        let spec = small();
        let mut seen = HashSet::new();
        for r in TraceGenerator::new(&spec, 6) {
            assert!(r.client.0 < spec.clients);
            seen.insert(r.client);
        }
        assert!(
            seen.len() > spec.clients as usize / 4,
            "most clients should appear"
        );
    }

    #[test]
    fn dynamic_ids_grow_over_trace() {
        // Use a small seat pool so sessions visibly recycle seats: 1024
        // seats, ~4000 sessions.
        let mut spec = WorkloadSpec::prodigy().scaled(0.005);
        spec.clients = 1024;
        spec.mean_session_requests = 5.0;
        let mut gen = TraceGenerator::new(&spec, 7);
        let mut ids = HashSet::new();
        for r in gen.by_ref() {
            ids.insert(r.client.0);
            // Group must be recoverable from the ID.
            assert!(r.client.0 % spec.l1_groups() < spec.l1_groups());
        }
        let seats = spec.l1_groups() * spec.clients_per_l1;
        assert!(
            ids.len() as u32 > seats,
            "dynamic binding should mint more IDs ({}) than seats ({seats})",
            ids.len()
        );
        assert_eq!(gen.distinct_clients(), ids.len() as u32);
    }

    #[test]
    fn group_locality_bias_observable() {
        // With p_local = 0.9 the same object should recur within a group far
        // more than across groups, compared to p_local = 0.0.
        let cross_group_repeat_fraction = |p_local: f64| {
            let spec = small().with_requests(30_000).with_p_local(p_local);
            let mut first_group: std::collections::HashMap<ObjectId, usize> =
                std::collections::HashMap::new();
            let (mut same, mut cross) = (0u64, 0u64);
            for r in TraceGenerator::new(&spec, 8) {
                let group = (r.client.0 / spec.clients_per_l1) as usize;
                match first_group.get(&r.object) {
                    None => {
                        first_group.insert(r.object, group);
                    }
                    Some(&g) if g == group => same += 1,
                    Some(_) => cross += 1,
                }
            }
            cross as f64 / (same + cross) as f64
        };
        let high_locality = cross_group_repeat_fraction(0.9);
        let no_locality = cross_group_repeat_fraction(0.0);
        assert!(
            high_locality < no_locality,
            "locality bias should reduce cross-group repeats: {high_locality} vs {no_locality}"
        );
    }

    #[test]
    fn size_hint_exact() {
        let spec = small().with_requests(100);
        let mut gen = TraceGenerator::new(&spec, 9);
        assert_eq!(gen.len(), 100);
        gen.next();
        assert_eq!(gen.len(), 99);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            #[test]
            fn generator_invariants(seed in any::<u64>(),
                                    p_new in 0.05f64..0.5,
                                    p_local in 0.0f64..0.9) {
                let spec = WorkloadSpec::small()
                    .with_requests(2_000)
                    .with_p_new(p_new)
                    .with_p_local(p_local);
                let mut last = SimTime::ZERO;
                let mut count = 0u64;
                for r in TraceGenerator::new(&spec, seed) {
                    prop_assert!(r.time >= last);
                    last = r.time;
                    prop_assert!(r.size.as_bytes() >= 128);
                    prop_assert!(r.client.0 < spec.clients);
                    count += 1;
                }
                prop_assert_eq!(count, 2_000);
            }
        }
    }
}
