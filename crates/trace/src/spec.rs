//! Workload specifications and the three trace presets of Table 4.

use serde::{Deserialize, Serialize};

/// Which published trace a spec models.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum TraceName {
    /// Digital Equipment Corporation's proxy trace (Sep 1996): 16,660
    /// clients, 22.1 M accesses, 4.15 M distinct URLs over 21 days.
    Dec,
    /// UC Berkeley Home-IP HTTP trace (Nov 1996): 8,372 clients, 8.8 M
    /// accesses, 1.8 M distinct URLs over 19 days.
    Berkeley,
    /// Prodigy ISP dial-up trace (Jan 1998): 35,354 dynamically bound client
    /// IDs, 4.2 M accesses, 1.2 M distinct URLs over 3 days.
    Prodigy,
    /// A custom synthetic workload.
    Custom,
}

impl std::fmt::Display for TraceName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TraceName::Dec => "DEC",
            TraceName::Berkeley => "Berkeley",
            TraceName::Prodigy => "Prodigy",
            TraceName::Custom => "Custom",
        };
        f.write_str(s)
    }
}

/// Full parameterization of a synthetic workload.
///
/// Construct via the presets ([`WorkloadSpec::dec`] etc.) and adjust with the
/// builder-style `with_*` methods; [`WorkloadSpec::scaled`] shrinks a preset
/// proportionally (requests and duration together, so arrival *rate* and the
/// sharing structure are preserved) for fast experiment runs.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Which trace this models.
    pub name: TraceName,
    /// Total number of requests to generate.
    pub requests: u64,
    /// Number of distinct clients. For [`TraceName::Prodigy`]-style dynamic
    /// binding this is the number of distinct IDs handed out over the trace;
    /// the concurrent population is smaller.
    pub clients: u32,
    /// Trace duration in (simulated) days.
    pub duration_days: f64,
    /// Probability that a request references a never-before-seen URL.
    /// This directly sets the trace's distinct/total ratio and therefore the
    /// global compulsory miss rate (Table 4 / Figure 2).
    pub p_new: f64,
    /// Given a repeat reference, the probability it is drawn from the
    /// client's own L1 group's recent history rather than the global history.
    /// This controls how much of the achievable hit rate is already captured
    /// at L1 versus only at L2/L3 (Figure 3).
    pub p_local: f64,
    /// Repeat references are drawn from a sliding window of this many recent
    /// accesses (preferential attachment with bounded memory). Controls
    /// temporal locality and therefore where capacity misses appear (Fig. 2).
    pub history_window: usize,
    /// Per-L1-group history window for local re-references.
    pub group_history_window: usize,
    /// Number of clients sharing one L1 proxy (the paper's default is 256).
    pub clients_per_l1: u32,
    /// Number of L1 proxies sharing one L2 proxy (the paper's default is 8).
    pub l1s_per_l2: u32,
    /// Fraction of requests that are uncachable for *request* reasons
    /// (non-GET methods, cache-control).
    pub p_uncachable_request: f64,
    /// Fraction of objects that are uncachable for *object* reasons (CGI /
    /// dynamically generated); every request to such an object is uncachable.
    pub p_cgi_object: f64,
    /// Fraction of requests that draw an error reply.
    pub p_error: f64,
    /// Fraction of objects that are mutable.
    pub p_mutable_object: f64,
    /// Mean time between modifications of a mutable object, in hours.
    /// Individual objects get rates spread log-uniformly around this mean.
    pub mean_mod_interval_hours: f64,
    /// Median object size in bytes (log-normal).
    pub median_object_bytes: f64,
    /// Sigma of the underlying normal for object sizes. With the median
    /// above, `exp(mu + sigma^2/2)` gives the ~10 KB mean the literature
    /// reports.
    pub size_sigma: f64,
    /// Hard cap on object size in bytes (the tail is truncated, mirroring
    /// proxies' refusal to cache very large objects).
    pub max_object_bytes: u64,
    /// Zipf exponent for per-client activity skew (0 = all clients equally
    /// active).
    pub client_activity_alpha: f64,
    /// Amplitude of the diurnal arrival modulation in `[0, 1)`; 0 disables.
    pub diurnal_amplitude: f64,
    /// Whether client IDs are dynamically bound per session (Prodigy).
    pub dynamic_client_ids: bool,
    /// Mean session length in requests when `dynamic_client_ids` is set.
    pub mean_session_requests: f64,
}

impl WorkloadSpec {
    /// The DEC proxy workload (Table 4, row 1).
    ///
    /// 16,660 clients is within 2% of the paper's 64 × 256 = 16,384 default
    /// topology; we generate exactly 64 L1 groups of 256.
    pub fn dec() -> Self {
        WorkloadSpec {
            name: TraceName::Dec,
            requests: 22_100_000,
            clients: 16_384,
            duration_days: 21.0,
            p_new: 0.188, // 4.15M distinct / 22.1M accesses
            p_local: 0.43,
            history_window: 4_000_000,
            group_history_window: 65_536,
            clients_per_l1: 256,
            l1s_per_l2: 8,
            p_uncachable_request: 0.035,
            p_cgi_object: 0.015,
            p_error: 0.02,
            p_mutable_object: 0.10,
            mean_mod_interval_hours: 48.0,
            median_object_bytes: 4096.0,
            size_sigma: 1.35,
            max_object_bytes: 8 * 1024 * 1024,
            client_activity_alpha: 0.6,
            diurnal_amplitude: 0.5,
            dynamic_client_ids: false,
            mean_session_requests: 0.0,
        }
    }

    /// The Berkeley Home-IP workload (Table 4, row 2).
    pub fn berkeley() -> Self {
        WorkloadSpec {
            name: TraceName::Berkeley,
            requests: 8_800_000,
            clients: 8_192,
            duration_days: 19.0,
            p_new: 0.205, // 1.8M / 8.8M
            p_local: 0.33,
            history_window: 2_000_000,
            group_history_window: 65_536,
            clients_per_l1: 256,
            l1s_per_l2: 8,
            p_uncachable_request: 0.08,
            p_cgi_object: 0.03,
            p_error: 0.03,
            p_mutable_object: 0.14,
            mean_mod_interval_hours: 36.0,
            median_object_bytes: 4096.0,
            size_sigma: 1.35,
            max_object_bytes: 8 * 1024 * 1024,
            client_activity_alpha: 0.7,
            diurnal_amplitude: 0.5,
            dynamic_client_ids: false,
            mean_session_requests: 0.0,
        }
    }

    /// The Prodigy dial-up ISP workload (Table 4, row 3): dynamic client IDs.
    pub fn prodigy() -> Self {
        WorkloadSpec {
            name: TraceName::Prodigy,
            requests: 4_200_000,
            clients: 35_354,
            duration_days: 3.0,
            p_new: 0.286, // 1.2M / 4.2M
            p_local: 0.30,
            history_window: 1_000_000,
            group_history_window: 65_536,
            clients_per_l1: 256,
            l1s_per_l2: 8,
            p_uncachable_request: 0.10,
            p_cgi_object: 0.04,
            p_error: 0.035,
            p_mutable_object: 0.16,
            mean_mod_interval_hours: 24.0,
            median_object_bytes: 4096.0,
            size_sigma: 1.35,
            max_object_bytes: 8 * 1024 * 1024,
            client_activity_alpha: 0.7,
            diurnal_amplitude: 0.4,
            dynamic_client_ids: true,
            mean_session_requests: 120.0,
        }
    }

    /// A tiny custom workload, useful as a starting point for tests and
    /// examples.
    pub fn small() -> Self {
        WorkloadSpec {
            name: TraceName::Custom,
            requests: 50_000,
            clients: 1_024,
            duration_days: 2.0,
            p_new: 0.2,
            p_local: 0.35,
            history_window: 20_000,
            group_history_window: 4_096,
            clients_per_l1: 256,
            l1s_per_l2: 2,
            p_uncachable_request: 0.05,
            p_cgi_object: 0.02,
            p_error: 0.02,
            p_mutable_object: 0.10,
            mean_mod_interval_hours: 12.0,
            median_object_bytes: 4096.0,
            size_sigma: 1.35,
            max_object_bytes: 8 * 1024 * 1024,
            client_activity_alpha: 0.6,
            diurnal_amplitude: 0.3,
            dynamic_client_ids: false,
            mean_session_requests: 0.0,
        }
    }

    /// Scales requests and duration by `factor`, preserving the arrival rate,
    /// the client population, and the topology. History windows scale too so
    /// locality structure is comparable across scales.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0,1], got {factor}"
        );
        self.requests = ((self.requests as f64 * factor).round() as u64).max(1);
        self.duration_days = (self.duration_days * factor).max(0.05);
        self.history_window = ((self.history_window as f64 * factor) as usize).max(1024);
        self.group_history_window = ((self.group_history_window as f64 * factor) as usize).max(256);
        self
    }

    /// Overrides the request count.
    pub fn with_requests(mut self, requests: u64) -> Self {
        self.requests = requests;
        self
    }

    /// Overrides the PRNG-facing client population.
    pub fn with_clients(mut self, clients: u32) -> Self {
        self.clients = clients;
        self
    }

    /// Overrides the probability of a first-reference (compulsory) access.
    pub fn with_p_new(mut self, p: f64) -> Self {
        self.p_new = p;
        self
    }

    /// Overrides the local-affinity probability.
    pub fn with_p_local(mut self, p: f64) -> Self {
        self.p_local = p;
        self
    }

    /// Number of L1 proxy groups implied by the client population.
    pub fn l1_groups(&self) -> u32 {
        self.clients.div_ceil(self.clients_per_l1)
    }

    /// The L1 proxy group serving a client.
    ///
    /// Static workloads assign clients to groups in blocks
    /// (`id / clients_per_l1`); dynamic workloads encode the group in the
    /// session ID (`id % groups`, see the generator).
    pub fn l1_group_of(&self, client: crate::record::ClientId) -> u32 {
        if self.dynamic_client_ids {
            client.0 % self.l1_groups()
        } else {
            (client.0 / self.clients_per_l1).min(self.l1_groups() - 1)
        }
    }

    /// Number of L2 proxies implied by the topology.
    pub fn l2_groups(&self) -> u32 {
        self.l1_groups().div_ceil(self.l1s_per_l2)
    }

    /// Total duration as a [`bh_simcore::SimDuration`].
    pub fn duration(&self) -> bh_simcore::SimDuration {
        bh_simcore::SimDuration::from_secs_f64(self.duration_days * 86_400.0)
    }

    /// Mean request inter-arrival time in seconds.
    pub fn mean_interarrival_secs(&self) -> f64 {
        self.duration_days * 86_400.0 / self.requests as f64
    }

    /// A 64-bit fingerprint over every field, used to key the process-wide
    /// [`crate::materialize::TraceCache`]. Floats hash by bit pattern, so
    /// any observable spec change (even `0.1` vs `0.1 + ε`) changes the
    /// fingerprint; equal specs always collide.
    pub fn fingerprint(&self) -> u64 {
        let mut h = bh_simcore::rng::SplitMix64::new(0xB97A_57D6_1E8F_2C43);
        let mut mix = |v: u64| {
            // Feed each field through the generator so ordering matters.
            h = bh_simcore::rng::SplitMix64::new(h.next_u64() ^ v);
        };
        mix(match self.name {
            TraceName::Dec => 1,
            TraceName::Berkeley => 2,
            TraceName::Prodigy => 3,
            TraceName::Custom => 4,
        });
        mix(self.requests);
        mix(self.clients as u64);
        mix(self.duration_days.to_bits());
        mix(self.p_new.to_bits());
        mix(self.p_local.to_bits());
        mix(self.history_window as u64);
        mix(self.group_history_window as u64);
        mix(self.clients_per_l1 as u64);
        mix(self.l1s_per_l2 as u64);
        mix(self.p_uncachable_request.to_bits());
        mix(self.p_cgi_object.to_bits());
        mix(self.p_error.to_bits());
        mix(self.p_mutable_object.to_bits());
        mix(self.mean_mod_interval_hours.to_bits());
        mix(self.median_object_bytes.to_bits());
        mix(self.size_sigma.to_bits());
        mix(self.max_object_bytes);
        mix(self.client_activity_alpha.to_bits());
        mix(self.diurnal_amplitude.to_bits());
        mix(self.dynamic_client_ids as u64);
        mix(self.mean_session_requests.to_bits());
        h.next_u64()
    }

    /// Validates internal consistency; called by the generator.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.requests == 0 {
            return Err("requests must be positive".into());
        }
        if self.clients == 0 {
            return Err("clients must be positive".into());
        }
        if self.clients_per_l1 == 0 {
            return Err("clients_per_l1 must be positive".into());
        }
        if self.l1s_per_l2 == 0 {
            return Err("l1s_per_l2 must be positive".into());
        }
        if self.duration_days.is_nan() || self.duration_days <= 0.0 {
            return Err("duration_days must be positive".into());
        }
        for (label, p) in [
            ("p_new", self.p_new),
            ("p_local", self.p_local),
            ("p_uncachable_request", self.p_uncachable_request),
            ("p_cgi_object", self.p_cgi_object),
            ("p_error", self.p_error),
            ("p_mutable_object", self.p_mutable_object),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{label} must be a probability, got {p}"));
            }
        }
        if !(0.0..1.0).contains(&self.diurnal_amplitude) {
            return Err(format!(
                "diurnal_amplitude must be in [0,1), got {}",
                self.diurnal_amplitude
            ));
        }
        if self.history_window == 0 || self.group_history_window == 0 {
            return Err("history windows must be positive".into());
        }
        if self.dynamic_client_ids
            && (self.mean_session_requests.is_nan() || self.mean_session_requests < 1.0)
        {
            return Err("dynamic client ids require mean_session_requests >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table4() {
        let dec = WorkloadSpec::dec();
        assert_eq!(dec.requests, 22_100_000);
        assert_eq!(dec.duration_days, 21.0);
        assert_eq!(dec.l1_groups(), 64);
        assert_eq!(dec.l2_groups(), 8);

        let berkeley = WorkloadSpec::berkeley();
        assert_eq!(berkeley.requests, 8_800_000);
        assert_eq!(berkeley.l1_groups(), 32);

        let prodigy = WorkloadSpec::prodigy();
        assert_eq!(prodigy.requests, 4_200_000);
        assert!(prodigy.dynamic_client_ids);
        // distinct/total ratios from Table 4
        assert!((dec.p_new - 4.15 / 22.1).abs() < 0.01);
        assert!((berkeley.p_new - 1.8 / 8.8).abs() < 0.01);
        assert!((prodigy.p_new - 1.2 / 4.2).abs() < 0.01);
    }

    #[test]
    fn presets_validate() {
        for spec in [
            WorkloadSpec::dec(),
            WorkloadSpec::berkeley(),
            WorkloadSpec::prodigy(),
            WorkloadSpec::small(),
        ] {
            spec.validate().expect("preset must validate");
        }
    }

    #[test]
    fn scaling_preserves_rate_and_topology() {
        let full = WorkloadSpec::dec();
        let tenth = WorkloadSpec::dec().scaled(0.1);
        assert_eq!(tenth.requests, 2_210_000);
        assert_eq!(tenth.clients, full.clients);
        assert_eq!(tenth.l1_groups(), full.l1_groups());
        let rate_full = full.requests as f64 / full.duration_days;
        let rate_tenth = tenth.requests as f64 / tenth.duration_days;
        assert!((rate_full / rate_tenth - 1.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn zero_scale_rejected() {
        let _ = WorkloadSpec::dec().scaled(0.0);
    }

    #[test]
    fn validate_rejects_bad_probability() {
        let mut s = WorkloadSpec::small();
        s.p_new = 1.5;
        let err = s.validate().expect_err("must fail");
        assert!(err.contains("p_new"));
    }

    #[test]
    fn validate_rejects_zero_requests() {
        let s = WorkloadSpec::small().with_requests(0);
        assert!(s.validate().is_err());
    }

    #[test]
    fn builders_override() {
        let s = WorkloadSpec::small()
            .with_p_new(0.5)
            .with_p_local(0.9)
            .with_clients(512);
        assert_eq!(s.p_new, 0.5);
        assert_eq!(s.p_local, 0.9);
        assert_eq!(s.clients, 512);
        assert_eq!(s.l1_groups(), 2);
    }

    #[test]
    fn interarrival_consistent() {
        let s = WorkloadSpec::small();
        let expect = s.duration_days * 86_400.0 / s.requests as f64;
        assert!((s.mean_interarrival_secs() - expect).abs() < 1e-12);
    }
}
