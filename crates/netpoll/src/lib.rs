//! Minimal level-triggered `epoll` wrapper for the prototype's sharded
//! connection engine.
//!
//! The workspace builds without external crates, so this talks to the kernel
//! directly through three `extern "C"` declarations (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`) resolved by the libc that `std` already links.
//! All `unsafe` in the workspace is confined to this crate; everything above
//! it keeps `#![forbid(unsafe_code)]`.
//!
//! The wrapper is deliberately small:
//!
//! * **level-triggered** only — readiness is re-reported until drained, so a
//!   shard never needs to loop a socket to `WouldBlock` before re-arming;
//! * `u64` tokens carried in `epoll_data`, mapped back by the caller;
//! * a [`Waker`] built from a non-blocking `UnixStream` pair so other
//!   threads (accept loop, worker pool) can interrupt a blocked
//!   [`Poller::wait`];
//! * [`write_vectored`] — a thin `writev(2)` wrapper so a connection's
//!   queued reply frames drain in one syscall instead of one `write` per
//!   frame.
//!
//! On non-Linux targets the same API exists but every constructor returns
//! [`std::io::ErrorKind::Unsupported`]; callers fall back to the legacy
//! thread-per-connection engine there.

#![warn(missing_docs)]

pub mod fault;

use std::io;

/// Readiness interest registered for a file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor becomes readable (or peer-closed).
    pub readable: bool,
    /// Wake when the descriptor becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification returned by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token supplied at registration.
    pub token: u64,
    /// `EPOLLIN`: a read will not block (data or EOF available).
    pub readable: bool,
    /// `EPOLLOUT`: a write will not block.
    pub writable: bool,
    /// `EPOLLHUP` / `EPOLLRDHUP`: the peer closed its end.
    pub hangup: bool,
    /// `EPOLLERR`: the descriptor is in an error state.
    pub error: bool,
}

impl Event {
    /// True when the connection should be read (to observe data, EOF, or the
    /// pending socket error) rather than left idle.
    pub fn needs_read(&self) -> bool {
        self.readable || self.hangup || self.error
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::os::raw::c_int;
    use std::time::Duration;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;

    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;

    // The kernel ABI packs the 12-byte epoll_event on x86-64; other
    // architectures use natural alignment.
    #[derive(Clone, Copy)]
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    // Mirrors the kernel's `struct iovec`. `std::io::IoSlice` documents ABI
    // compatibility with iovec, but we keep our own definition so the cast
    // below is explicit about the layout we rely on.
    #[repr(C)]
    struct IoVec {
        base: *const u8,
        len: usize,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn writev(fd: c_int, iov: *const IoVec, iovcnt: c_int) -> isize;
    }

    /// Most buffers passed to the kernel in one [`write_vectored`] call.
    ///
    /// Linux caps `iovcnt` at `IOV_MAX` (1024); 64 keeps the stack copy of
    /// the slice small while still amortising the syscall across a deep
    /// reply queue.
    pub const MAX_IOV: usize = 64;

    /// Writes up to [`MAX_IOV`] buffers to `fd` with one `writev(2)` call,
    /// returning the number of bytes accepted. `EINTR` is retried
    /// transparently; `WouldBlock` and other errors surface to the caller.
    pub fn write_vectored(fd: &impl AsRawFd, bufs: &[std::io::IoSlice<'_>]) -> io::Result<usize> {
        if bufs.is_empty() {
            return Ok(0);
        }
        let cnt = bufs.len().min(MAX_IOV);
        loop {
            // SAFETY: `std::io::IoSlice` is guaranteed ABI-compatible with
            // iovec (same layout as our repr(C) IoVec); `bufs` stays borrowed
            // for the duration of the call and the kernel reads at most
            // `cnt` entries.
            let rc = unsafe { writev(fd.as_raw_fd(), bufs.as_ptr() as *const IoVec, cnt as c_int) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    fn interest_mask(interest: Interest) -> u32 {
        let mut mask = EPOLLRDHUP;
        if interest.readable {
            mask |= EPOLLIN;
        }
        if interest.writable {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// A level-triggered epoll instance.
    #[derive(Debug)]
    pub struct Poller {
        epfd: OwnedFd,
    }

    impl Poller {
        /// Creates a fresh epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 takes no pointers; a negative return is
            // checked before the fd is wrapped, so OwnedFd only ever owns a
            // valid descriptor.
            let raw = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if raw < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: `raw` is a freshly created, otherwise unowned fd.
            let epfd = unsafe { OwnedFd::from_raw_fd(raw) };
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, event: Option<&mut EpollEvent>) -> io::Result<()> {
            let ptr = event.map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            // SAFETY: `ptr` is either null (only for EPOLL_CTL_DEL, which
            // ignores it) or a live &mut EpollEvent for the duration of the
            // call; the kernel does not retain the pointer.
            let rc = unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, ptr) };
            if rc < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(())
            }
        }

        /// Starts watching `fd` with the given token and interest.
        pub fn register(
            &self,
            fd: &impl AsRawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest_mask(interest),
                data: token,
            };
            self.ctl(EPOLL_CTL_ADD, fd.as_raw_fd(), Some(&mut ev))
        }

        /// Replaces the interest set for an already-registered `fd`.
        pub fn modify(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest_mask(interest),
                data: token,
            };
            self.ctl(EPOLL_CTL_MOD, fd.as_raw_fd(), Some(&mut ev))
        }

        /// Stops watching `fd`.
        pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd.as_raw_fd(), None)
        }

        /// Blocks until at least one descriptor is ready or `timeout`
        /// elapses, appending events to `out`. Returns the number appended.
        /// `None` waits indefinitely. `EINTR` is retried transparently.
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(d) => {
                    let ms = d.as_millis();
                    // Round sub-millisecond waits up so Some(small) cannot
                    // spin as a zero-timeout poll.
                    let ms = if ms == 0 && !d.is_zero() { 1 } else { ms };
                    ms.min(c_int::MAX as u128) as c_int
                }
            };
            let mut buf = [EpollEvent { events: 0, data: 0 }; 128];
            let n = loop {
                // SAFETY: `buf` is a live array of `buf.len()` EpollEvent;
                // the kernel writes at most `maxevents` entries into it.
                let rc = unsafe {
                    epoll_wait(
                        self.epfd.as_raw_fd(),
                        buf.as_mut_ptr(),
                        buf.len() as c_int,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for slot in buf.iter().take(n) {
                // Copy out of the (possibly packed) struct before touching
                // the fields.
                let ev = *slot;
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLHUP | EPOLLRDHUP) != 0,
                    error: bits & EPOLLERR != 0,
                });
            }
            Ok(n)
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{Event, Interest};
    use std::io;
    use std::time::Duration;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "bh-netpoll requires Linux epoll; use the legacy threading mode",
        ))
    }

    /// Mirrors the Linux constant so shared code can size reply queues.
    pub const MAX_IOV: usize = 64;

    /// Always fails on this target; the sharded engine is Linux-only.
    pub fn write_vectored(
        _fd: &impl std::os::fd::AsRawFd,
        _bufs: &[std::io::IoSlice<'_>],
    ) -> io::Result<usize> {
        unsupported()
    }

    /// Stub poller for non-Linux targets; every constructor fails with
    /// [`io::ErrorKind::Unsupported`].
    #[derive(Debug)]
    pub struct Poller {
        _priv: (),
    }

    impl Poller {
        /// Always fails on this target.
        pub fn new() -> io::Result<Poller> {
            unsupported()
        }

        /// Unreachable (no `Poller` value can exist on this target).
        pub fn register(
            &self,
            _fd: &impl std::os::fd::AsRawFd,
            _token: u64,
            _interest: Interest,
        ) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no `Poller` value can exist on this target).
        pub fn modify(
            &self,
            _fd: &impl std::os::fd::AsRawFd,
            _token: u64,
            _interest: Interest,
        ) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no `Poller` value can exist on this target).
        pub fn deregister(&self, _fd: &impl std::os::fd::AsRawFd) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no `Poller` value can exist on this target).
        pub fn wait(&self, _out: &mut Vec<Event>, _timeout: Option<Duration>) -> io::Result<usize> {
            unsupported()
        }
    }
}

pub use imp::{write_vectored, Poller, MAX_IOV};

/// Cross-thread wake-up handle paired with a [`WakeReceiver`].
///
/// Built from a non-blocking `UnixStream` pair: `wake` writes one byte (a
/// full pipe already guarantees a pending wake-up, so `WouldBlock` is
/// success), the receiver side is registered with a [`Poller`] and drained on
/// readiness. A shared `pending` flag coalesces wake-ups: once a wake is in
/// flight, further `wake` calls are free until the receiver drains, which
/// matters when many worker threads complete against one poller.
#[derive(Debug)]
pub struct Waker {
    tx: std::os::unix::net::UnixStream,
    pending: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl Waker {
    /// Makes the paired [`WakeReceiver`]'s descriptor readable.
    ///
    /// Returns `true` when this call actually issued the wake-up syscall and
    /// `false` when it coalesced onto a wake already in flight — callers can
    /// count the `false`s to measure how many poller round-trips the flag
    /// saved.
    pub fn wake(&self) -> bool {
        use std::io::Write;
        use std::sync::atomic::Ordering;
        if self.pending.swap(true, Ordering::AcqRel) {
            return false; // A wake-up is already in flight; coalesced.
        }
        // A failed or short write is fine: WouldBlock means wake-ups are
        // already pending; a broken pipe means the poller is gone.
        let _ = (&self.tx).write(&[1u8]);
        true
    }

    /// Clones the handle so several threads can hold wakers independently.
    pub fn try_clone(&self) -> io::Result<Waker> {
        Ok(Waker {
            tx: self.tx.try_clone()?,
            pending: std::sync::Arc::clone(&self.pending),
        })
    }
}

/// Receiving side of a [`Waker`]; register it with a [`Poller`] and call
/// [`WakeReceiver::drain`] whenever its token fires.
#[derive(Debug)]
pub struct WakeReceiver {
    rx: std::os::unix::net::UnixStream,
    pending: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl WakeReceiver {
    /// Consumes all pending wake-up bytes so level-triggered polling stops
    /// reporting the descriptor as readable.
    ///
    /// A byte can only be in flight while the shared flag is set (`wake`
    /// raises the flag before writing), so the common no-wake case is a
    /// single atomic load and no syscall.
    pub fn drain(&self) {
        use std::io::Read;
        use std::sync::atomic::Ordering;
        if !self.pending.load(Ordering::Acquire) {
            return;
        }
        let mut buf = [0u8; 64];
        loop {
            match (&self.rx).read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        // Clear the flag only after the reads: a wake that slips in between
        // is skipped by its sender precisely because the flag is still set,
        // and the work it advertises is observed by whatever the caller
        // checks right after this drain. A wake that lands after the clear
        // writes a fresh byte, which level-triggered polling re-reports.
        self.pending.store(false, Ordering::Release);
    }
}

impl std::os::fd::AsRawFd for WakeReceiver {
    fn as_raw_fd(&self) -> std::os::fd::RawFd {
        self.rx.as_raw_fd()
    }
}

/// Creates a connected waker pair, both ends non-blocking.
pub fn waker_pair() -> io::Result<(Waker, WakeReceiver)> {
    let (rx, tx) = std::os::unix::net::UnixStream::pair()?;
    rx.set_nonblocking(true)?;
    tx.set_nonblocking(true)?;
    let pending = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    Ok((
        Waker {
            tx,
            pending: std::sync::Arc::clone(&pending),
        },
        WakeReceiver { rx, pending },
    ))
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    #[test]
    fn readable_event_fires_and_clears() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.register(&b, 7, Interest::READABLE).unwrap();

        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "no data yet");

        a.write_all(b"x").unwrap();
        events.clear();
        poller.wait(&mut events, None).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: still readable until drained.
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(events.len(), 1);

        let mut byte = [0u8; 8];
        let got = (&b).read(&mut byte).unwrap();
        assert_eq!(got, 1);
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "drained");
    }

    #[test]
    fn modify_switches_interest_and_hangup_reported() {
        let poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.register(&b, 1, Interest::WRITABLE).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, None).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));

        poller.modify(&b, 1, Interest::READABLE).unwrap();
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "writable interest removed");

        drop(a);
        events.clear();
        poller.wait(&mut events, None).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.needs_read()));

        poller.deregister(&b).unwrap();
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "deregistered fd is silent");
    }

    #[test]
    fn waker_interrupts_wait() {
        let poller = Poller::new().unwrap();
        let (waker, receiver) = waker_pair().unwrap();
        poller.register(&receiver, 0, Interest::READABLE).unwrap();

        let waker2 = waker.try_clone().unwrap();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker2.wake();
        });

        let mut events = Vec::new();
        poller.wait(&mut events, None).unwrap();
        assert!(events.iter().any(|e| e.token == 0 && e.readable));
        handle.join().unwrap();

        receiver.drain();
        // Repeated wakes coalesce but never block the waker: the first wake
        // after a drain issues the syscall, every later one reports
        // coalesced until the receiver drains again.
        let mut issued = 0usize;
        for _ in 0..10_000 {
            if waker.wake() {
                issued += 1;
            }
        }
        assert_eq!(issued, 1, "all but the first wake coalesce");
        events.clear();
        poller.wait(&mut events, None).unwrap();
        assert_eq!(events[0].token, 0);
        receiver.drain();
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn write_vectored_drains_many_buffers_in_one_call() {
        let (tx, mut rx) = UnixStream::pair().unwrap();
        let parts: Vec<Vec<u8>> = (0u8..10).map(|i| vec![i; 16]).collect();
        let slices: Vec<std::io::IoSlice<'_>> =
            parts.iter().map(|p| std::io::IoSlice::new(p)).collect();
        let wrote = write_vectored(&tx, &slices).unwrap();
        assert_eq!(wrote, 160, "small gathered write is accepted whole");

        let mut got = vec![0u8; 160];
        rx.read_exact(&mut got).unwrap();
        let want: Vec<u8> = parts.concat();
        assert_eq!(got, want, "bytes arrive in iovec order");

        assert_eq!(write_vectored(&tx, &[]).unwrap(), 0, "empty is a no-op");
    }

    #[test]
    fn write_vectored_reports_would_block_on_full_pipe() {
        let (tx, _rx) = UnixStream::pair().unwrap();
        tx.set_nonblocking(true).unwrap();
        let chunk = vec![0xabu8; 64 * 1024];
        let slices = [std::io::IoSlice::new(&chunk)];
        loop {
            match write_vectored(&tx, &slices) {
                Ok(_) => continue,
                Err(e) => {
                    assert_eq!(e.kind(), io::ErrorKind::WouldBlock);
                    break;
                }
            }
        }
    }
}
