//! Shared fault-injection switchboard for the connection engine.
//!
//! A [`FaultSwitch`] is a tiny bundle of atomic knobs that the sharded
//! receive loop and the outbound connection pool consult on their hot
//! paths. All knobs default to "off" and cost one relaxed load when off,
//! so production paths pay nothing measurable for the hook.
//!
//! Two fault families live here because both ends of the engine need
//! them:
//!
//! * **latency injection** — artificial service delay, split into an
//!   inbound (`rx`) component applied by the shard loop before servicing
//!   a readable connection and an outbound (`tx`) component applied by
//!   the pool before sending a request;
//! * **probabilistic send drop** — the pool asks [`FaultSwitch::should_drop`]
//!   before each outbound request; a `true` answer simulates a lost
//!   packet by failing the attempt with a timeout. Drops are decided by a
//!   seeded per-switch LCG so a given seed produces the same drop
//!   sequence on every run (determinism is the whole point of the chaos
//!   harness).
//!
//! Partition faults (peer A cannot talk to peer B) are *not* modelled
//! here: they are address-directed, so they live in the pool's block
//! list where the remote address is known.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// Denominator for [`FaultSwitch::set_drop_per_million`]: a rate of
/// `PER_MILLION` drops every send.
pub const PER_MILLION: u32 = 1_000_000;

/// Atomic fault knobs shared between the engine and the pool.
///
/// Cheap to share behind an `Arc`; every accessor is lock-free.
#[derive(Debug)]
pub struct FaultSwitch {
    /// Inbound service delay, microseconds (0 = off).
    rx_latency_micros: AtomicU32,
    /// Outbound send delay, microseconds (0 = off).
    tx_latency_micros: AtomicU32,
    /// Probability of dropping an outbound send, in parts per million.
    drop_per_million: AtomicU32,
    /// LCG state for the drop decision stream.
    drop_rng: AtomicU64,
    /// When set, outbound hint batches are sent with a deliberately
    /// wrong authenticator tag — a byzantine peer whose frames parse but
    /// fail verification at every receiver.
    corrupt_hint_tags: AtomicBool,
}

impl Default for FaultSwitch {
    fn default() -> Self {
        FaultSwitch::new(0)
    }
}

impl FaultSwitch {
    /// Creates a switchboard with every fault off and the drop stream
    /// seeded with `seed`.
    pub fn new(seed: u64) -> FaultSwitch {
        FaultSwitch {
            rx_latency_micros: AtomicU32::new(0),
            tx_latency_micros: AtomicU32::new(0),
            drop_per_million: AtomicU32::new(0),
            // splitmix-style scramble so seed 0 and seed 1 diverge
            // immediately.
            drop_rng: AtomicU64::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1),
            corrupt_hint_tags: AtomicBool::new(false),
        }
    }

    /// Sets the inbound service delay (0 clears it).
    pub fn set_rx_latency_micros(&self, micros: u32) {
        self.rx_latency_micros.store(micros, Ordering::Relaxed);
    }

    /// Sets the outbound send delay (0 clears it).
    pub fn set_tx_latency_micros(&self, micros: u32) {
        self.tx_latency_micros.store(micros, Ordering::Relaxed);
    }

    /// Sets the outbound drop rate in parts per million (0 clears it;
    /// values above [`PER_MILLION`] drop everything).
    pub fn set_drop_per_million(&self, rate: u32) {
        self.drop_per_million.store(rate, Ordering::Relaxed);
    }

    /// Arms or disarms hint-batch tag corruption (byzantine-sender
    /// fault).
    pub fn set_corrupt_hint_tags(&self, on: bool) {
        self.corrupt_hint_tags.store(on, Ordering::Relaxed);
    }

    /// Whether outbound hint batches should carry a corrupted tag.
    pub fn corrupt_hint_tags(&self) -> bool {
        self.corrupt_hint_tags.load(Ordering::Relaxed)
    }

    /// Clears every fault at once (end of a chaos window).
    pub fn clear(&self) {
        self.set_rx_latency_micros(0);
        self.set_tx_latency_micros(0);
        self.set_drop_per_million(0);
        self.set_corrupt_hint_tags(false);
    }

    /// Current inbound delay, if any.
    pub fn rx_latency(&self) -> Option<std::time::Duration> {
        match self.rx_latency_micros.load(Ordering::Relaxed) {
            0 => None,
            us => Some(std::time::Duration::from_micros(u64::from(us))),
        }
    }

    /// Current outbound delay, if any.
    pub fn tx_latency(&self) -> Option<std::time::Duration> {
        match self.tx_latency_micros.load(Ordering::Relaxed) {
            0 => None,
            us => Some(std::time::Duration::from_micros(u64::from(us))),
        }
    }

    /// Current inbound delay in raw microseconds (0 = off); the meta
    /// namespace reads knobs back in the same unit they are set in.
    pub fn rx_latency_micros(&self) -> u32 {
        self.rx_latency_micros.load(Ordering::Relaxed)
    }

    /// Current outbound delay in raw microseconds (0 = off).
    pub fn tx_latency_micros(&self) -> u32 {
        self.tx_latency_micros.load(Ordering::Relaxed)
    }

    /// Current outbound drop rate in parts per million (0 = off).
    pub fn drop_per_million(&self) -> u32 {
        self.drop_per_million.load(Ordering::Relaxed)
    }

    /// Decides whether the next outbound send is dropped. Advances the
    /// seeded drop stream only while a drop rate is armed, so runs with
    /// faults off leave the stream untouched.
    pub fn should_drop(&self) -> bool {
        let rate = self.drop_per_million.load(Ordering::Relaxed);
        if rate == 0 {
            return false;
        }
        // Race note: concurrent callers interleave draws from one global
        // stream. The *set* of draws is seed-determined; attribution to
        // callers is scheduling-dependent, which is fine for a drop rate.
        let mut state = self.drop_rng.load(Ordering::Relaxed);
        loop {
            let next = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match self.drop_rng.compare_exchange_weak(
                state,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    let draw = (next >> 33) as u32 % PER_MILLION;
                    return draw < rate;
                }
                Err(actual) => state = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn defaults_are_all_off() {
        let f = FaultSwitch::default();
        assert_eq!(f.rx_latency(), None);
        assert_eq!(f.tx_latency(), None);
        for _ in 0..1000 {
            assert!(!f.should_drop());
        }
    }

    #[test]
    fn latency_knobs_round_trip_and_clear() {
        let f = FaultSwitch::new(7);
        f.set_rx_latency_micros(1500);
        f.set_tx_latency_micros(250);
        f.set_corrupt_hint_tags(true);
        assert_eq!(f.rx_latency(), Some(Duration::from_micros(1500)));
        assert_eq!(f.tx_latency(), Some(Duration::from_micros(250)));
        assert!(f.corrupt_hint_tags());
        f.clear();
        assert_eq!(f.rx_latency(), None);
        assert_eq!(f.tx_latency(), None);
        assert!(!f.corrupt_hint_tags());
    }

    #[test]
    fn drop_rate_extremes() {
        let f = FaultSwitch::new(1);
        f.set_drop_per_million(PER_MILLION);
        for _ in 0..100 {
            assert!(f.should_drop(), "rate 100% drops everything");
        }
        f.set_drop_per_million(0);
        for _ in 0..100 {
            assert!(!f.should_drop(), "rate 0 drops nothing");
        }
    }

    #[test]
    fn drop_stream_is_seed_deterministic() {
        let a = FaultSwitch::new(42);
        let b = FaultSwitch::new(42);
        let c = FaultSwitch::new(43);
        a.set_drop_per_million(250_000);
        b.set_drop_per_million(250_000);
        c.set_drop_per_million(250_000);
        let draw = |f: &FaultSwitch| (0..4096).map(|_| f.should_drop()).collect::<Vec<_>>();
        let (da, db, dc) = (draw(&a), draw(&b), draw(&c));
        assert_eq!(da, db, "same seed, same drop sequence");
        assert_ne!(da, dc, "different seed diverges");
        let dropped = da.iter().filter(|&&d| d).count();
        // 25% ± generous slack over 4096 draws.
        assert!((700..1350).contains(&dropped), "dropped {dropped}/4096");
    }
}
