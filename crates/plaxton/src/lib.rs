//! Self-configuring metadata hierarchy (§3.1.3).
//!
//! The paper's hint-distribution hierarchy configures itself with the
//! randomized tree-embedding algorithm of Plaxton, Rajaraman & Richa: every
//! node gets a pseudo-random ID (the MD5 of its address) and every object a
//! pseudo-random ID (the MD5 of its URL). The virtual tree for an object
//! climbs through nodes whose IDs match the object's ID in progressively
//! more low-order digits; each node picks the *nearest* eligible parent at
//! every level, which gives the algorithm its locality property. The root
//! for an object is the node matching it in the most low-order digits, so
//! different objects get different roots (load distribution), and nodes
//! joining or leaving disturb only the table entries that referenced them
//! (fault tolerance / automatic reconfiguration).
//!
//! This crate implements the embedding over an explicit node set with
//! coordinates (distances matter for locality), digit-surrogate routing so
//! every source converges on the same root, and incremental node
//! join/leave with a changed-entry count so tests can verify the
//! "disturbs very little" property.
//!
//! # Examples
//!
//! ```
//! use bh_plaxton::{PlaxtonTree, NodeSpec};
//!
//! let nodes: Vec<NodeSpec> = (0..16)
//!     .map(|i| NodeSpec::from_address(&format!("10.0.0.{i}:3128"), (i as f64, 0.0)))
//!     .collect();
//! let tree = PlaxtonTree::build(nodes, 1).unwrap();
//! let object = bh_md5::url_key("http://example.com/index.html");
//! // Every source reaches the same root.
//! let root = tree.root_of(object);
//! for from in 0..16 {
//!     assert_eq!(*tree.route(from, object).last().unwrap(), root);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::fmt;

/// Description of one node entering the embedding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// The node's pseudo-random 64-bit ID (low 64 bits of the MD5 of its
    /// address, per the paper).
    pub id: u64,
    /// Coordinates used for nearest-parent selection (any metric embedding
    /// of network distance works; the examples use the plane).
    pub position: (f64, f64),
}

impl NodeSpec {
    /// Builds a spec whose ID is the MD5 of `address` (e.g. `"ip:port"`).
    pub fn from_address(address: &str, position: (f64, f64)) -> Self {
        NodeSpec {
            id: bh_md5::node_key(address),
            position,
        }
    }
}

/// Errors from building or editing a tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaxtonError {
    /// Two nodes share an ID (MD5 collision or duplicate address).
    DuplicateNodeId(u64),
    /// The node set is empty.
    NoNodes,
    /// Arity bits out of the supported range `1..=8`.
    BadArity(u32),
    /// Referenced a node index that does not exist (or was removed).
    NoSuchNode(usize),
}

impl fmt::Display for PlaxtonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaxtonError::DuplicateNodeId(id) => write!(f, "duplicate node id {id:#x}"),
            PlaxtonError::NoNodes => f.write_str("node set is empty"),
            PlaxtonError::BadArity(b) => write!(f, "arity bits {b} outside 1..=8"),
            PlaxtonError::NoSuchNode(i) => write!(f, "no such node index {i}"),
        }
    }
}

impl std::error::Error for PlaxtonError {}

#[derive(Debug, Clone)]
struct Node {
    spec: NodeSpec,
    alive: bool,
    /// `table[level * arity + digit]` = nearest node matching my bottom
    /// `level` digits followed by `digit`; `usize::MAX` = none exists.
    table: Vec<usize>,
}

const NONE: usize = usize::MAX;

/// The Plaxton embedding over a set of nodes. See the [crate docs](crate).
#[derive(Debug, Clone)]
pub struct PlaxtonTree {
    nodes: Vec<Node>,
    arity_bits: u32,
    levels: usize,
    alive: usize,
}

impl PlaxtonTree {
    /// Builds the embedding.
    ///
    /// `arity_bits` selects the tree arity `b = 2^arity_bits` (the paper's
    /// binary example is `arity_bits = 1`; flatter hierarchies use more).
    ///
    /// # Errors
    ///
    /// Returns [`PlaxtonError::NoNodes`], [`PlaxtonError::BadArity`], or
    /// [`PlaxtonError::DuplicateNodeId`].
    pub fn build(specs: Vec<NodeSpec>, arity_bits: u32) -> Result<Self, PlaxtonError> {
        if specs.is_empty() {
            return Err(PlaxtonError::NoNodes);
        }
        if !(1..=8).contains(&arity_bits) {
            return Err(PlaxtonError::BadArity(arity_bits));
        }
        let mut seen = std::collections::HashSet::new();
        for s in &specs {
            if !seen.insert(s.id) {
                return Err(PlaxtonError::DuplicateNodeId(s.id));
            }
        }
        // Tables cover the full 64-bit ID depth: routes occasionally need
        // more than log_b(N) levels when node IDs collide in many
        // low-order bits, and a truncated table would strand them. The
        // memory cost is tiny (levels × arity entries per node).
        let n = specs.len();
        let levels = (64 / arity_bits) as usize;
        let mut tree = PlaxtonTree {
            nodes: specs
                .into_iter()
                .map(|spec| Node {
                    spec,
                    alive: true,
                    table: Vec::new(),
                })
                .collect(),
            arity_bits,
            levels,
            alive: n,
        };
        for i in 0..tree.nodes.len() {
            tree.nodes[i].table = tree.compute_table(i);
        }
        Ok(tree)
    }

    /// The tree arity `b`.
    pub fn arity(&self) -> u64 {
        1u64 << self.arity_bits
    }

    /// Number of levels in the parent tables.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.alive
    }

    /// Whether no live nodes remain.
    pub fn is_empty(&self) -> bool {
        self.alive == 0
    }

    /// Whether node `i` is live.
    pub fn is_alive(&self, i: usize) -> bool {
        self.nodes.get(i).is_some_and(|n| n.alive)
    }

    /// The spec of node `i`, if it exists (live or not).
    pub fn node(&self, i: usize) -> Option<&NodeSpec> {
        self.nodes.get(i).map(|n| &n.spec)
    }

    fn digit(&self, id: u64, level: usize) -> u64 {
        (id >> (level as u32 * self.arity_bits)) & (self.arity() - 1)
    }

    fn low_digits_match(&self, a: u64, b: u64, levels: usize) -> bool {
        if levels == 0 {
            return true;
        }
        let bits = (levels as u32 * self.arity_bits).min(64);
        if bits >= 64 {
            return a == b;
        }
        let mask = (1u64 << bits) - 1;
        a & mask == b & mask
    }

    fn dist(&self, a: usize, b: usize) -> f64 {
        let pa = self.nodes[a].spec.position;
        let pb = self.nodes[b].spec.position;
        let dx = pa.0 - pb.0;
        let dy = pa.1 - pb.1;
        (dx * dx + dy * dy).sqrt()
    }

    /// Computes node `i`'s full parent table: for each `(level, digit)`, the
    /// nearest live node matching `i`'s bottom `level` digits plus `digit`.
    fn compute_table(&self, i: usize) -> Vec<usize> {
        let b = self.arity() as usize;
        let my_id = self.nodes[i].spec.id;
        let mut table = vec![NONE; self.levels * b];
        for level in 0..self.levels {
            for digit in 0..b as u64 {
                let want_bits = level + 1;
                let target_prefix = (my_id & low_mask(level as u32 * self.arity_bits))
                    | (digit << (level as u32 * self.arity_bits));
                let mut best = NONE;
                let mut best_d = f64::INFINITY;
                for (j, node) in self.nodes.iter().enumerate() {
                    if !node.alive {
                        continue;
                    }
                    if self.low_digits_match(node.spec.id, target_prefix, want_bits) {
                        let d = if i == j { 0.0 } else { self.dist(i, j) };
                        if d < best_d
                            || (d == best_d
                                && (best == NONE || node.spec.id < self.nodes[best].spec.id))
                        {
                            best = j;
                            best_d = d;
                        }
                    }
                }
                table[level * b + digit as usize] = best;
            }
        }
        table
    }

    /// Node `i`'s chosen parent at `level` for `digit`, if one exists.
    pub fn parent(&self, i: usize, level: usize, digit: u64) -> Option<usize> {
        let b = self.arity() as usize;
        let entry = *self.nodes.get(i)?.table.get(level * b + digit as usize)?;
        (entry != NONE).then_some(entry)
    }

    /// The deterministic digit sequence routes for `object_key` follow,
    /// including surrogate detours, and the set sizes along the way.
    ///
    /// Digit choice at each level depends only on the object key and the set
    /// of live IDs, so every source converges on the same root (Tapestry-
    /// style surrogate routing).
    fn digit_sequence(&self, object_key: u64) -> (Vec<u64>, usize) {
        let b = self.arity();
        let mut candidates: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].alive)
            .collect();
        let mut digits = Vec::new();
        let mut prefix = 0u64;
        let mut level = 0usize;
        while candidates.len() > 1 && level < 64 / self.arity_bits as usize {
            let desired = self.digit(object_key, level);
            let mut chosen = None;
            for delta in 0..b {
                let d = (desired + delta) % b;
                let test_prefix = prefix | (d << (level as u32 * self.arity_bits));
                let matched: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&i| {
                        self.low_digits_match(self.nodes[i].spec.id, test_prefix, level + 1)
                    })
                    .collect();
                if !matched.is_empty() {
                    chosen = Some((d, matched));
                    break;
                }
            }
            let (d, matched) = chosen.expect("candidates non-empty implies some digit matches");
            prefix |= d << (level as u32 * self.arity_bits);
            digits.push(d);
            candidates = matched;
            level += 1;
        }
        let root = *candidates
            .iter()
            .min_by_key(|&&i| self.nodes[i].spec.id)
            .expect("non-empty");
        (digits, root)
    }

    /// The unique root node for `object_key`.
    ///
    /// # Panics
    ///
    /// Panics if the tree has no live nodes.
    pub fn root_of(&self, object_key: u64) -> usize {
        assert!(self.alive > 0, "root_of on empty tree");
        self.digit_sequence(object_key).1
    }

    /// The path (inclusive of both endpoints) a metadata update starting at
    /// `from` takes toward the root of `object_key`. Each hop follows the
    /// current node's nearest-parent table for the deterministic digit
    /// sequence; the final element is [`PlaxtonTree::root_of`]`(object_key)`.
    ///
    /// # Errors
    ///
    /// Returns [`PlaxtonError::NoSuchNode`] if `from` is not a live node.
    pub fn route(&self, from: usize, object_key: u64) -> Vec<usize> {
        assert!(
            self.nodes.get(from).is_some_and(|n| n.alive),
            "route from dead or unknown node {from}"
        );
        let (digits, root) = self.digit_sequence(object_key);
        let b = self.arity() as usize;
        let mut path = vec![from];
        let mut cur = from;
        for (level, &d) in digits.iter().enumerate() {
            if cur == root {
                break;
            }
            // If we already match the prefix through this level, no hop needed.
            let bits = ((level + 1) as u32) * self.arity_bits;
            let target_prefix = fold_prefix(&digits[..=level], self.arity_bits);
            if self.low_digits_match(self.nodes[cur].spec.id, target_prefix, level + 1) {
                let _ = bits;
                continue;
            }
            let next = self.nodes[cur].table[level * b + d as usize];
            debug_assert_ne!(next, NONE, "digit sequence guarantees an eligible parent");
            if next == cur {
                continue;
            }
            path.push(next);
            cur = next;
        }
        if cur != root {
            path.push(root);
        }
        path
    }

    /// Marks node `i` dead and repairs every table entry that referenced it.
    /// Returns the number of table entries that changed (the paper's claim:
    /// "this reassignment disturbs very little of the previous
    /// configuration").
    ///
    /// # Errors
    ///
    /// Returns [`PlaxtonError::NoSuchNode`] if `i` is unknown or dead.
    pub fn remove_node(&mut self, i: usize) -> Result<usize, PlaxtonError> {
        if !self.is_alive(i) {
            return Err(PlaxtonError::NoSuchNode(i));
        }
        self.nodes[i].alive = false;
        self.alive -= 1;
        let b = self.arity() as usize;
        let mut changed = 0usize;
        for j in 0..self.nodes.len() {
            if !self.nodes[j].alive {
                continue;
            }
            for level in 0..self.levels {
                for digit in 0..b {
                    if self.nodes[j].table[level * b + digit] == i {
                        let repaired = self.find_parent(j, level, digit as u64);
                        self.nodes[j].table[level * b + digit] = repaired;
                        changed += 1;
                    }
                }
            }
        }
        Ok(changed)
    }

    /// Adds a node and wires it (and everyone else's affected entries) in.
    /// Returns `(index, entries_changed_in_existing_tables)`.
    ///
    /// # Errors
    ///
    /// Returns [`PlaxtonError::DuplicateNodeId`] if the ID is already live.
    pub fn add_node(&mut self, spec: NodeSpec) -> Result<(usize, usize), PlaxtonError> {
        if self.nodes.iter().any(|n| n.alive && n.spec.id == spec.id) {
            return Err(PlaxtonError::DuplicateNodeId(spec.id));
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            spec,
            alive: true,
            // bh-lint: allow(no-hot-alloc, reason = "capacity-0 placeholder, replaced wholesale by compute_table before any push; churn repair runs per membership event, not per request")
            table: Vec::new(),
        });
        self.alive += 1;
        self.nodes[idx].table = self.compute_table(idx);
        // Existing nodes adopt the newcomer where it is nearer (or fills a hole).
        let b = self.arity() as usize;
        let mut changed = 0usize;
        for j in 0..idx {
            if !self.nodes[j].alive {
                continue;
            }
            for level in 0..self.levels {
                let my_id = self.nodes[j].spec.id;
                let prefix_bits = level as u32 * self.arity_bits;
                for digit in 0..b as u64 {
                    let target_prefix = (my_id & low_mask(prefix_bits)) | (digit << prefix_bits);
                    if !self.low_digits_match(self.nodes[idx].spec.id, target_prefix, level + 1) {
                        continue;
                    }
                    let slot = level * b + digit as usize;
                    let cur = self.nodes[j].table[slot];
                    let new_d = if j == idx { 0.0 } else { self.dist(j, idx) };
                    let better = match cur {
                        NONE => true,
                        c => new_d < if c == j { 0.0 } else { self.dist(j, c) },
                    };
                    if better {
                        self.nodes[j].table[slot] = idx;
                        changed += 1;
                    }
                }
            }
        }
        Ok((idx, changed))
    }

    fn find_parent(&self, i: usize, level: usize, digit: u64) -> usize {
        let my_id = self.nodes[i].spec.id;
        let prefix_bits = level as u32 * self.arity_bits;
        let target_prefix = (my_id & low_mask(prefix_bits)) | (digit << prefix_bits);
        let mut best = NONE;
        let mut best_d = f64::INFINITY;
        for (j, node) in self.nodes.iter().enumerate() {
            if !node.alive {
                continue;
            }
            if self.low_digits_match(node.spec.id, target_prefix, level + 1) {
                let d = if i == j { 0.0 } else { self.dist(i, j) };
                if d < best_d
                    || (d == best_d && (best == NONE || node.spec.id < self.nodes[best].spec.id))
                {
                    best = j;
                    best_d = d;
                }
            }
        }
        best
    }

    /// Total live table entries (for reconfiguration-churn ratios).
    pub fn table_entries(&self) -> usize {
        self.alive * self.levels * self.arity() as usize
    }
}

fn low_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

fn fold_prefix(digits: &[u64], arity_bits: u32) -> u64 {
    let mut p = 0u64;
    for (level, &d) in digits.iter().enumerate() {
        p |= d << (level as u32 * arity_bits);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_nodes(n: usize) -> Vec<NodeSpec> {
        (0..n)
            .map(|i| {
                NodeSpec::from_address(
                    &format!("192.168.{}.{}:3128", i / 16, i % 16),
                    ((i % 8) as f64, (i / 8) as f64),
                )
            })
            .collect()
    }

    #[test]
    fn build_rejects_bad_inputs() {
        assert_eq!(
            PlaxtonTree::build(vec![], 1).unwrap_err(),
            PlaxtonError::NoNodes
        );
        let nodes = grid_nodes(4);
        assert_eq!(
            PlaxtonTree::build(nodes.clone(), 0).unwrap_err(),
            PlaxtonError::BadArity(0)
        );
        assert_eq!(
            PlaxtonTree::build(nodes.clone(), 9).unwrap_err(),
            PlaxtonError::BadArity(9)
        );
        let mut dup = nodes.clone();
        dup.push(nodes[0]);
        assert!(matches!(
            PlaxtonTree::build(dup, 1).unwrap_err(),
            PlaxtonError::DuplicateNodeId(_)
        ));
    }

    #[test]
    fn all_sources_converge_on_one_root() {
        let tree = PlaxtonTree::build(grid_nodes(32), 2).expect("build");
        for obj in 0..50u64 {
            let key = bh_md5::md5(obj.to_le_bytes()).low64();
            let root = tree.root_of(key);
            for from in 0..32 {
                let path = tree.route(from, key);
                assert_eq!(path[0], from);
                assert_eq!(
                    *path.last().expect("non-empty"),
                    root,
                    "object {obj} from {from}"
                );
            }
        }
    }

    #[test]
    fn routes_are_loop_free_and_short() {
        let tree = PlaxtonTree::build(grid_nodes(64), 2).expect("build");
        for obj in 0..100u64 {
            let key = bh_md5::md5(obj.to_le_bytes()).low64();
            for from in [0usize, 17, 63] {
                let path = tree.route(from, key);
                let distinct: std::collections::HashSet<_> = path.iter().collect();
                assert_eq!(distinct.len(), path.len(), "loop in path {path:?}");
                assert!(
                    path.len() <= tree.levels() + 2,
                    "path {path:?} longer than levels+2"
                );
            }
        }
    }

    #[test]
    fn roots_spread_across_nodes() {
        // "if there are N nodes, each node will be the root for roughly 1/N
        // of the objects."
        let n = 32;
        let tree = PlaxtonTree::build(grid_nodes(n), 1).expect("build");
        let mut counts = vec![0u32; n];
        let objects = 4_000;
        for obj in 0..objects as u64 {
            let key = bh_md5::md5(obj.to_le_bytes()).low64();
            counts[tree.root_of(key)] += 1;
        }
        let expected = objects as f64 / n as f64;
        let max = *counts.iter().max().expect("non-empty") as f64;
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        assert!(nonzero > n / 2, "only {nonzero}/{n} nodes ever root");
        assert!(
            max < expected * 6.0,
            "hottest root {max} vs expected {expected}"
        );
    }

    #[test]
    fn locality_parents_nearer_at_low_levels() {
        // "Near the leaves of the virtual trees, the distance between
        // parents and children tends to be small; near the roots, this
        // distance is generally larger."
        let tree = PlaxtonTree::build(grid_nodes(64), 1).expect("build");
        let b = tree.arity() as usize;
        let mut level_dist = vec![(0.0f64, 0u32); tree.levels()];
        for i in 0..64 {
            for (level, slot) in level_dist.iter_mut().enumerate() {
                for d in 0..b as u64 {
                    if let Some(p) = tree.parent(i, level, d) {
                        if p != i {
                            let dx =
                                tree.node(i).unwrap().position.0 - tree.node(p).unwrap().position.0;
                            let dy =
                                tree.node(i).unwrap().position.1 - tree.node(p).unwrap().position.1;
                            slot.0 += (dx * dx + dy * dy).sqrt();
                            slot.1 += 1;
                        }
                    }
                }
            }
        }
        let avg = |l: usize| level_dist[l].0 / level_dist[l].1.max(1) as f64;
        // Compare the lowest populated level against a higher one.
        assert!(
            avg(0) < avg(3.min(tree.levels() - 1)) + 1e-9,
            "level-0 parents ({}) should be nearer than level-3 parents ({})",
            avg(0),
            avg(3.min(tree.levels() - 1))
        );
    }

    #[test]
    fn remove_node_disturbs_little_and_preserves_convergence() {
        let mut tree = PlaxtonTree::build(grid_nodes(64), 2).expect("build");
        let total_entries = tree.table_entries();
        let changed = tree.remove_node(20).expect("remove");
        assert!(
            (changed as f64) < total_entries as f64 * 0.25,
            "{changed}/{total_entries} entries changed on one departure"
        );
        assert!(!tree.is_alive(20));
        assert_eq!(tree.len(), 63);
        // Still converges, and never routes through the dead node.
        for obj in 0..30u64 {
            let key = bh_md5::md5(obj.to_le_bytes()).low64();
            let root = tree.root_of(key);
            for from in [0usize, 5, 40] {
                let path = tree.route(from, key);
                assert!(!path.contains(&20), "routed through dead node: {path:?}");
                assert_eq!(*path.last().unwrap(), root);
            }
        }
    }

    #[test]
    fn remove_twice_errors() {
        let mut tree = PlaxtonTree::build(grid_nodes(8), 1).expect("build");
        tree.remove_node(3).expect("first removal");
        assert_eq!(
            tree.remove_node(3).unwrap_err(),
            PlaxtonError::NoSuchNode(3)
        );
        assert_eq!(
            tree.remove_node(99).unwrap_err(),
            PlaxtonError::NoSuchNode(99)
        );
    }

    #[test]
    fn add_node_wires_in_and_preserves_convergence() {
        let mut tree = PlaxtonTree::build(grid_nodes(31), 2).expect("build");
        let newcomer = NodeSpec::from_address("10.9.9.9:3128", (3.5, 1.5));
        let (idx, _changed) = tree.add_node(newcomer).expect("add");
        assert_eq!(tree.len(), 32);
        assert!(tree.is_alive(idx));
        for obj in 0..30u64 {
            let key = bh_md5::md5(obj.to_le_bytes()).low64();
            let root = tree.root_of(key);
            for from in 0..tree.len() {
                assert_eq!(*tree.route(from, key).last().unwrap(), root);
            }
        }
    }

    #[test]
    fn add_duplicate_id_rejected() {
        let mut tree = PlaxtonTree::build(grid_nodes(8), 1).expect("build");
        let dup = *tree.node(0).expect("exists");
        assert!(matches!(
            tree.add_node(dup),
            Err(PlaxtonError::DuplicateNodeId(_))
        ));
    }

    #[test]
    fn single_node_is_root_of_everything() {
        let tree = PlaxtonTree::build(grid_nodes(1), 1).expect("build");
        for obj in 0..10u64 {
            let key = bh_md5::md5(obj.to_le_bytes()).low64();
            assert_eq!(tree.root_of(key), 0);
            assert_eq!(tree.route(0, key), vec![0]);
        }
    }

    #[test]
    fn wider_arity_shortens_paths() {
        let binary = PlaxtonTree::build(grid_nodes(64), 1).expect("build");
        let hex = PlaxtonTree::build(grid_nodes(64), 4).expect("build");
        let avg_len = |tree: &PlaxtonTree| {
            let mut total = 0usize;
            let mut count = 0usize;
            for obj in 0..60u64 {
                let key = bh_md5::md5(obj.to_le_bytes()).low64();
                for from in [0usize, 21, 42] {
                    total += tree.route(from, key).len();
                    count += 1;
                }
            }
            total as f64 / count as f64
        };
        assert!(
            avg_len(&hex) < avg_len(&binary),
            "16-ary paths ({}) should be shorter than binary ({})",
            avg_len(&hex),
            avg_len(&binary)
        );
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Convergence holds for arbitrary node counts, arities, seeds.
            #[test]
            fn convergence(n in 2usize..40, arity_bits in 1u32..5, salt in any::<u64>()) {
                let nodes: Vec<NodeSpec> = (0..n)
                    .map(|i| NodeSpec {
                        id: bh_md5::md5((salt, i as u64).0.to_le_bytes())
                            .low64()
                            .wrapping_add((i as u64).wrapping_mul(0x9E3779B97F4A7C15)),
                        position: ((i % 7) as f64, (i / 7) as f64),
                    })
                    .collect();
                let tree = match PlaxtonTree::build(nodes, arity_bits) {
                    Ok(t) => t,
                    Err(PlaxtonError::DuplicateNodeId(_)) => return Ok(()),
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                };
                for obj in 0..5u64 {
                    let key = bh_md5::md5((salt ^ obj).to_le_bytes()).low64();
                    let root = tree.root_of(key);
                    for from in 0..n {
                        prop_assert_eq!(*tree.route(from, key).last().unwrap(), root);
                    }
                }
            }
        }
    }
}
