//! The item-parser layer: lifts the lexer's flat token stream into a
//! per-workspace symbol table — function items (with impl owners),
//! call sites, lock-acquisition sites, panic idents, and allocation
//! idioms — plus an approximate, name-based call graph.
//!
//! This is deliberately not name resolution. The precision contract
//! (documented in LINTS.md and DESIGN.md) is:
//!
//! * **Calls resolve by bare name.** A call site `foo(..)` or
//!   `x.foo(..)` resolves to every non-test workspace `fn foo` — unless
//!   the name is on [`CALL_IGNORE`] (ubiquitous std method names whose
//!   edges would be overwhelmingly false) or has more than
//!   [`AMBIGUITY_CAP`] candidates. False negatives are preferred over
//!   false edges: a lint that cries wolf gets allowed into silence.
//! * **Lock identity is `{crate}/{receiver}`.** `inner.store.lock()`
//!   and `self.store.lock()` are the same lock; two fields named
//!   `store` in different crates are not. Receivers are canonicalized
//!   through index expressions (`shards[i].lock()`), pass-through
//!   adapters (`.as_ref().unwrap().lock()`), closure parameters
//!   (`.map(|s| s.lock())` resolves through the `.iter()` chain), and
//!   `for`-loop bindings. An unresolvable one-letter receiver gets a
//!   function-local id so unrelated temporaries never unify.
//! * **Guard scope follows Rust drop rules, approximately.** A
//!   let-bound guard (`let g = x.lock();`) is held to the end of its
//!   block or an explicit `drop(g)`; a guard consumed in a larger
//!   expression is a temporary that dies at the statement's `;`, except
//!   in `if let`/`while let`/`match` scrutinees and `for` heads, where
//!   it extends over the attached block (the 2021-edition footgun the
//!   lock-order rule exists to see).

use crate::lexer::{brace_match, test_mod_spans, Lexed, Tok, Token};
use std::collections::BTreeMap;

/// Panic-family idents recorded as panic sites (exact matches, so
/// `unwrap_or_else` stays invisible). Shared with the depth-0 rule.
pub const PANIC_IDENTS: [&str; 6] = [
    "unwrap",
    "expect",
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
];

/// Ubiquitous method names never used as call-graph edges: they name
/// std-library methods far more often than the workspace functions that
/// happen to share the name, and each false edge risks a false finding
/// someone then "fixes" with a bogus allow.
const CALL_IGNORE: [&str; 62] = [
    "as_mut",
    "as_ref",
    "build",
    "clear",
    "clone",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "default",
    "drain",
    "eq",
    "extend",
    "fmt",
    "from",
    "get",
    "get_mut",
    "hash",
    "index",
    "insert",
    "into",
    "is_empty",
    "iter",
    "iter_mut",
    "keys",
    "len",
    "lookup",
    "map",
    "max",
    "min",
    "new",
    "next",
    "open",
    "partial_cmp",
    "pop",
    "push",
    "push_back",
    "push_front",
    "record",
    "recv",
    "register",
    "remove",
    "reserve",
    "resize",
    "run",
    "send",
    "shutdown",
    "snapshot",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "spawn",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "try_from",
    "try_into",
    "values",
    "values_mut",
    "with_capacity",
];

/// A call name with more candidates than this is treated as ambiguous
/// and dropped from the graph rather than fanned out to everything.
const AMBIGUITY_CAP: usize = 4;

/// Adapter methods the receiver walk looks through: `x.field.as_ref()
/// .unwrap().lock()` locks `field`, not the adapter's result.
const RECEIVER_PASSTHROUGH: [&str; 7] = [
    "as_deref",
    "as_mut",
    "as_ref",
    "borrow",
    "borrow_mut",
    "expect",
    "unwrap",
];

/// A lock known to be held at some site, with the line it was acquired.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct HeldLock {
    /// Canonical lock id, `{crate}/{receiver}`.
    pub lock: String,
    /// 1-based line of the acquisition.
    pub line: u32,
}

/// One `.lock()` / `.read()` / `.write()` acquisition.
#[derive(Debug, Clone)]
pub struct AcquireSite {
    /// Canonical lock id being acquired.
    pub lock: String,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// Locks already held when this one is taken.
    pub held: Vec<HeldLock>,
}

/// One call site, `name(..)` or `recv.name(..)`.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Bare callee name.
    pub name: String,
    /// 1-based line of the call.
    pub line: u32,
    /// Locks held at the call.
    pub held: Vec<HeldLock>,
    /// True when the call's result is let-bound and ends the
    /// initializer (`let g = x.lock_shard(i);`) — the shape that keeps
    /// a returned guard alive.
    pub bound: bool,
}

/// One function item and everything the rules need to know about it.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Repo-relative file.
    pub file: String,
    /// Bare function name.
    pub name: String,
    /// Crate the file belongs to (second path component).
    pub krate: String,
    /// Surrounding `impl` type, if any.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True inside a `#[cfg(test)] mod` span.
    pub in_test: bool,
    /// True when the signature mentions a `*Guard` type — callers that
    /// let-bind the result keep the callee's locks alive.
    pub returns_guard: bool,
    /// Lock acquisitions, in source order.
    pub acquires: Vec<AcquireSite>,
    /// Call sites, in source order.
    pub calls: Vec<CallSite>,
    /// Panic-family idents `(ident, line)`, in source order.
    pub panics: Vec<(String, u32)>,
    /// Allocation idioms `(idiom, line)`, in source order.
    pub allocs: Vec<(String, u32)>,
}

/// The workspace symbol table and call graph.
#[derive(Debug, Default)]
pub struct Model {
    /// Every parsed function, in (file, source) order.
    pub fns: Vec<FnInfo>,
    /// Name → indices of non-test functions, for call resolution.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

/// Only library sources participate in the symbol table: test and
/// bench binaries cannot sit on a data-path call chain.
fn is_model_file(rel: &str) -> bool {
    rel.starts_with("crates/") && rel.contains("/src/")
}

fn crate_of(rel: &str) -> String {
    rel.split('/').nth(1).unwrap_or("ws").to_string()
}

impl Model {
    /// Parses every in-scope file into the symbol table.
    pub fn build(files: &BTreeMap<String, Lexed>) -> Model {
        let mut model = Model::default();
        for (rel, lx) in files {
            if is_model_file(rel) {
                parse_file(rel, lx, &mut model.fns);
            }
        }
        for (i, f) in model.fns.iter().enumerate() {
            if !f.in_test {
                model.by_name.entry(f.name.clone()).or_default().push(i);
            }
        }
        model
    }

    /// Call-graph targets for a callee name; empty for ignored or
    /// ambiguous names (see module docs for the precision contract).
    pub fn resolve(&self, name: &str) -> &[usize] {
        if CALL_IGNORE.contains(&name) {
            return &[];
        }
        match self.by_name.get(name) {
            Some(v) if v.len() <= AMBIGUITY_CAP => v,
            _ => &[],
        }
    }
}

/// Keywords that read like calls when followed by `(`.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "for"
            | "match"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "move"
            | "in"
            | "as"
            | "else"
            | "let"
            | "fn"
            | "ref"
            | "mut"
            | "unsafe"
            | "where"
            | "use"
            | "impl"
            | "dyn"
            | "box"
            | "await"
    )
}

fn tok_ident(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn tok_punct(tokens: &[Token], i: usize, c: char) -> bool {
    tokens.get(i).map(|t| &t.tok) == Some(&Tok::Punct(c))
}

/// Scans one file for `impl` owners and `fn` items, parsing each body.
fn parse_file(rel: &str, lx: &Lexed, out: &mut Vec<FnInfo>) {
    let tokens = &lx.tokens;
    let tests = test_mod_spans(tokens);
    let krate = crate_of(rel);
    // (owner, body-close index) for enclosing impl blocks.
    let mut impls: Vec<(String, usize)> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        impls.retain(|&(_, close)| close > i);
        match tok_ident(tokens, i) {
            Some("impl") => {
                if let Some((owner, open)) = impl_owner(tokens, i) {
                    if let Some(close) = brace_match(tokens, open) {
                        impls.push((owner, close));
                        i = open + 1;
                        continue;
                    }
                }
                i += 1;
            }
            Some("fn") => {
                let Some(name) = tok_ident(tokens, i + 1) else {
                    i += 1;
                    continue;
                };
                // The body opens at the first `{` after the signature;
                // a `;` first means a bodyless trait declaration.
                let mut k = i + 2;
                while k < tokens.len() && !tok_punct(tokens, k, '{') && !tok_punct(tokens, k, ';') {
                    k += 1;
                }
                if !tok_punct(tokens, k, '{') {
                    i = k + 1;
                    continue;
                }
                let Some(close) = brace_match(tokens, k) else {
                    i = k + 1;
                    continue;
                };
                let line = tokens[i].line;
                let returns_guard = tokens[i + 2..k]
                    .iter()
                    .any(|t| matches!(&t.tok, Tok::Ident(s) if s.ends_with("Guard")));
                let in_test = tests.iter().any(|&(a, b)| line >= a && line <= b);
                let mut info = FnInfo {
                    file: rel.to_string(),
                    name: name.to_string(),
                    krate: krate.clone(),
                    owner: impls.last().map(|(o, _)| o.clone()),
                    line,
                    in_test,
                    returns_guard,
                    acquires: Vec::new(),
                    calls: Vec::new(),
                    panics: Vec::new(),
                    allocs: Vec::new(),
                };
                parse_body(tokens, k, close, &mut info);
                out.push(info);
                i = close + 1;
            }
            _ => i += 1,
        }
    }
}

/// Owner type of an `impl` header starting at `tokens[at] == impl`,
/// with the index of the body's `{`. For `impl<G> Trait for Type`, the
/// owner is the first type ident after the (last) `for`.
fn impl_owner(tokens: &[Token], at: usize) -> Option<(String, usize)> {
    let mut angle = 0i64;
    let mut owner: Option<String> = None;
    let mut after_for = false;
    let mut j = at + 1;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct('{') if angle <= 0 => {
                return owner.map(|o| (o, j));
            }
            Tok::Punct(';') => return None,
            Tok::Ident(s) if angle <= 0 => {
                if s == "for" {
                    after_for = true;
                    owner = None;
                } else if owner.is_none() || (after_for && owner.is_none()) {
                    owner = Some(s.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// A lock (or synthesized guard) bound in some scope.
#[derive(Debug, Clone)]
struct Bound {
    lock: String,
    line: u32,
    binding: Option<String>,
}

fn held_snapshot(frames: &[Vec<Bound>], temps: &[Bound]) -> Vec<HeldLock> {
    frames
        .iter()
        .flatten()
        .chain(temps.iter())
        .map(|b| HeldLock {
            lock: b.lock.clone(),
            line: b.line,
        })
        .collect()
}

/// Walks a fn body `tokens[open..=close]`, tracking lexical lock scope.
fn parse_body(tokens: &[Token], open: usize, close: usize, info: &mut FnInfo) {
    let mut frames: Vec<Vec<Bound>> = vec![Vec::new()];
    let mut temps: Vec<Bound> = Vec::new();
    // Parens + brackets; `;` only ends a statement at depth 0.
    let mut depth = 0i64;
    // Current-statement shape, for guard-lifetime decisions.
    let mut let_binding: Option<String> = None;
    let mut await_binding = false;
    let mut seen_if = false;
    let mut seen_let = false;
    let mut seen_match = false;
    let mut seen_for = false;

    let mut i = open + 1;
    while i < close {
        let line = tokens[i].line;
        match &tokens[i].tok {
            Tok::Punct('(') | Tok::Punct('[') => {
                // `.lock()` / `.read()` / `.write()` were consumed by
                // the acquisition arm below; this is ordinary grouping.
                depth += 1;
                i += 1;
            }
            Tok::Punct(')') | Tok::Punct(']') => {
                depth -= 1;
                i += 1;
            }
            Tok::Punct('{') => {
                frames.push(Vec::new());
                // Scrutinee/head temporaries of `if let`, `while let`,
                // `match`, and `for` live for the attached block; plain
                // condition temporaries die here.
                let extend = (seen_let && seen_if) || seen_match || seen_for;
                let migrated = std::mem::take(&mut temps);
                if extend {
                    if let Some(frame) = frames.last_mut() {
                        frame.extend(migrated);
                    }
                }
                (seen_if, seen_let, seen_match, seen_for) = (false, false, false, false);
                let_binding = None;
                await_binding = false;
                i += 1;
            }
            Tok::Punct('}') => {
                frames.pop();
                temps.clear();
                (seen_if, seen_let, seen_match, seen_for) = (false, false, false, false);
                let_binding = None;
                await_binding = false;
                i += 1;
            }
            Tok::Punct(';') if depth == 0 => {
                temps.clear();
                (seen_if, seen_let, seen_match, seen_for) = (false, false, false, false);
                let_binding = None;
                await_binding = false;
                i += 1;
            }
            // Acquisition: `. lock ( )` with empty parens, which is
            // what tells a `RwLock::{read,write}` apart from the
            // argument-taking `io::{Read,Write}` methods.
            Tok::Punct('.')
                if matches!(tok_ident(tokens, i + 1), Some("lock" | "read" | "write"))
                    && tok_punct(tokens, i + 2, '(')
                    && tok_punct(tokens, i + 3, ')') =>
            {
                let lock = receiver_lock_id(tokens, i, open, info);
                info.acquires.push(AcquireSite {
                    lock: lock.clone(),
                    line,
                    held: held_snapshot(&frames, &temps),
                });
                let ends_initializer = tok_punct(tokens, i + 4, ';');
                let bound = Bound {
                    lock,
                    line,
                    binding: let_binding.clone(),
                };
                if let_binding.is_some() && ends_initializer {
                    if let Some(frame) = frames.last_mut() {
                        frame.push(bound);
                    }
                } else {
                    temps.push(bound);
                }
                i += 4;
            }
            Tok::Ident(s) => {
                if await_binding && s != "mut" {
                    let_binding = Some(s.clone());
                    await_binding = false;
                }
                match s.as_str() {
                    "let" => {
                        seen_let = true;
                        await_binding = true;
                    }
                    "if" | "while" => seen_if = true,
                    "match" => seen_match = true,
                    "for" => seen_for = true,
                    "drop" if tok_punct(tokens, i + 1, '(') => {
                        if let (Some(victim), true) =
                            (tok_ident(tokens, i + 2), tok_punct(tokens, i + 3, ')'))
                        {
                            let victim = victim.to_string();
                            for frame in &mut frames {
                                frame.retain(|b| b.binding.as_deref() != Some(&victim));
                            }
                            temps.retain(|b| b.binding.as_deref() != Some(&victim));
                            i += 4;
                            continue;
                        }
                    }
                    _ => {}
                }
                if PANIC_IDENTS.contains(&s.as_str()) {
                    info.panics.push((s.clone(), line));
                    i += 1;
                    continue;
                }
                if s == "to_vec" && tok_punct(tokens, i.wrapping_sub(1), '.') {
                    info.allocs.push(("to_vec()".to_string(), line));
                }
                if (s == "Vec" || s == "BytesMut")
                    && tok_punct(tokens, i + 1, ':')
                    && tok_punct(tokens, i + 2, ':')
                    && tok_ident(tokens, i + 3) == Some("new")
                {
                    info.allocs.push((format!("{s}::new()"), line));
                }
                // Call site: lowercase ident directly before `(`.
                if tok_punct(tokens, i + 1, '(')
                    && !is_keyword(s)
                    && s != "drop"
                    && !s.starts_with(|c: char| c.is_ascii_uppercase())
                {
                    let bound =
                        let_binding.is_some() && call_ends_initializer(tokens, i + 1, close);
                    info.calls.push(CallSite {
                        name: s.clone(),
                        line,
                        held: held_snapshot(&frames, &temps),
                        bound,
                    });
                    if bound && !CALL_IGNORE.contains(&s.as_str()) {
                        // The let-bound result may be a guard returned
                        // by a workspace helper (`lock_shard`). Track a
                        // `call:` pseudo-lock in proper lexical scope —
                        // including `drop(binding)` — so the rules can
                        // substitute the callee's own locks whenever
                        // every candidate returns a guard.
                        if let Some(frame) = frames.last_mut() {
                            frame.push(Bound {
                                lock: format!("call:{s}"),
                                line,
                                binding: let_binding.clone(),
                            });
                        }
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// True when the call whose argument list opens at `tokens[open]` is
/// immediately followed by the statement's `;` — the let-initializer
/// shape that keeps a returned guard alive.
fn call_ends_initializer(tokens: &[Token], open: usize, close: usize) -> bool {
    let mut depth = 0i64;
    let mut j = open;
    while j < close {
        match tokens[j].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return tok_punct(tokens, j + 1, ';');
                }
            }
            _ => {}
        }
        j += 1;
    }
    false
}

/// Finds the `(`/`[` matching the `)`/`]` at `at`, walking backwards.
fn matching_open(tokens: &[Token], at: usize) -> Option<usize> {
    let (open, shut) = match tokens.get(at).map(|t| &t.tok) {
        Some(Tok::Punct(')')) => ('(', ')'),
        Some(Tok::Punct(']')) => ('[', ']'),
        _ => return None,
    };
    let mut depth = 0i64;
    let mut j = at;
    loop {
        match tokens[j].tok {
            Tok::Punct(c) if c == shut => depth += 1,
            Tok::Punct(c) if c == open => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
}

/// Canonical lock id for the receiver of the acquisition whose `.` sits
/// at `tokens[dot]`. See the module docs for the canonicalization
/// contract.
fn receiver_lock_id(tokens: &[Token], dot: usize, fn_open: usize, info: &FnInfo) -> String {
    let mut j = dot.checked_sub(1);
    let name = loop {
        let Some(k) = j else { break None };
        match &tokens[k].tok {
            Tok::Punct(')') | Tok::Punct(']') => {
                let Some(open) = matching_open(tokens, k) else {
                    break None;
                };
                j = open.checked_sub(1);
            }
            Tok::Ident(s) => {
                if RECEIVER_PASSTHROUGH.contains(&s.as_str())
                    && tok_punct(tokens, k.wrapping_sub(1), '.')
                {
                    j = k.checked_sub(2);
                    continue;
                }
                break Some((s.clone(), k));
            }
            Tok::Punct('.') => j = k.checked_sub(1),
            _ => break None,
        }
    };
    let Some((name, at)) = name else {
        return format!("{}/{}::?", info.krate, info.name);
    };
    // Field access (`x.store.lock()`): the field names the lock.
    if tok_punct(tokens, at.wrapping_sub(1), '.') {
        return format!("{}/{}", info.krate, name);
    }
    // SCREAMING receiver: a static.
    if name
        .chars()
        .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
    {
        return format!("{}/{}", info.krate, name);
    }
    // Short local receivers are usually closure or loop bindings over a
    // collection of locks; resolve through the introducing chain.
    if name.len() <= 2 {
        if let Some(alias) = alias_of(tokens, fn_open, at, &name) {
            return format!("{}/{}", info.krate, alias);
        }
        return format!("{}/{}::{}", info.krate, info.name, name);
    }
    format!("{}/{}", info.krate, name)
}

/// Resolves a short local receiver introduced by `|r|` or `for r in`
/// back to the collection field it iterates (`shards.iter().map(|s|
/// s.lock())` → `shards`).
fn alias_of(tokens: &[Token], fn_open: usize, use_at: usize, name: &str) -> Option<String> {
    let mut k = use_at;
    while k > fn_open {
        k -= 1;
        // `for <name> in <chain> {` — last chain ident names the lock
        // collection.
        if tok_ident(tokens, k) == Some("for")
            && tok_ident(tokens, k + 1) == Some(name)
            && tok_ident(tokens, k + 2) == Some("in")
        {
            let mut last = None;
            let mut j = k + 3;
            while j < use_at && !tok_punct(tokens, j, '{') {
                if let Some(id) = tok_ident(tokens, j) {
                    if id != "self" && id != "mut" {
                        last = Some(id.to_string());
                    }
                }
                j += 1;
            }
            return last;
        }
        // `|<name>|` closure parameter — walk back to the nearest
        // `<field> . iter`-shaped chain head.
        if tok_punct(tokens, k, '|')
            && tok_ident(tokens, k + 1) == Some(name)
            && tok_punct(tokens, k + 2, '|')
        {
            let floor = k.saturating_sub(16).max(fn_open);
            let mut j = k;
            while j > floor {
                j -= 1;
                if matches!(
                    tok_ident(tokens, j),
                    Some("iter" | "iter_mut" | "into_iter" | "values" | "values_mut")
                ) && tok_punct(tokens, j.wrapping_sub(1), '.')
                {
                    if let Some(field) = tok_ident(tokens, j.wrapping_sub(2)) {
                        return Some(field.to_string());
                    }
                }
            }
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model_of(files: &[(&str, &str)]) -> Model {
        let lexed: BTreeMap<String, Lexed> = files
            .iter()
            .map(|(rel, src)| (rel.to_string(), lex(src)))
            .collect();
        Model::build(&lexed)
    }

    fn fn_named<'m>(m: &'m Model, name: &str) -> &'m FnInfo {
        m.fns.iter().find(|f| f.name == name).expect("fn in model")
    }

    #[test]
    fn fns_and_impl_owners_are_extracted() {
        let m = model_of(&[(
            "crates/proto/src/node/mod.rs",
            "pub struct Node;\nimpl Node {\n  pub fn serve(&self) { helper(); }\n}\nimpl std::fmt::Display for Node {\n  fn fmt(&self) {}\n}\nfn helper() {}\n",
        )]);
        assert_eq!(m.fns.len(), 3);
        assert_eq!(fn_named(&m, "serve").owner.as_deref(), Some("Node"));
        assert_eq!(fn_named(&m, "fmt").owner.as_deref(), Some("Node"));
        assert_eq!(fn_named(&m, "helper").owner, None);
        assert_eq!(fn_named(&m, "serve").calls[0].name, "helper");
    }

    #[test]
    fn calls_resolve_by_name_but_not_ignored_or_ambiguous() {
        let m = model_of(&[
            (
                "crates/proto/src/a.rs",
                "pub fn entry() { helper(); x.insert(1); }\npub fn helper() {}\n",
            ),
            ("crates/cache/src/b.rs", "pub fn insert() {}\n"),
        ]);
        assert_eq!(m.resolve("helper").len(), 1);
        assert!(m.resolve("insert").is_empty(), "`insert` is on CALL_IGNORE");
        assert!(m.resolve("missing").is_empty());
    }

    #[test]
    fn test_mod_fns_are_excluded_from_resolution() {
        let m = model_of(&[(
            "crates/proto/src/a.rs",
            "pub fn live() {}\n#[cfg(test)]\nmod tests {\n  fn live() {}\n  fn t() {}\n}\n",
        )]);
        assert_eq!(m.resolve("live").len(), 1);
        assert!(m.resolve("t").is_empty());
    }

    #[test]
    fn receiver_shapes_canonicalize() {
        let src = r#"
pub struct S;
impl S {
    fn a(&self) { self.store.lock().put(1); }
    fn b(&self) { self.shards[self.idx(k)].lock().touch(); }
    fn c(&self) { GLOBAL_TABLE.lock().bump(); }
    fn d(&self) { self.hintlog.as_ref().unwrap().lock().sync_marker(); }
    fn e(&self) { let n: usize = self.shards.iter().map(|s| s.lock().len2()).sum(); }
    fn f(&self) { for s in &self.shards { s.lock().purge(); } }
}
"#;
        let m = model_of(&[("crates/proto/src/node/mod.rs", src)]);
        let lock_of = |f: &str| fn_named(&m, f).acquires[0].lock.clone();
        assert_eq!(lock_of("a"), "proto/store");
        assert_eq!(lock_of("b"), "proto/shards");
        assert_eq!(lock_of("c"), "proto/GLOBAL_TABLE");
        assert_eq!(lock_of("d"), "proto/hintlog");
        assert_eq!(lock_of("e"), "proto/shards");
        assert_eq!(lock_of("f"), "proto/shards");
    }

    #[test]
    fn guard_scopes_follow_let_temp_and_drop() {
        let src = r#"
fn bound_then_nested(inner: &Inner) {
    let store = inner.store.lock();
    inner.pending.lock().push(1);
}
fn temp_dies_at_semi(inner: &Inner) {
    let batch = std::mem::take(&mut *inner.pending.lock()).into();
    let store = inner.store.lock();
}
fn dropped_before(inner: &Inner) {
    let store = inner.store.lock();
    drop(store);
    inner.pending.lock().push(1);
}
fn plain_if_condition_releases(inner: &Inner) {
    if inner.liveness.lock().ok() {
        inner.parent.lock().take();
    }
}
fn if_let_scrutinee_extends(inner: &Inner) {
    if let Some(p) = inner.parent.lock().peek() {
        inner.children.lock().push(p);
    }
}
"#;
        let m = model_of(&[("crates/proto/src/node/mod.rs", src)]);
        let held = |f: &str, i: usize| {
            fn_named(&m, f).acquires[i]
                .held
                .iter()
                .map(|h| h.lock.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(held("bound_then_nested", 1), ["proto/store"]);
        assert!(held("temp_dies_at_semi", 1).is_empty());
        assert!(held("dropped_before", 1).is_empty());
        assert!(held("plain_if_condition_releases", 1).is_empty());
        assert_eq!(held("if_let_scrutinee_extends", 1), ["proto/parent"]);
    }

    #[test]
    fn held_locks_reach_call_sites() {
        let src = "fn f(inner: &Inner) {\n  let store = inner.store.lock();\n  stage(inner);\n}\nfn stage(inner: &Inner) {}\n";
        let m = model_of(&[("crates/proto/src/node/mod.rs", src)]);
        let call = &fn_named(&m, "f").calls[0];
        assert_eq!(call.name, "stage");
        assert_eq!(call.held.len(), 1);
        assert_eq!(call.held[0].lock, "proto/store");
    }

    #[test]
    fn guard_returning_signature_and_bound_calls() {
        let src = "impl Shards {\n  pub fn lock_shard(&self, i: usize) -> MutexGuard<'_, Cache> {\n    self.shards[i].lock()\n  }\n}\nfn user(sh: &Shards) {\n  let g = sh.lock_shard(0);\n  let n = sh.lock_shard(1).len2();\n}\n";
        let m = model_of(&[("crates/proto/src/node/mod.rs", src)]);
        assert!(fn_named(&m, "lock_shard").returns_guard);
        let user = fn_named(&m, "user");
        let bound: Vec<bool> = user
            .calls
            .iter()
            .filter(|c| c.name == "lock_shard")
            .map(|c| c.bound)
            .collect();
        assert_eq!(bound, [true, false]);
    }

    #[test]
    fn bound_guard_returning_calls_become_pseudo_locks() {
        let src = "fn user(sh: &Shards, inner: &Inner) {\n  let g = sh.lock_shard(0);\n  inner.pending.lock().push(1);\n  drop(g);\n  inner.store.lock().put(1);\n}\n";
        let m = model_of(&[("crates/proto/src/node/mod.rs", src)]);
        let user = fn_named(&m, "user");
        let held = |i: usize| {
            user.acquires[i]
                .held
                .iter()
                .map(|h| h.lock.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(held(0), ["call:lock_shard"]);
        assert!(held(1).is_empty(), "drop(g) releases the pseudo-guard");
    }

    #[test]
    fn panic_and_alloc_sites_are_recorded() {
        let src = "fn f(x: Option<u8>) -> Vec<u8> {\n  let v = Vec::new();\n  let b = data.to_vec();\n  x.unwrap();\n  v\n}\n";
        let m = model_of(&[("crates/proto/src/a.rs", src)]);
        let f = fn_named(&m, "f");
        assert_eq!(f.panics, [("unwrap".to_string(), 4)]);
        let what: Vec<&str> = f.allocs.iter().map(|(w, _)| w.as_str()).collect();
        assert_eq!(what, ["Vec::new()", "to_vec()"]);
    }

    #[test]
    fn non_src_files_stay_out_of_the_model() {
        let m = model_of(&[
            ("crates/proto/tests/integration.rs", "fn t() {}\n"),
            ("tests/differential.rs", "fn d() {}\n"),
        ]);
        assert!(m.fns.is_empty());
    }
}
