//! A minimal Rust lexer: just enough to produce an ident/punct/literal
//! token stream with 1-based line numbers, plus `bh-lint:` allow
//! directives harvested from line comments.
//!
//! This is deliberately not a full parser. The rules in this crate only
//! need to see identifiers (with their lines), a handful of punctuation
//! shapes (`::`, `#[...]`, braces), and to *not* be fooled by comments,
//! strings, raw strings, char literals, or lifetimes. Everything else
//! is consumed loosely.

/// Kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character.
    Punct(char),
    /// A plain `"..."` string literal, with its source contents (escape
    /// sequences kept verbatim). The stats-registry rule matches metric
    /// names against these.
    Str(String),
    /// Any other literal (raw/byte string, char, number); contents are
    /// not inspected by any rule.
    Lit,
}

/// One token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line number where the token starts.
    pub line: u32,
}

/// A parsed `// bh-lint: allow(<rule>, reason = "...")` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Line the directive comment sits on. The directive covers this
    /// line and the one immediately after it.
    pub line: u32,
    /// Rule name inside `allow(...)`.
    pub rule: String,
    /// The quoted reason, if one was written.
    pub reason: Option<String>,
}

/// A comment that started with `bh-lint:` but did not parse as a
/// well-formed allow directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Malformed {
    /// Line of the broken directive.
    pub line: u32,
    /// Human-readable description of what failed to parse.
    pub detail: String,
}

/// The full output of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream in source order.
    pub tokens: Vec<Token>,
    /// Well-formed allow directives, in source order.
    pub allows: Vec<Allow>,
    /// Broken `bh-lint:` directives, in source order.
    pub malformed: Vec<Malformed>,
}

/// Lexes `src` into tokens and allow directives.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (including doc comments): harvest directives.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i + 2;
            let mut j = start;
            while j < chars.len() && chars[j] != '\n' {
                j += 1;
            }
            let text: String = chars[start..j].iter().collect();
            harvest_directive(&text, line, &mut out);
            i = j;
            continue;
        }
        // Block comment, nested per Rust rules.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1u32;
            let mut j = i + 2;
            while j < chars.len() && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
            continue;
        }
        // Raw strings (r"..", r#".."#), byte strings (b"..", br".."),
        // and byte chars (b'x'). Plain idents starting with r/b fall
        // through to the ident arm below.
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            let mut raw = c == 'r';
            if c == 'b' && chars.get(j) == Some(&'r') {
                raw = true;
                j += 1;
            }
            let mut hashes = 0usize;
            let mut k = j;
            while chars.get(k) == Some(&'#') {
                hashes += 1;
                k += 1;
            }
            if raw && chars.get(k) == Some(&'"') {
                let tline = line;
                let mut m = k + 1;
                while m < chars.len() {
                    if chars[m] == '\n' {
                        line += 1;
                        m += 1;
                        continue;
                    }
                    if chars[m] == '"' {
                        let mut h = 0usize;
                        while h < hashes && chars.get(m + 1 + h) == Some(&'#') {
                            h += 1;
                        }
                        if h == hashes {
                            m += 1 + h;
                            break;
                        }
                    }
                    m += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Lit,
                    line: tline,
                });
                i = m;
                continue;
            }
            if c == 'b' && hashes == 0 && j == i + 1 {
                if let Some(&q) = chars.get(j) {
                    if q == '"' || q == '\'' {
                        let tline = line;
                        let mut m = j + 1;
                        while m < chars.len() {
                            if chars[m] == '\\' {
                                m += 2;
                                continue;
                            }
                            if chars[m] == '\n' {
                                line += 1;
                                m += 1;
                                continue;
                            }
                            if chars[m] == q {
                                m += 1;
                                break;
                            }
                            m += 1;
                        }
                        out.tokens.push(Token {
                            tok: Tok::Lit,
                            line: tline,
                        });
                        i = m;
                        continue;
                    }
                }
            }
            // Not a string prefix after all: fall through to ident.
        }
        // Lifetime vs char literal: after `'`, an alphabetic/underscore
        // char whose successor is not another `'` is a lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_lifetime =
                matches!(next, Some(ch) if ch.is_alphabetic() || ch == '_') && after != Some('\'');
            if is_lifetime {
                let mut j = i + 1;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                i = j;
                continue;
            }
            let tline = line;
            let mut j = i + 1;
            while j < chars.len() {
                if chars[j] == '\\' {
                    j += 2;
                    continue;
                }
                if chars[j] == '\n' {
                    line += 1;
                }
                if chars[j] == '\'' {
                    j += 1;
                    break;
                }
                j += 1;
            }
            out.tokens.push(Token {
                tok: Tok::Lit,
                line: tline,
            });
            i = j;
            continue;
        }
        // Plain string literal: captured with contents so rules can
        // match registered metric names.
        if c == '"' {
            let tline = line;
            let mut s = String::new();
            let mut j = i + 1;
            while j < chars.len() {
                if chars[j] == '\\' {
                    s.push(chars[j]);
                    if let Some(&esc) = chars.get(j + 1) {
                        s.push(esc);
                    }
                    j += 2;
                    continue;
                }
                if chars[j] == '\n' {
                    line += 1;
                    s.push('\n');
                    j += 1;
                    continue;
                }
                if chars[j] == '"' {
                    j += 1;
                    break;
                }
                s.push(chars[j]);
                j += 1;
            }
            out.tokens.push(Token {
                tok: Tok::Str(s),
                line: tline,
            });
            i = j;
            continue;
        }
        // Numbers, consumed loosely (swallowing `1.0e3`, `0xFF`, and
        // harmlessly the dots of `0..n`).
        if c.is_ascii_digit() {
            let tline = line;
            let mut j = i + 1;
            while j < chars.len()
                && (chars[j].is_ascii_alphanumeric() || chars[j] == '_' || chars[j] == '.')
            {
                j += 1;
            }
            out.tokens.push(Token {
                tok: Tok::Lit,
                line: tline,
            });
            i = j;
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let tline = line;
            let mut s = String::new();
            let mut j = i;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                s.push(chars[j]);
                j += 1;
            }
            out.tokens.push(Token {
                tok: Tok::Ident(s),
                line: tline,
            });
            i = j;
            continue;
        }
        out.tokens.push(Token {
            tok: Tok::Punct(c),
            line,
        });
        i += 1;
    }
    out
}

/// Parses a line-comment body for a `bh-lint:` directive.
fn harvest_directive(text: &str, line: u32, out: &mut Lexed) {
    // Doc comments arrive as `/ ...` or `! ...`; strip the markers.
    let t = text.trim_start_matches(['/', '!']).trim();
    let Some(rest) = t.strip_prefix("bh-lint:") else {
        return;
    };
    match parse_allow(rest.trim()) {
        Ok((rule, reason)) => out.allows.push(Allow { line, rule, reason }),
        Err(detail) => out.malformed.push(Malformed { line, detail }),
    }
}

/// Parses `allow(<rule>, reason = "...")`, returning the rule name and
/// optional reason.
fn parse_allow(s: &str) -> Result<(String, Option<String>), String> {
    let Some(rest) = s.strip_prefix("allow(") else {
        return Err("expected `allow(<rule>, reason = \"...\")`".into());
    };
    let Some(body) = rest.strip_suffix(')') else {
        return Err("missing closing `)`".into());
    };
    let (rule, reason_part) = match body.split_once(',') {
        Some((r, rest)) => (r.trim(), Some(rest.trim())),
        None => (body.trim(), None),
    };
    if rule.is_empty()
        || !rule
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
    {
        return Err(format!("bad rule name `{rule}`"));
    }
    let reason = match reason_part {
        None => None,
        Some(r) => {
            let Some(r) = r.strip_prefix("reason") else {
                return Err("expected `reason = \"...\"` after the rule name".into());
            };
            let r = r.trim_start();
            let Some(r) = r.strip_prefix('=') else {
                return Err("expected `=` after `reason`".into());
            };
            let r = r.trim();
            let Some(r) = r.strip_prefix('"').and_then(|r| r.strip_suffix('"')) else {
                return Err("reason must be a double-quoted string".into());
            };
            Some(r.to_string())
        }
    };
    Ok((rule.to_string(), reason))
}

/// Finds the token index of the `}` matching the `{` at `open`, if any.
pub fn brace_match(tokens: &[Token], open: usize) -> Option<usize> {
    if tokens.get(open)?.tok != Tok::Punct('{') {
        return None;
    }
    let mut depth = 0i64;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// True when `tokens[i..]` starts with the `#[cfg(test)]` attribute.
fn is_cfg_test(tokens: &[Token], i: usize) -> bool {
    let want: [Tok; 7] = [
        Tok::Punct('#'),
        Tok::Punct('['),
        Tok::Ident("cfg".into()),
        Tok::Punct('('),
        Tok::Ident("test".into()),
        Tok::Punct(')'),
        Tok::Punct(']'),
    ];
    tokens.len() >= i + want.len()
        && want
            .iter()
            .enumerate()
            .all(|(k, w)| &tokens[i + k].tok == w)
}

/// Inclusive line spans of `#[cfg(test)] mod ... { ... }` blocks, used
/// by rules that only apply to non-test code.
pub fn test_mod_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test(tokens, i) {
            // Look for a `mod` keyword shortly after the attribute
            // (other attributes may sit between).
            let mut j = i + 7;
            let mut found = None;
            while j < tokens.len() && j < i + 24 {
                if let Tok::Ident(s) = &tokens[j].tok {
                    if s == "mod" {
                        found = Some(j);
                        break;
                    }
                }
                j += 1;
            }
            if let Some(m) = found {
                let mut k = m;
                while k < tokens.len() && tokens[k].tok != Tok::Punct('{') {
                    k += 1;
                }
                if let Some(end) = brace_match(tokens, k) {
                    spans.push((tokens[i].line, tokens[end].line));
                    i = end + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    spans
}

/// Token index range `(open_brace, close_brace)` of the body of
/// `<kw> <name> { ... }` (e.g. `enum Message`, `struct NodeStats`,
/// `fn encode`).
pub fn item_body(tokens: &[Token], kw: &str, name: &str) -> Option<(usize, usize)> {
    for i in 0..tokens.len().saturating_sub(1) {
        if let (Tok::Ident(a), Tok::Ident(b)) = (&tokens[i].tok, &tokens[i + 1].tok) {
            if a == kw && b == name {
                let mut k = i + 2;
                while k < tokens.len() && tokens[k].tok != Tok::Punct('{') {
                    if tokens[k].tok == Tok::Punct(';') {
                        return None;
                    }
                    k += 1;
                }
                let end = brace_match(tokens, k)?;
                return Some((k, end));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_strings_and_lifetimes_hide_idents() {
        let src = r##"
// Instant::now in a comment
/* HashMap in /* nested */ block */
fn f<'a>(x: &'a str) -> char {
    let _s = "Instant::now inside a string";
    let _r = r#"HashMap "quoted" raw"#;
    let _b = b"bytes";
    let _c = 'x';
    let _e = '\'';
    unwrap_me
}
"##;
        let ids = idents(src);
        assert!(ids.contains(&"unwrap_me".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"a".to_string()), "lifetime leaked: {ids:?}");
    }

    #[test]
    fn plain_strings_capture_contents_raw_strings_do_not() {
        let src =
            "let a = \"local_hits\";\nlet b = r#\"raw stays opaque\"#;\nlet c = \"esc\\\"aped\";\n";
        let out = lex(src);
        let strs: Vec<&str> = out
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, ["local_hits", "esc\\\"aped"]);
        assert!(
            out.tokens.iter().any(|t| t.tok == Tok::Lit),
            "raw string should be Lit"
        );
    }

    #[test]
    fn allow_directives_parse_with_and_without_reason() {
        let src = "\n// bh-lint: allow(no-wall-clock, reason = \"throughput timing\")\n// bh-lint: allow(no-ambient-rng)\n// bh-lint: allow(broken\n";
        let out = lex(src);
        assert_eq!(out.allows.len(), 2);
        assert_eq!(out.allows[0].line, 2);
        assert_eq!(out.allows[0].rule, "no-wall-clock");
        assert_eq!(out.allows[0].reason.as_deref(), Some("throughput timing"));
        assert_eq!(out.allows[1].reason, None);
        assert_eq!(out.malformed.len(), 1);
        assert_eq!(out.malformed[0].line, 4);
    }

    #[test]
    fn test_mod_spans_cover_cfg_test_blocks() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let out = lex(src);
        assert_eq!(test_mod_spans(&out.tokens), vec![(2, 5)]);
    }

    #[test]
    fn item_body_finds_enum_span() {
        let src = "enum E {\n  A,\n  B { x: u8 },\n}\nfn f() {}\n";
        let out = lex(src);
        let (open, close) = item_body(&out.tokens, "enum", "E").expect("span");
        assert_eq!(out.tokens[open].line, 1);
        assert_eq!(out.tokens[close].line, 4);
    }
}
