//! The eight bh-lint rules. Each rule pushes [`Diagnostic`]s; allow
//! resolution and rendering happen in the engine (`lib.rs`).
//!
//! Rules 1–4, 7, and 8 are per-file token scans gated on repo-relative
//! paths. Rules 5–6 are cross-file consistency checks over specific
//! files.

use crate::lexer::{brace_match, item_body, test_mod_spans, Lexed, Tok, Token};
use crate::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};

/// Rule names, in the order they are documented in LINTS.md.
pub const RULES: [&str; 8] = [
    "no-wall-clock",
    "no-ambient-rng",
    "ordered-iteration",
    "no-panic-hot-path",
    "wire-exhaustiveness",
    "stats-registry",
    "no-hot-alloc",
    "fixed-width-records",
];

/// Modules allowed to read the wall clock: the real-I/O edge of the
/// system (epoll shards, connection pool timeouts, heartbeat pacing,
/// live-mesh drivers). Everything else must take time as a parameter
/// or use the simulated clock.
const WALL_CLOCK_ALLOWED: [&str; 8] = [
    "crates/netpoll/src/",
    "crates/proto/src/pool.rs",
    "crates/proto/src/node/",
    "crates/proto/src/origin.rs",
    "crates/proto/src/client.rs",
    "crates/proto/src/replay.rs",
    "crates/proto/src/bin/",
    "crates/proto/tests/",
];

/// Identifiers that construct or feed an RNG from ambient state rather
/// than an explicit seed.
const AMBIENT_RNG: [&str; 6] = [
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "OsRng",
    "getrandom",
    "RandomState",
];

/// Artifact-writing paths where iteration order reaches JSON files,
/// stdout tables, or event logs.
const ORDERED_ITER_FILES: [&str; 4] = [
    "crates/bench/src/",
    "crates/proto/src/chaos.rs",
    "crates/proto/src/replay.rs",
    "crates/trace/src/scenario.rs",
];

/// Hot-path files where a panic wedges a shard/worker thread the chaos
/// layer cannot deterministically recover.
const PANIC_HOT_FILES: [&str; 4] = [
    "crates/proto/src/node/engine.rs",
    "crates/proto/src/node/metrics.rs",
    "crates/proto/src/node/mod.rs",
    "crates/proto/src/pool.rs",
];

/// Idents banned in hot paths. Exact matches only, so `unwrap_or_else`
/// and `unwrap_or_default` stay legal.
const PANIC_IDENTS: [&str; 6] = [
    "unwrap",
    "expect",
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
];

fn push(out: &mut Vec<Diagnostic>, file: &str, line: u32, rule: &'static str, message: String) {
    out.push(Diagnostic {
        file: file.to_string(),
        line,
        rule: rule.to_string(),
        message,
        allowable: true,
    });
}

/// True when `tokens[i..]` is `<first> :: <last>` (e.g. `Instant::now`).
fn path_seq(tokens: &[Token], i: usize, first: &str, last: &str) -> bool {
    matches!(&tokens[i].tok, Tok::Ident(s) if s == first)
        && tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
        && tokens.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct(':'))
        && matches!(tokens.get(i + 3).map(|t| &t.tok), Some(Tok::Ident(s)) if s == last)
}

/// Rule 1: `Instant::now` / `SystemTime::now` outside the I/O allowlist.
pub fn no_wall_clock(rel: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    if WALL_CLOCK_ALLOWED.iter().any(|p| rel.starts_with(p)) {
        return;
    }
    for i in 0..lx.tokens.len() {
        for src in ["Instant", "SystemTime"] {
            if path_seq(&lx.tokens, i, src, "now") {
                push(
                    out,
                    rel,
                    lx.tokens[i].line,
                    "no-wall-clock",
                    format!(
                        "`{src}::now()` outside the I/O allowlist; use the simulated \
                         clock or take time as a parameter"
                    ),
                );
            }
        }
    }
}

/// Rule 2: RNG construction from ambient state instead of an explicit
/// seed. Applies everywhere, tests included — seeded tests are what
/// keep the goldens replayable.
pub fn no_ambient_rng(rel: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    for t in &lx.tokens {
        if let Tok::Ident(s) = &t.tok {
            if AMBIENT_RNG.contains(&s.as_str()) {
                push(
                    out,
                    rel,
                    t.line,
                    "no-ambient-rng",
                    format!("`{s}` draws ambient entropy; construct RNGs from an explicit seed"),
                );
            }
        }
    }
}

/// Rule 3: `HashMap`/`HashSet` in artifact-writing paths. Anything that
/// can reach a JSON artifact, stdout table, or event log must iterate
/// in a defined order.
pub fn ordered_iteration(rel: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    if !ORDERED_ITER_FILES
        .iter()
        .any(|p| rel.starts_with(p) || rel == *p)
    {
        return;
    }
    for t in &lx.tokens {
        if let Tok::Ident(s) = &t.tok {
            if s == "HashMap" || s == "HashSet" {
                push(
                    out,
                    rel,
                    t.line,
                    "ordered-iteration",
                    format!(
                        "`{s}` in an artifact-writing path; use BTreeMap/BTreeSet or \
                         sort before emitting"
                    ),
                );
            }
        }
    }
}

/// Rule 4: `unwrap`/`expect`/`panic!`-family idents in shard, worker,
/// and pool code. `#[cfg(test)] mod` blocks are exempt.
pub fn no_panic_hot_path(rel: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    if !PANIC_HOT_FILES.contains(&rel) {
        return;
    }
    let spans = test_mod_spans(&lx.tokens);
    for t in &lx.tokens {
        if let Tok::Ident(s) = &t.tok {
            if PANIC_IDENTS.contains(&s.as_str())
                && !spans.iter().any(|&(a, b)| t.line >= a && t.line <= b)
            {
                push(
                    out,
                    rel,
                    t.line,
                    "no-panic-hot-path",
                    format!(
                        "`{s}` in a proto hot path; return an error and account it in \
                         NodeStats instead of panicking a shard/worker thread"
                    ),
                );
            }
        }
    }
}

/// The wire-speed data-path hot set: files whose per-request
/// allocations show up directly in the req/s ceiling. Kept in lockstep
/// with the DESIGN.md data-path section.
const HOT_ALLOC_FILES: [&str; 3] = [
    "crates/proto/src/node/engine.rs",
    "crates/proto/src/node/mod.rs",
    "crates/proto/src/wire.rs",
];

/// Rule 7: per-request allocation idioms in the proto hot set.
/// `.to_vec()` copies a buffer the zero-copy frame path already
/// refcounts; `Vec::new`/`BytesMut::new` start at capacity zero and
/// grow inside the request loop. `#[cfg(test)] mod` blocks are exempt;
/// the `vec![...]` macro and `with_capacity` are deliberately legal.
pub fn no_hot_alloc(rel: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    if !HOT_ALLOC_FILES.contains(&rel) {
        return;
    }
    let spans = test_mod_spans(&lx.tokens);
    for i in 0..lx.tokens.len() {
        let t = &lx.tokens[i];
        if spans.iter().any(|&(a, b)| t.line >= a && t.line <= b) {
            continue;
        }
        if matches!(&t.tok, Tok::Ident(s) if s == "to_vec") {
            push(
                out,
                rel,
                t.line,
                "no-hot-alloc",
                "`to_vec()` copies a buffer in the proto hot set; slice a refcounted \
                 `Bytes` or reuse a scratch buffer"
                    .to_string(),
            );
        }
        for ty in ["Vec", "BytesMut"] {
            if path_seq(&lx.tokens, i, ty, "new") {
                push(
                    out,
                    rel,
                    t.line,
                    "no-hot-alloc",
                    format!(
                        "`{ty}::new()` in the proto hot set grows from capacity zero; \
                         preallocate with `with_capacity` or reuse a scratch buffer"
                    ),
                );
            }
        }
    }
}

/// The durable-storage crate: everything that writes bytes the next
/// process must be able to replay.
const FIXED_WIDTH_PREFIX: &str = "crates/hintlog/src/";

/// Primitive types with a platform-independent byte width. `usize` /
/// `isize` are deliberately absent: their width follows the platform,
/// so a record containing one deserializes differently across hosts.
const FIXED_WIDTH: [&str; 13] = [
    "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128", "f32", "f64", "bool",
];

/// Fields of `struct <name>` with the token span of each field's type
/// (`start..end`, exclusive of the separating comma).
fn struct_field_types(tokens: &[Token], name: &str) -> Vec<(String, u32, (usize, usize))> {
    let Some((start, end)) = item_body(tokens, "struct", name) else {
        return Vec::new();
    };
    let mut fields = Vec::new();
    let mut i = start + 1;
    while i < end {
        match &tokens[i].tok {
            Tok::Punct('#') => {
                // Skip field attributes.
                i += 1;
                if i < end && tokens[i].tok == Tok::Punct('[') {
                    let mut depth = 1i64;
                    i += 1;
                    while i < end && depth > 0 {
                        match tokens[i].tok {
                            Tok::Punct('[') => depth += 1,
                            Tok::Punct(']') => depth -= 1,
                            _ => {}
                        }
                        i += 1;
                    }
                }
            }
            Tok::Ident(s) if s == "pub" => i += 1,
            Tok::Ident(s)
                if tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                    && tokens.get(i + 2).map(|t| &t.tok) != Some(&Tok::Punct(':')) =>
            {
                let (fname, fline) = (s.clone(), tokens[i].line);
                let ty_start = i + 2;
                let mut depth = 0i64;
                i = ty_start;
                while i < end {
                    match tokens[i].tok {
                        Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                        Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                        Tok::Punct('<') => depth += 1,
                        Tok::Punct('>') => depth -= 1,
                        Tok::Punct(',') if depth == 0 => break,
                        _ => {}
                    }
                    i += 1;
                }
                fields.push((fname, fline, (ty_start, i)));
                i += 1;
            }
            _ => i += 1,
        }
    }
    fields
}

/// True when the type at `tokens[span]` is a fixed-width primitive or a
/// `[primitive; N]` array of one.
fn type_is_fixed_width(tokens: &[Token], span: (usize, usize)) -> bool {
    let ty = &tokens[span.0..span.1];
    match ty.first().map(|t| &t.tok) {
        Some(Tok::Ident(s)) => ty.len() == 1 && FIXED_WIDTH.contains(&s.as_str()),
        Some(Tok::Punct('[')) => {
            matches!(ty.get(1).map(|t| &t.tok), Some(Tok::Ident(s)) if FIXED_WIDTH.contains(&s.as_str()))
        }
        _ => false,
    }
}

/// Rule 8: durable-storage invariants in the hint-log crate. Structs
/// named `*Record` are on-disk layouts and may hold only fixed-width
/// primitives or arrays of them (no `usize`, no pointers, no growable
/// containers — the byte layout is the compatibility contract), and any
/// function on the snapshot/compaction path (name contains `snapshot`
/// or `compact`) must visibly maintain the sorted-records invariant by
/// mentioning a `sort` identifier. `#[cfg(test)] mod` blocks are
/// exempt.
pub fn fixed_width_records(rel: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    if !rel.starts_with(FIXED_WIDTH_PREFIX) {
        return;
    }
    let tokens = &lx.tokens;
    let spans = test_mod_spans(tokens);
    let in_tests = |line: u32| spans.iter().any(|&(a, b)| line >= a && line <= b);
    for i in 0..tokens.len().saturating_sub(1) {
        let (Tok::Ident(kw), Tok::Ident(name)) = (&tokens[i].tok, &tokens[i + 1].tok) else {
            continue;
        };
        if in_tests(tokens[i].line) {
            continue;
        }
        if kw == "struct" && name.ends_with("Record") {
            for (field, fline, ty_span) in struct_field_types(tokens, name) {
                if !type_is_fixed_width(tokens, ty_span) {
                    push(
                        out,
                        rel,
                        fline,
                        "fixed-width-records",
                        format!(
                            "`{name}` field `{field}` is not a fixed-width primitive or \
                             array; on-disk record layouts must be stable across hosts \
                             and versions"
                        ),
                    );
                }
            }
        }
        if kw == "fn" && (name.contains("snapshot") || name.contains("compact")) {
            // Find the body: the first `{` after the signature (a `;`
            // first means a bodyless declaration — nothing to check).
            let mut k = i + 2;
            while k < tokens.len()
                && tokens[k].tok != Tok::Punct('{')
                && tokens[k].tok != Tok::Punct(';')
            {
                k += 1;
            }
            let Some(close) = brace_match(tokens, k) else {
                continue;
            };
            let sorts = tokens[k..=close]
                .iter()
                .any(|t| matches!(&t.tok, Tok::Ident(s) if s.contains("sort")));
            if !sorts {
                push(
                    out,
                    rel,
                    tokens[i + 1].line,
                    "fixed-width-records",
                    format!(
                        "`{name}` is on the snapshot/compaction path but never sorts; \
                         snapshots must keep records sorted by key for replay to \
                         verify them"
                    ),
                );
            }
        }
    }
}

/// Converts a CamelCase variant name to the SCREAMING_SNAKE suffix of
/// its tag const (`GetReply` → `GET_REPLY`).
fn camel_to_screaming(name: &str) -> String {
    let mut s = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() && i > 0 {
            s.push('_');
        }
        s.push(c.to_ascii_uppercase());
    }
    s
}

/// Variant names (with lines) of `enum <name>`, skipping attributes.
fn enum_variants(tokens: &[Token], name: &str) -> Vec<(String, u32)> {
    let Some((start, end)) = item_body(tokens, "enum", name) else {
        return Vec::new();
    };
    let mut vars = Vec::new();
    let mut i = start + 1;
    while i < end {
        // Skip `#[...]` attributes on the variant.
        while i < end && tokens[i].tok == Tok::Punct('#') {
            i += 1;
            if i < end && tokens[i].tok == Tok::Punct('[') {
                let mut depth = 1i64;
                i += 1;
                while i < end && depth > 0 {
                    match tokens[i].tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => depth -= 1,
                        _ => {}
                    }
                    i += 1;
                }
            }
        }
        if i >= end {
            break;
        }
        if let Tok::Ident(s) = &tokens[i].tok {
            vars.push((s.clone(), tokens[i].line));
        }
        // Advance to the comma that ends this variant (payload braces,
        // parens, and brackets may nest).
        let mut depth = 0i64;
        while i < end {
            match tokens[i].tok {
                Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Punct(',') if depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    vars
}

/// `const T_*` names (with lines) declared in a file.
fn tag_consts(tokens: &[Token]) -> BTreeMap<String, u32> {
    let mut consts = BTreeMap::new();
    for i in 0..tokens.len().saturating_sub(1) {
        if let (Tok::Ident(a), Tok::Ident(b)) = (&tokens[i].tok, &tokens[i + 1].tok) {
            if a == "const" && b.starts_with("T_") {
                consts.insert(b.clone(), tokens[i + 1].line);
            }
        }
    }
    consts
}

/// True when `ident` appears anywhere in `tokens[range]`.
fn span_contains(tokens: &[Token], range: (usize, usize), ident: &str) -> bool {
    tokens[range.0..=range.1]
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(s) if s == ident))
}

/// Rule 5: every `Message` variant needs a `T_*` tag const, an encoder
/// arm, a decoder arm, and coverage in `wire_proptests.rs`; orphan tag
/// consts are flagged too.
pub fn wire_exhaustiveness(files: &BTreeMap<String, Lexed>, out: &mut Vec<Diagnostic>) {
    const WIRE: &str = "crates/proto/src/wire.rs";
    const PROPS: &str = "crates/proto/tests/wire_proptests.rs";
    let Some(wire) = files.get(WIRE) else {
        return;
    };
    let variants = enum_variants(&wire.tokens, "Message");
    if variants.is_empty() {
        return;
    }
    let consts = tag_consts(&wire.tokens);
    // Scope the codec search to `impl Message` — other types in the
    // file have their own `encode`/`decode`.
    let (encode, decode) = match item_body(&wire.tokens, "impl", "Message") {
        Some((s, e)) => {
            let slice = &wire.tokens[s..=e];
            (
                item_body(slice, "fn", "encode").map(|(a, b)| (a + s, b + s)),
                item_body(slice, "fn", "decode").map(|(a, b)| (a + s, b + s)),
            )
        }
        None => (
            item_body(&wire.tokens, "fn", "encode"),
            item_body(&wire.tokens, "fn", "decode"),
        ),
    };
    let mut claimed: BTreeSet<String> = BTreeSet::new();
    for (v, vline) in &variants {
        let tag = format!("T_{}", camel_to_screaming(v));
        claimed.insert(tag.clone());
        if !consts.contains_key(&tag) {
            push(
                out,
                WIRE,
                *vline,
                "wire-exhaustiveness",
                format!("variant `{v}` has no tag const `{tag}`"),
            );
            continue;
        }
        if let Some(span) = encode {
            if !span_contains(&wire.tokens, span, &tag) {
                push(
                    out,
                    WIRE,
                    *vline,
                    "wire-exhaustiveness",
                    format!("variant `{v}`: tag `{tag}` never written by `encode`"),
                );
            }
        }
        if let Some(span) = decode {
            if !span_contains(&wire.tokens, span, &tag) {
                push(
                    out,
                    WIRE,
                    *vline,
                    "wire-exhaustiveness",
                    format!("variant `{v}`: tag `{tag}` never matched by `decode`"),
                );
            }
        }
        if let Some(props) = files.get(PROPS) {
            let covered = (0..props.tokens.len()).any(|i| path_seq(&props.tokens, i, "Message", v));
            if !covered {
                push(
                    out,
                    WIRE,
                    *vline,
                    "wire-exhaustiveness",
                    format!("variant `{v}` is never constructed in {PROPS}"),
                );
            }
        }
    }
    for (name, line) in &consts {
        if !claimed.contains(name) {
            push(
                out,
                WIRE,
                *line,
                "wire-exhaustiveness",
                format!("tag const `{name}` has no matching `Message` variant"),
            );
        }
    }
}

/// Field names (with lines) of `struct <name>`.
fn struct_fields(tokens: &[Token], name: &str) -> Vec<(String, u32)> {
    let Some((start, end)) = item_body(tokens, "struct", name) else {
        return Vec::new();
    };
    let mut fields = Vec::new();
    let mut i = start + 1;
    while i < end {
        match &tokens[i].tok {
            Tok::Punct('#') => {
                // Skip field attributes.
                i += 1;
                if i < end && tokens[i].tok == Tok::Punct('[') {
                    let mut depth = 1i64;
                    i += 1;
                    while i < end && depth > 0 {
                        match tokens[i].tok {
                            Tok::Punct('[') => depth += 1,
                            Tok::Punct(']') => depth -= 1,
                            _ => {}
                        }
                        i += 1;
                    }
                }
            }
            Tok::Ident(s) if s == "pub" => i += 1,
            Tok::Ident(s)
                if tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                    && tokens.get(i + 2).map(|t| &t.tok) != Some(&Tok::Punct(':')) =>
            {
                fields.push((s.clone(), tokens[i].line));
                // Skip past this field's type to the separating comma.
                let mut depth = 0i64;
                i += 2;
                while i < end {
                    match tokens[i].tok {
                        Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                        Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                        Tok::Punct(',') if depth == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    fields
}

/// Rule 6: every `NodeStats` field must be backed by a registered
/// metric — its name must appear as a string literal in the metrics
/// module (where `NodeMetrics::register` declares counters and
/// `NodeStats::from_snapshot` matches them back) — and the chaos dump
/// must iterate the registry via `metric_snapshots` rather than
/// hand-copying fields.
pub fn stats_registry(files: &BTreeMap<String, Lexed>, out: &mut Vec<Diagnostic>) {
    const STATS: &str = "crates/proto/src/node/metrics.rs";
    const DUMP: &str = "crates/bench/src/chaos.rs";
    let Some(node) = files.get(STATS) else {
        return;
    };
    let fields = struct_fields(&node.tokens, "NodeStats");
    if fields.is_empty() {
        return;
    }
    let strings: BTreeSet<&str> = node
        .tokens
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Str(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    for (f, line) in &fields {
        if !strings.contains(f.as_str()) {
            push(
                out,
                STATS,
                *line,
                "stats-registry",
                format!(
                    "`NodeStats` field `{f}` has no registry metric: the string \
                     literal \"{f}\" never appears in {STATS}"
                ),
            );
        }
    }
    let Some(dump) = files.get(DUMP) else {
        push(
            out,
            STATS,
            fields[0].1,
            "stats-registry",
            format!("`NodeStats` exists but the stats dump {DUMP} is missing"),
        );
        return;
    };
    let iterates = dump
        .tokens
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(s) if s == "metric_snapshots"));
    if !iterates {
        push(
            out,
            DUMP,
            1,
            "stats-registry",
            format!(
                "chaos dump {DUMP} never calls `metric_snapshots`; node metrics \
                 must reach artifacts by iterating the obs registry"
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn camel_to_screaming_handles_runs() {
        assert_eq!(camel_to_screaming("Get"), "GET");
        assert_eq!(camel_to_screaming("GetReply"), "GET_REPLY");
        assert_eq!(camel_to_screaming("FindNearestReply"), "FIND_NEAREST_REPLY");
    }

    #[test]
    fn enum_variants_skip_attributes_and_payloads() {
        let src = "enum Message {\n  Get { url: String },\n  #[allow(dead_code)]\n  Ping,\n  Reply(Vec<u8>),\n}\n";
        let vars = enum_variants(&lex(src).tokens, "Message");
        let names: Vec<&str> = vars.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["Get", "Ping", "Reply"]);
    }

    #[test]
    fn field_types_classify_fixed_width() {
        let src = "struct LogRecord {\n  pub key: u64,\n  pub digest: [u8; 16],\n  pub url: String,\n  pub slots: Vec<u64>,\n  pub off: usize,\n}\n";
        let lx = lex(src);
        let fields = struct_field_types(&lx.tokens, "LogRecord");
        let verdicts: Vec<(&str, bool)> = fields
            .iter()
            .map(|(n, _, span)| (n.as_str(), type_is_fixed_width(&lx.tokens, *span)))
            .collect();
        assert_eq!(
            verdicts,
            [
                ("key", true),
                ("digest", true),
                ("url", false),
                ("slots", false),
                ("off", false),
            ]
        );
    }

    #[test]
    fn struct_fields_see_through_pub_and_attrs() {
        let src = "struct NodeStats {\n  pub a: u64,\n  #[serde(default)]\n  pub b_count: u64,\n  c: std::collections::BTreeMap<u64, u64>,\n}\n";
        let fields = struct_fields(&lex(src).tokens, "NodeStats");
        let names: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b_count", "c"]);
    }
}
