//! The nine bh-lint rules. Each rule pushes [`Diagnostic`]s; allow
//! resolution and rendering happen in the engine (`lib.rs`).
//!
//! Rules 1–4, 7, and 8 are per-file token scans gated on the shared
//! scope table (`crate::scope`). Rules 5–6 are cross-file consistency
//! checks over specific files. The interprocedural passes
//! ([`no_panic_reachable`], [`no_alloc_reachable`], [`lock_order`])
//! run over the [`Model`] symbol table and report full call chains.

use crate::graph::{DiGraph, EdgeInfo};
use crate::lexer::{brace_match, item_body, test_mod_spans, Lexed, Tok, Token};
use crate::model::{FnInfo, HeldLock, Model, PANIC_IDENTS};
use crate::{scope, Diagnostic};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Rule names, in the order they are documented in LINTS.md.
pub const RULES: [&str; 9] = [
    "no-wall-clock",
    "no-ambient-rng",
    "ordered-iteration",
    "no-panic-hot-path",
    "wire-exhaustiveness",
    "stats-registry",
    "no-hot-alloc",
    "fixed-width-records",
    "lock-order",
];

/// Identifiers that construct or feed an RNG from ambient state rather
/// than an explicit seed.
const AMBIENT_RNG: [&str; 6] = [
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "OsRng",
    "getrandom",
    "RandomState",
];

fn push(out: &mut Vec<Diagnostic>, file: &str, line: u32, rule: &'static str, message: String) {
    out.push(Diagnostic {
        file: file.to_string(),
        line,
        rule: rule.to_string(),
        message,
        allowable: true,
        also: Vec::new(),
    });
}

/// True when `tokens[i..]` is `<first> :: <last>` (e.g. `Instant::now`).
fn path_seq(tokens: &[Token], i: usize, first: &str, last: &str) -> bool {
    matches!(&tokens[i].tok, Tok::Ident(s) if s == first)
        && tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
        && tokens.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct(':'))
        && matches!(tokens.get(i + 3).map(|t| &t.tok), Some(Tok::Ident(s)) if s == last)
}

/// Rule 1: `Instant::now` / `SystemTime::now` outside the I/O allowlist.
pub fn no_wall_clock(rel: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    if scope::WALL_CLOCK_IO.iter().any(|p| rel.starts_with(p)) {
        return;
    }
    for i in 0..lx.tokens.len() {
        for src in ["Instant", "SystemTime"] {
            if path_seq(&lx.tokens, i, src, "now") {
                push(
                    out,
                    rel,
                    lx.tokens[i].line,
                    "no-wall-clock",
                    format!(
                        "`{src}::now()` outside the I/O allowlist; use the simulated \
                         clock or take time as a parameter"
                    ),
                );
            }
        }
    }
}

/// Rule 2: RNG construction from ambient state instead of an explicit
/// seed. Applies everywhere, tests included — seeded tests are what
/// keep the goldens replayable.
pub fn no_ambient_rng(rel: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    for t in &lx.tokens {
        if let Tok::Ident(s) = &t.tok {
            if AMBIENT_RNG.contains(&s.as_str()) {
                push(
                    out,
                    rel,
                    t.line,
                    "no-ambient-rng",
                    format!("`{s}` draws ambient entropy; construct RNGs from an explicit seed"),
                );
            }
        }
    }
}

/// Rule 3: `HashMap`/`HashSet` in artifact-writing paths. Anything that
/// can reach a JSON artifact, stdout table, or event log must iterate
/// in a defined order.
pub fn ordered_iteration(rel: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    if !scope::ARTIFACT_PATHS
        .iter()
        .any(|p| rel.starts_with(p) || rel == *p)
    {
        return;
    }
    for t in &lx.tokens {
        if let Tok::Ident(s) = &t.tok {
            if s == "HashMap" || s == "HashSet" {
                push(
                    out,
                    rel,
                    t.line,
                    "ordered-iteration",
                    format!(
                        "`{s}` in an artifact-writing path; use BTreeMap/BTreeSet or \
                         sort before emitting"
                    ),
                );
            }
        }
    }
}

/// Rule 4: `unwrap`/`expect`/`panic!`-family idents in shard, worker,
/// and pool code. `#[cfg(test)] mod` blocks are exempt.
pub fn no_panic_hot_path(rel: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    if !scope::PANIC_HOT.contains(&rel) {
        return;
    }
    let spans = test_mod_spans(&lx.tokens);
    for t in &lx.tokens {
        if let Tok::Ident(s) = &t.tok {
            if PANIC_IDENTS.contains(&s.as_str())
                && !spans.iter().any(|&(a, b)| t.line >= a && t.line <= b)
            {
                push(
                    out,
                    rel,
                    t.line,
                    "no-panic-hot-path",
                    format!(
                        "`{s}` in a proto hot path; return an error and account it in \
                         NodeStats instead of panicking a shard/worker thread"
                    ),
                );
            }
        }
    }
}

/// Rule 7: per-request allocation idioms in the proto hot set.
/// `.to_vec()` copies a buffer the zero-copy frame path already
/// refcounts; `Vec::new`/`BytesMut::new` start at capacity zero and
/// grow inside the request loop. `#[cfg(test)] mod` blocks are exempt;
/// the `vec![...]` macro and `with_capacity` are deliberately legal.
pub fn no_hot_alloc(rel: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    if !scope::ALLOC_HOT.contains(&rel) {
        return;
    }
    let spans = test_mod_spans(&lx.tokens);
    for i in 0..lx.tokens.len() {
        let t = &lx.tokens[i];
        if spans.iter().any(|&(a, b)| t.line >= a && t.line <= b) {
            continue;
        }
        if matches!(&t.tok, Tok::Ident(s) if s == "to_vec") {
            push(
                out,
                rel,
                t.line,
                "no-hot-alloc",
                "`to_vec()` copies a buffer in the proto hot set; slice a refcounted \
                 `Bytes` or reuse a scratch buffer"
                    .to_string(),
            );
        }
        for ty in ["Vec", "BytesMut"] {
            if path_seq(&lx.tokens, i, ty, "new") {
                push(
                    out,
                    rel,
                    t.line,
                    "no-hot-alloc",
                    format!(
                        "`{ty}::new()` in the proto hot set grows from capacity zero; \
                         preallocate with `with_capacity` or reuse a scratch buffer"
                    ),
                );
            }
        }
    }
}

/// Primitive types with a platform-independent byte width. `usize` /
/// `isize` are deliberately absent: their width follows the platform,
/// so a record containing one deserializes differently across hosts.
const FIXED_WIDTH: [&str; 13] = [
    "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128", "f32", "f64", "bool",
];

/// Fields of `struct <name>` with the token span of each field's type
/// (`start..end`, exclusive of the separating comma).
fn struct_field_types(tokens: &[Token], name: &str) -> Vec<(String, u32, (usize, usize))> {
    let Some((start, end)) = item_body(tokens, "struct", name) else {
        return Vec::new();
    };
    let mut fields = Vec::new();
    let mut i = start + 1;
    while i < end {
        match &tokens[i].tok {
            Tok::Punct('#') => {
                // Skip field attributes.
                i += 1;
                if i < end && tokens[i].tok == Tok::Punct('[') {
                    let mut depth = 1i64;
                    i += 1;
                    while i < end && depth > 0 {
                        match tokens[i].tok {
                            Tok::Punct('[') => depth += 1,
                            Tok::Punct(']') => depth -= 1,
                            _ => {}
                        }
                        i += 1;
                    }
                }
            }
            Tok::Ident(s) if s == "pub" => i += 1,
            Tok::Ident(s)
                if tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                    && tokens.get(i + 2).map(|t| &t.tok) != Some(&Tok::Punct(':')) =>
            {
                let (fname, fline) = (s.clone(), tokens[i].line);
                let ty_start = i + 2;
                let mut depth = 0i64;
                i = ty_start;
                while i < end {
                    match tokens[i].tok {
                        Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                        Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                        Tok::Punct('<') => depth += 1,
                        Tok::Punct('>') => depth -= 1,
                        Tok::Punct(',') if depth == 0 => break,
                        _ => {}
                    }
                    i += 1;
                }
                fields.push((fname, fline, (ty_start, i)));
                i += 1;
            }
            _ => i += 1,
        }
    }
    fields
}

/// True when the type at `tokens[span]` is a fixed-width primitive or a
/// `[primitive; N]` array of one.
fn type_is_fixed_width(tokens: &[Token], span: (usize, usize)) -> bool {
    let ty = &tokens[span.0..span.1];
    match ty.first().map(|t| &t.tok) {
        Some(Tok::Ident(s)) => ty.len() == 1 && FIXED_WIDTH.contains(&s.as_str()),
        Some(Tok::Punct('[')) => {
            matches!(ty.get(1).map(|t| &t.tok), Some(Tok::Ident(s)) if FIXED_WIDTH.contains(&s.as_str()))
        }
        _ => false,
    }
}

/// Rule 8: durable-storage invariants in the hint-log crate. Structs
/// named `*Record` are on-disk layouts and may hold only fixed-width
/// primitives or arrays of them (no `usize`, no pointers, no growable
/// containers — the byte layout is the compatibility contract), and any
/// function on the snapshot/compaction path (name contains `snapshot`
/// or `compact`) must visibly maintain the sorted-records invariant by
/// mentioning a `sort` identifier. `#[cfg(test)] mod` blocks are
/// exempt.
pub fn fixed_width_records(rel: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    if !rel.starts_with(scope::DURABLE_STORE) {
        return;
    }
    let tokens = &lx.tokens;
    let spans = test_mod_spans(tokens);
    let in_tests = |line: u32| spans.iter().any(|&(a, b)| line >= a && line <= b);
    for i in 0..tokens.len().saturating_sub(1) {
        let (Tok::Ident(kw), Tok::Ident(name)) = (&tokens[i].tok, &tokens[i + 1].tok) else {
            continue;
        };
        if in_tests(tokens[i].line) {
            continue;
        }
        if kw == "struct" && name.ends_with("Record") {
            for (field, fline, ty_span) in struct_field_types(tokens, name) {
                if !type_is_fixed_width(tokens, ty_span) {
                    push(
                        out,
                        rel,
                        fline,
                        "fixed-width-records",
                        format!(
                            "`{name}` field `{field}` is not a fixed-width primitive or \
                             array; on-disk record layouts must be stable across hosts \
                             and versions"
                        ),
                    );
                }
            }
        }
        if kw == "fn" && (name.contains("snapshot") || name.contains("compact")) {
            // Find the body: the first `{` after the signature (a `;`
            // first means a bodyless declaration — nothing to check).
            let mut k = i + 2;
            while k < tokens.len()
                && tokens[k].tok != Tok::Punct('{')
                && tokens[k].tok != Tok::Punct(';')
            {
                k += 1;
            }
            let Some(close) = brace_match(tokens, k) else {
                continue;
            };
            let sorts = tokens[k..=close]
                .iter()
                .any(|t| matches!(&t.tok, Tok::Ident(s) if s.contains("sort")));
            if !sorts {
                push(
                    out,
                    rel,
                    tokens[i + 1].line,
                    "fixed-width-records",
                    format!(
                        "`{name}` is on the snapshot/compaction path but never sorts; \
                         snapshots must keep records sorted by key for replay to \
                         verify them"
                    ),
                );
            }
        }
    }
}

/// Converts a CamelCase variant name to the SCREAMING_SNAKE suffix of
/// its tag const (`GetReply` → `GET_REPLY`).
fn camel_to_screaming(name: &str) -> String {
    let mut s = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() && i > 0 {
            s.push('_');
        }
        s.push(c.to_ascii_uppercase());
    }
    s
}

/// Variant names (with lines) of `enum <name>`, skipping attributes.
fn enum_variants(tokens: &[Token], name: &str) -> Vec<(String, u32)> {
    let Some((start, end)) = item_body(tokens, "enum", name) else {
        return Vec::new();
    };
    let mut vars = Vec::new();
    let mut i = start + 1;
    while i < end {
        // Skip `#[...]` attributes on the variant.
        while i < end && tokens[i].tok == Tok::Punct('#') {
            i += 1;
            if i < end && tokens[i].tok == Tok::Punct('[') {
                let mut depth = 1i64;
                i += 1;
                while i < end && depth > 0 {
                    match tokens[i].tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => depth -= 1,
                        _ => {}
                    }
                    i += 1;
                }
            }
        }
        if i >= end {
            break;
        }
        if let Tok::Ident(s) = &tokens[i].tok {
            vars.push((s.clone(), tokens[i].line));
        }
        // Advance to the comma that ends this variant (payload braces,
        // parens, and brackets may nest).
        let mut depth = 0i64;
        while i < end {
            match tokens[i].tok {
                Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Punct(',') if depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    vars
}

/// `const T_*` names (with lines) declared in a file.
fn tag_consts(tokens: &[Token]) -> BTreeMap<String, u32> {
    let mut consts = BTreeMap::new();
    for i in 0..tokens.len().saturating_sub(1) {
        if let (Tok::Ident(a), Tok::Ident(b)) = (&tokens[i].tok, &tokens[i + 1].tok) {
            if a == "const" && b.starts_with("T_") {
                consts.insert(b.clone(), tokens[i + 1].line);
            }
        }
    }
    consts
}

/// True when `ident` appears anywhere in `tokens[range]`.
fn span_contains(tokens: &[Token], range: (usize, usize), ident: &str) -> bool {
    tokens[range.0..=range.1]
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(s) if s == ident))
}

/// Rule 5: every `Message` variant needs a `T_*` tag const, an encoder
/// arm, a decoder arm, and coverage in `wire_proptests.rs`; orphan tag
/// consts are flagged too.
pub fn wire_exhaustiveness(files: &BTreeMap<String, Lexed>, out: &mut Vec<Diagnostic>) {
    const WIRE: &str = "crates/proto/src/wire.rs";
    const PROPS: &str = "crates/proto/tests/wire_proptests.rs";
    let Some(wire) = files.get(WIRE) else {
        return;
    };
    let variants = enum_variants(&wire.tokens, "Message");
    if variants.is_empty() {
        return;
    }
    let consts = tag_consts(&wire.tokens);
    // Scope the codec search to `impl Message` — other types in the
    // file have their own `encode`/`decode`.
    let (encode, decode) = match item_body(&wire.tokens, "impl", "Message") {
        Some((s, e)) => {
            let slice = &wire.tokens[s..=e];
            (
                item_body(slice, "fn", "encode").map(|(a, b)| (a + s, b + s)),
                item_body(slice, "fn", "decode").map(|(a, b)| (a + s, b + s)),
            )
        }
        None => (
            item_body(&wire.tokens, "fn", "encode"),
            item_body(&wire.tokens, "fn", "decode"),
        ),
    };
    let mut claimed: BTreeSet<String> = BTreeSet::new();
    for (v, vline) in &variants {
        let tag = format!("T_{}", camel_to_screaming(v));
        claimed.insert(tag.clone());
        if !consts.contains_key(&tag) {
            push(
                out,
                WIRE,
                *vline,
                "wire-exhaustiveness",
                format!("variant `{v}` has no tag const `{tag}`"),
            );
            continue;
        }
        if let Some(span) = encode {
            if !span_contains(&wire.tokens, span, &tag) {
                push(
                    out,
                    WIRE,
                    *vline,
                    "wire-exhaustiveness",
                    format!("variant `{v}`: tag `{tag}` never written by `encode`"),
                );
            }
        }
        if let Some(span) = decode {
            if !span_contains(&wire.tokens, span, &tag) {
                push(
                    out,
                    WIRE,
                    *vline,
                    "wire-exhaustiveness",
                    format!("variant `{v}`: tag `{tag}` never matched by `decode`"),
                );
            }
        }
        if let Some(props) = files.get(PROPS) {
            let covered = (0..props.tokens.len()).any(|i| path_seq(&props.tokens, i, "Message", v));
            if !covered {
                push(
                    out,
                    WIRE,
                    *vline,
                    "wire-exhaustiveness",
                    format!("variant `{v}` is never constructed in {PROPS}"),
                );
            }
        }
    }
    for (name, line) in &consts {
        if !claimed.contains(name) {
            push(
                out,
                WIRE,
                *line,
                "wire-exhaustiveness",
                format!("tag const `{name}` has no matching `Message` variant"),
            );
        }
    }
}

/// Field names (with lines) of `struct <name>`.
fn struct_fields(tokens: &[Token], name: &str) -> Vec<(String, u32)> {
    let Some((start, end)) = item_body(tokens, "struct", name) else {
        return Vec::new();
    };
    let mut fields = Vec::new();
    let mut i = start + 1;
    while i < end {
        match &tokens[i].tok {
            Tok::Punct('#') => {
                // Skip field attributes.
                i += 1;
                if i < end && tokens[i].tok == Tok::Punct('[') {
                    let mut depth = 1i64;
                    i += 1;
                    while i < end && depth > 0 {
                        match tokens[i].tok {
                            Tok::Punct('[') => depth += 1,
                            Tok::Punct(']') => depth -= 1,
                            _ => {}
                        }
                        i += 1;
                    }
                }
            }
            Tok::Ident(s) if s == "pub" => i += 1,
            Tok::Ident(s)
                if tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                    && tokens.get(i + 2).map(|t| &t.tok) != Some(&Tok::Punct(':')) =>
            {
                fields.push((s.clone(), tokens[i].line));
                // Skip past this field's type to the separating comma.
                let mut depth = 0i64;
                i += 2;
                while i < end {
                    match tokens[i].tok {
                        Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                        Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                        Tok::Punct(',') if depth == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    fields
}

/// Rule 6: every `NodeStats` field must be backed by a registered
/// metric — its name must appear as a string literal in the metrics
/// module (where `NodeMetrics::register` declares counters and
/// `NodeStats::from_snapshot` matches them back) — and the chaos dump
/// must iterate the registry via `metric_snapshots` rather than
/// hand-copying fields.
pub fn stats_registry(files: &BTreeMap<String, Lexed>, out: &mut Vec<Diagnostic>) {
    const STATS: &str = "crates/proto/src/node/metrics.rs";
    const DUMP: &str = "crates/bench/src/chaos.rs";
    let Some(node) = files.get(STATS) else {
        return;
    };
    let fields = struct_fields(&node.tokens, "NodeStats");
    if fields.is_empty() {
        return;
    }
    let strings: BTreeSet<&str> = node
        .tokens
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Str(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    for (f, line) in &fields {
        if !strings.contains(f.as_str()) {
            push(
                out,
                STATS,
                *line,
                "stats-registry",
                format!(
                    "`NodeStats` field `{f}` has no registry metric: the string \
                     literal \"{f}\" never appears in {STATS}"
                ),
            );
        }
    }
    let Some(dump) = files.get(DUMP) else {
        push(
            out,
            STATS,
            fields[0].1,
            "stats-registry",
            format!("`NodeStats` exists but the stats dump {DUMP} is missing"),
        );
        return;
    };
    let iterates = dump
        .tokens
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(s) if s == "metric_snapshots"));
    if !iterates {
        push(
            out,
            DUMP,
            1,
            "stats-registry",
            format!(
                "chaos dump {DUMP} never calls `metric_snapshots`; node metrics \
                 must reach artifacts by iterating the obs registry"
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// Interprocedural passes over the symbol-table model.
// ---------------------------------------------------------------------------

/// Bounded call depth for the interprocedural `no-panic-hot-path`
/// pass: a panic more than this many calls away from a hot entry point
/// is out of scope (and out of the approximate graph's precision).
const PANIC_CALL_DEPTH: usize = 4;

/// Bounded call depth for the interprocedural `no-hot-alloc` pass.
/// Shallower than the panic pass: allocation helpers deliberately live
/// close to the request loop.
const ALLOC_CALL_DEPTH: usize = 3;

/// How deep `lock-order` summarizes the locks a callee acquires when a
/// caller invokes it with locks held.
const LOCK_SUMMARY_DEPTH: usize = 3;

/// How deep `lock-order` chases a call before deciding whether it
/// reaches blocking I/O.
const IO_CALL_DEPTH: usize = 3;

/// Method/function names that block on the network or disk. Holding a
/// lock across any of these in the hot set serializes unrelated
/// requests behind I/O latency.
const IO_CALLS: [&str; 14] = [
    "connect",
    "connect_timeout",
    "flush",
    "read_exact",
    "read_message",
    "read_to_end",
    "recv_from",
    "send_to",
    "sync_all",
    "sync_data",
    "write",
    "write_all",
    "write_message",
    "write_vectored",
];

/// Breadth-first reachability from `entry` through the call graph, up
/// to `depth_cap` edges. Returns fn index → (parent fn, call line,
/// depth); the BFS order (source order of calls, index order of
/// candidates) makes the recorded chain for each fn deterministic and
/// shortest-first.
fn reach(model: &Model, entry: usize, depth_cap: usize) -> BTreeMap<usize, (usize, u32, usize)> {
    let mut parents: BTreeMap<usize, (usize, u32, usize)> = BTreeMap::new();
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    seen.insert(entry);
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    queue.push_back((entry, 0));
    while let Some((at, d)) = queue.pop_front() {
        if d == depth_cap {
            continue;
        }
        for c in &model.fns[at].calls {
            for &t in model.resolve(&c.name) {
                if seen.insert(t) {
                    parents.insert(t, (at, c.line, d + 1));
                    queue.push_back((t, d + 1));
                }
            }
        }
    }
    parents
}

/// Shared shape of the two reachability rules: for every non-test entry
/// fn whose file is in `hot`, find every workspace fn reachable within
/// `depth_cap` calls whose file is *outside* `hot` (the depth-0 token
/// rule already covers in-set files) and which contains sites of
/// interest. Each offending site keeps its single best chain (shortest,
/// then lexicographically first) and is reported at the site itself,
/// with the chain's call sites as alternate allow locations.
fn reachability_rule(
    model: &Model,
    hot: &[&str],
    depth_cap: usize,
    rule: &'static str,
    sites: impl Fn(&FnInfo) -> Vec<(String, u32)>,
    message: impl Fn(&FnInfo, &FnInfo, &str, &str) -> String,
    out: &mut Vec<Diagnostic>,
) {
    // (leaf file, line, ident) → (depth, chain, entry idx, leaf idx,
    // chain call sites).
    type Best = (usize, String, usize, usize, Vec<(String, u32)>);
    let mut best: BTreeMap<(String, u32, String), Best> = BTreeMap::new();
    for (ei, ef) in model.fns.iter().enumerate() {
        if ef.in_test || !hot.contains(&ef.file.as_str()) {
            continue;
        }
        let parents = reach(model, ei, depth_cap);
        for (&li, &(_, _, d)) in &parents {
            let lf = &model.fns[li];
            if hot.contains(&lf.file.as_str()) {
                continue;
            }
            let leaf_sites = sites(lf);
            if leaf_sites.is_empty() {
                continue;
            }
            // Reconstruct the entry → leaf chain.
            let mut names = vec![lf.name.clone()];
            let mut call_sites: Vec<(String, u32)> = Vec::new();
            let mut cur = li;
            while cur != ei {
                let (p, line, _) = parents[&cur];
                call_sites.push((model.fns[p].file.clone(), line));
                names.push(model.fns[p].name.clone());
                cur = p;
            }
            names.reverse();
            call_sites.reverse();
            let chain = names.join("` -> `");
            for (ident, line) in leaf_sites {
                let key = (lf.file.clone(), line, ident);
                let better = match best.get(&key) {
                    Some((bd, bc, ..)) => (d, &chain) < (*bd, bc),
                    None => true,
                };
                if better {
                    best.insert(key, (d, chain.clone(), ei, li, call_sites.clone()));
                }
            }
        }
    }
    for ((file, line, ident), (_, chain, ei, li, call_sites)) in best {
        out.push(Diagnostic {
            file,
            line,
            rule: rule.to_string(),
            message: message(&model.fns[ei], &model.fns[li], &ident, &chain),
            allowable: true,
            also: call_sites,
        });
    }
}

/// Interprocedural half of rule 4: a hot-path entry point must not
/// reach a panic-family ident through any workspace helper within
/// [`PANIC_CALL_DEPTH`] calls.
pub fn no_panic_reachable(model: &Model, out: &mut Vec<Diagnostic>) {
    reachability_rule(
        model,
        &scope::PANIC_HOT,
        PANIC_CALL_DEPTH,
        "no-panic-hot-path",
        |f| f.panics.clone(),
        |entry, leaf, ident, chain| {
            format!(
                "`{ident}` in `{}` is reachable from hot-path `{}` ({}) via `{chain}`; \
                 return an error along the chain instead of panicking a shard/worker thread",
                leaf.name, entry.name, entry.file
            )
        },
        out,
    );
}

/// Interprocedural half of rule 7: a hot-path entry point must not
/// reach a per-request allocation idiom through any workspace helper
/// within [`ALLOC_CALL_DEPTH`] calls.
pub fn no_alloc_reachable(model: &Model, out: &mut Vec<Diagnostic>) {
    reachability_rule(
        model,
        &scope::ALLOC_HOT,
        ALLOC_CALL_DEPTH,
        "no-hot-alloc",
        |f| f.allocs.clone(),
        |entry, leaf, what, chain| {
            format!(
                "`{what}` in `{}` allocates per-request, reachable from hot-path `{}` \
                 ({}) via `{chain}`; preallocate, reuse a scratch buffer, or slice a \
                 refcounted `Bytes`",
                leaf.name, entry.name, entry.file
            )
        },
        out,
    );
}

/// Resolves the `call:` pseudo-locks the model records for let-bound
/// calls: when every candidate for the callee name is a guard-returning
/// fn, the binding holds the callee's own locks; otherwise (plain value
/// result, or unresolvable name) the pseudo-entry is dropped. Real lock
/// ids pass through. Deduplicated and sorted.
fn real_held(model: &Model, held: &[HeldLock]) -> Vec<HeldLock> {
    let mut out: Vec<HeldLock> = Vec::new();
    for h in held {
        if let Some(name) = h.lock.strip_prefix("call:") {
            let targets = model.resolve(name);
            if !targets.is_empty() && targets.iter().all(|&t| model.fns[t].returns_guard) {
                for &t in targets {
                    for a in &model.fns[t].acquires {
                        out.push(HeldLock {
                            lock: a.lock.clone(),
                            line: h.line,
                        });
                    }
                }
            }
        } else {
            out.push(h.clone());
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Locks `start` (and everything it calls, to `depth_cap`) acquires,
/// each with the call chain (starting at `start`) that first reaches
/// it. Used to summarize a callee for a caller that invokes it with
/// locks held.
fn transitive_acquires(model: &Model, start: usize, depth_cap: usize) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = Vec::new();
    let mut seen_locks: BTreeSet<String> = BTreeSet::new();
    let mut seen_fns: BTreeSet<usize> = BTreeSet::new();
    seen_fns.insert(start);
    let mut queue: VecDeque<(usize, usize, String)> = VecDeque::new();
    queue.push_back((start, 0, format!("`{}`", model.fns[start].name)));
    while let Some((at, d, chain)) = queue.pop_front() {
        for a in &model.fns[at].acquires {
            if seen_locks.insert(a.lock.clone()) {
                out.push((a.lock.clone(), chain.clone()));
            }
        }
        if d == depth_cap {
            continue;
        }
        for c in &model.fns[at].calls {
            for &t in model.resolve(&c.name) {
                if seen_fns.insert(t) {
                    queue.push_back((t, d + 1, format!("{chain} -> `{}`", model.fns[t].name)));
                }
            }
        }
    }
    out
}

/// The global lock-order graph: an edge `A -> B` whenever some fn
/// acquires `B` with `A` held — directly, or through a call whose
/// callee (summarized to [`LOCK_SUMMARY_DEPTH`]) acquires `B`.
pub fn lock_graph(model: &Model) -> DiGraph {
    let mut g = DiGraph::default();
    for (fi, f) in model.fns.iter().enumerate().filter(|(_, f)| !f.in_test) {
        for a in &f.acquires {
            for h in real_held(model, &a.held) {
                g.add_edge(
                    &h.lock,
                    &a.lock,
                    EdgeInfo {
                        file: f.file.clone(),
                        line: a.line,
                        detail: format!("in `{}`", f.name),
                    },
                );
            }
        }
        for c in &f.calls {
            let held = real_held(model, &c.held);
            if held.is_empty() {
                continue;
            }
            for &t in model.resolve(&c.name) {
                // A fn invoking its own name on another receiver is a
                // delegating wrapper (`HintShards::purge_location` →
                // `HintCache::purge_location`), not recursion; counting
                // it would forge a self-edge for every such wrapper.
                if t == fi {
                    continue;
                }
                for (lock, chain) in transitive_acquires(model, t, LOCK_SUMMARY_DEPTH) {
                    for h in &held {
                        g.add_edge(
                            &h.lock,
                            &lock,
                            EdgeInfo {
                                file: f.file.clone(),
                                line: c.line,
                                detail: format!("via `{}` -> {chain}", f.name),
                            },
                        );
                    }
                }
            }
        }
    }
    g
}

/// For each fn, the first blocking-I/O callee name it reaches within
/// [`IO_CALL_DEPTH`] calls (directly or through workspace helpers).
fn io_reach(model: &Model) -> BTreeMap<usize, String> {
    let mut out = BTreeMap::new();
    for i in 0..model.fns.len() {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        seen.insert(i);
        let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
        queue.push_back((i, 0));
        'bfs: while let Some((at, d)) = queue.pop_front() {
            for c in &model.fns[at].calls {
                if IO_CALLS.contains(&c.name.as_str()) {
                    out.insert(i, c.name.clone());
                    break 'bfs;
                }
                if d == IO_CALL_DEPTH {
                    continue;
                }
                for &t in model.resolve(&c.name) {
                    if seen.insert(t) {
                        queue.push_back((t, d + 1));
                    }
                }
            }
        }
    }
    out
}

/// Rule 9, `lock-order`: builds the global lock-order graph, flags
/// every cycle (a potential deadlock) with a representative acquisition
/// chain, flags edges that invert the canonical ranking declared in
/// LINTS.md, and flags hot-path code holding a lock across blocking
/// I/O.
pub fn lock_order(model: &Model, ranking: Option<&[String]>, out: &mut Vec<Diagnostic>) {
    let g = lock_graph(model);

    // Potential deadlocks: cycles in the lock-order graph. Each gets
    // one diagnostic, anchored at the cycle's first acquisition site,
    // with the other edges' sites as alternate allow locations.
    for comp in g.cycles() {
        let edges = g.cycle_edges(&comp);
        let sites: Vec<(String, u32, String)> = edges
            .iter()
            .map(|(a, b)| {
                let info = &g.edges[&(a.clone(), b.clone())];
                (
                    info.file.clone(),
                    info.line,
                    format!(
                        "`{a}` -> `{b}` at {}:{} ({})",
                        info.file, info.line, info.detail
                    ),
                )
            })
            .collect();
        let anchor = sites
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| (s.0.clone(), s.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mut path: Vec<String> = edges.iter().map(|(a, _)| format!("`{a}`")).collect();
        if let Some((_, last)) = edges.last() {
            path.push(format!("`{last}`"));
        }
        let segments: Vec<String> = sites.iter().map(|s| s.2.clone()).collect();
        out.push(Diagnostic {
            file: sites[anchor].0.clone(),
            line: sites[anchor].1,
            rule: "lock-order".to_string(),
            message: format!(
                "lock-order cycle {}: {}; establish one global acquisition order",
                path.join(" -> "),
                segments.join(", ")
            ),
            allowable: true,
            also: sites
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != anchor)
                .map(|(_, s)| (s.0.clone(), s.1))
                .collect(),
        });
    }

    // Ranking inversions: an edge A -> B where LINTS.md ranks B before
    // A. Cycle-free trees can still violate the declared order.
    if let Some(ranking) = ranking {
        let rank: BTreeMap<&str, usize> = ranking
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        for ((a, b), info) in &g.edges {
            if a == b {
                continue;
            }
            let (Some(&ra), Some(&rb)) = (rank.get(a.as_str()), rank.get(b.as_str())) else {
                continue;
            };
            if ra > rb {
                push(
                    out,
                    &info.file,
                    info.line,
                    "lock-order",
                    format!(
                        "`{b}` acquired while `{a}` is held inverts the canonical lock \
                         ranking in LINTS.md (`{b}` ranks before `{a}`); acquire in \
                         ranking order or narrow the held scope"
                    ),
                );
            }
        }
    }

    // Locks held across blocking I/O in the hot set: every request on
    // the same lock waits out the disk/network behind it.
    let io = io_reach(model);
    let mut seen: BTreeSet<(String, u32, String)> = BTreeSet::new();
    for f in model.fns.iter().filter(|f| !f.in_test) {
        if !scope::HOT_PATH.contains(&f.file.as_str()) {
            continue;
        }
        for c in &f.calls {
            let held = real_held(model, &c.held);
            if held.is_empty() {
                continue;
            }
            if IO_CALLS.contains(&c.name.as_str()) {
                for h in &held {
                    if seen.insert((f.file.clone(), c.line, h.lock.clone())) {
                        out.push(Diagnostic {
                            file: f.file.clone(),
                            line: c.line,
                            rule: "lock-order".to_string(),
                            message: format!(
                                "blocking I/O `{}` called while `{}` is held (acquired \
                                 line {}); shrink the lock scope so requests never wait \
                                 on I/O behind a lock",
                                c.name, h.lock, h.line
                            ),
                            allowable: true,
                            also: vec![(f.file.clone(), h.line)],
                        });
                    }
                }
                continue;
            }
            for &t in model.resolve(&c.name) {
                let Some(io_name) = io.get(&t) else { continue };
                for h in &held {
                    if seen.insert((f.file.clone(), c.line, h.lock.clone())) {
                        out.push(Diagnostic {
                            file: f.file.clone(),
                            line: c.line,
                            rule: "lock-order".to_string(),
                            message: format!(
                                "`{}` reaches blocking I/O (`{io_name}`) while `{}` is \
                                 held (acquired line {}); shrink the lock scope so \
                                 requests never wait on I/O behind a lock",
                                c.name, h.lock, h.line
                            ),
                            allowable: true,
                            also: vec![(f.file.clone(), h.line)],
                        });
                    }
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model_of(files: &[(&str, &str)]) -> Model {
        let lexed: BTreeMap<String, crate::lexer::Lexed> = files
            .iter()
            .map(|(rel, src)| (rel.to_string(), lex(src)))
            .collect();
        Model::build(&lexed)
    }

    #[test]
    fn delegating_wrapper_is_not_a_lock_cycle() {
        // `Shards::purge_location` holds the shard guard while calling
        // `Cache::purge_location`; name-based resolution offers the
        // wrapper itself as a candidate, which must be skipped or every
        // such wrapper forges a `shards -> shards` deadlock cycle.
        let m = model_of(&[
            (
                "crates/proto/src/node/mod.rs",
                "impl Shards {\n  fn purge_location(&self, loc: u64) -> usize {\n    self.shards.iter().map(|s| s.lock().purge_location(loc)).sum()\n  }\n}\n",
            ),
            (
                "crates/proto/src/node/cache.rs",
                "impl Cache {\n  pub fn purge_location(&mut self, loc: u64) -> usize { 0 }\n}\n",
            ),
        ]);
        let g = lock_graph(&m);
        assert!(
            !g.edges
                .contains_key(&("proto/shards".to_string(), "proto/shards".to_string())),
            "self-call through a delegating wrapper must not become a self-edge"
        );
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn camel_to_screaming_handles_runs() {
        assert_eq!(camel_to_screaming("Get"), "GET");
        assert_eq!(camel_to_screaming("GetReply"), "GET_REPLY");
        assert_eq!(camel_to_screaming("FindNearestReply"), "FIND_NEAREST_REPLY");
    }

    #[test]
    fn enum_variants_skip_attributes_and_payloads() {
        let src = "enum Message {\n  Get { url: String },\n  #[allow(dead_code)]\n  Ping,\n  Reply(Vec<u8>),\n}\n";
        let vars = enum_variants(&lex(src).tokens, "Message");
        let names: Vec<&str> = vars.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["Get", "Ping", "Reply"]);
    }

    #[test]
    fn field_types_classify_fixed_width() {
        let src = "struct LogRecord {\n  pub key: u64,\n  pub digest: [u8; 16],\n  pub url: String,\n  pub slots: Vec<u64>,\n  pub off: usize,\n}\n";
        let lx = lex(src);
        let fields = struct_field_types(&lx.tokens, "LogRecord");
        let verdicts: Vec<(&str, bool)> = fields
            .iter()
            .map(|(n, _, span)| (n.as_str(), type_is_fixed_width(&lx.tokens, *span)))
            .collect();
        assert_eq!(
            verdicts,
            [
                ("key", true),
                ("digest", true),
                ("url", false),
                ("slots", false),
                ("off", false),
            ]
        );
    }

    #[test]
    fn struct_fields_see_through_pub_and_attrs() {
        let src = "struct NodeStats {\n  pub a: u64,\n  #[serde(default)]\n  pub b_count: u64,\n  c: std::collections::BTreeMap<u64, u64>,\n}\n";
        let fields = struct_fields(&lex(src).tokens, "NodeStats");
        let names: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b_count", "c"]);
    }
}
