//! `bh-lint`: a repo-specific static analysis pass enforcing the
//! determinism and resilience invariants this reproduction rests on.
//!
//! Nine rules (see `LINTS.md` at the repo root):
//!
//! 1. `no-wall-clock` — `Instant::now`/`SystemTime::now` only in real
//!    I/O modules; simulation and bench code must be replayable.
//! 2. `no-ambient-rng` — RNGs are built from explicit seeds, never
//!    ambient entropy.
//! 3. `ordered-iteration` — no `HashMap`/`HashSet` in artifact-writing
//!    paths; iteration order must be defined.
//! 4. `no-panic-hot-path` — no `unwrap`/`expect`/`panic!` in proto
//!    shard/worker/pool code, nor in any workspace helper such code
//!    reaches within bounded call depth; errors are returned and
//!    counted.
//! 5. `wire-exhaustiveness` — every wire frame tag has an encoder arm,
//!    a decoder arm, and proptest coverage.
//! 6. `stats-registry` — every `NodeStats` field is backed by a
//!    registered obs metric, and the chaos dump iterates the registry.
//! 7. `no-hot-alloc` — no `.to_vec()` / `Vec::new()` / `BytesMut::new()`
//!    in the wire-speed data-path hot set or the helpers it reaches;
//!    reuse scratch buffers and refcounted `Bytes` slices instead.
//! 8. `fixed-width-records` — on-disk `*Record` structs in the durable
//!    hint-log crate hold only fixed-width primitives/arrays, and
//!    snapshot/compaction functions visibly maintain the sorted-records
//!    invariant.
//! 9. `lock-order` — the global "lock A held while acquiring B" graph
//!    must be acyclic, must respect the canonical lock ranking declared
//!    in `LINTS.md`, and hot-path code must not hold a lock across
//!    blocking I/O.
//!
//! The analyzer is layered (see DESIGN.md "analyzer architecture"):
//! `lexer` flattens each file to tokens, `model` lifts the tokens into
//! a workspace symbol table with call sites and lock-acquisition sites,
//! `graph` provides the deterministic digraph machinery, and `rules`
//! runs both the per-file token scans and the interprocedural passes
//! over the model.
//!
//! Findings can be waived per line with
//! `// bh-lint: allow(<rule>, reason = "...")`, which covers its own
//! line and the next. Interprocedural findings can be waived at the
//! offending site itself or at any call site along the reported chain.
//! A reason is mandatory; unused, reason-less, unknown-rule, or
//! malformed directives are themselves diagnostics (rule
//! `allow-hygiene`) and cannot be allowed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod lexer;
pub mod model;
pub mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// The shared scope table: every path-scoped rule keys on one of these
/// lists, so adding a file to a scope is a one-line change covered by
/// every rule that cares about it.
pub mod scope {
    /// Modules allowed to read the wall clock: the real-I/O edge of the
    /// system (epoll shards, connection pool timeouts, heartbeat
    /// pacing, live-mesh drivers). Everything else must take time as a
    /// parameter or use the simulated clock.
    pub const WALL_CLOCK_IO: [&str; 8] = [
        "crates/netpoll/src/",
        "crates/proto/src/pool.rs",
        "crates/proto/src/node/",
        "crates/proto/src/origin.rs",
        "crates/proto/src/client.rs",
        "crates/proto/src/replay.rs",
        "crates/proto/src/bin/",
        "crates/proto/tests/",
    ];

    /// Artifact-writing paths where iteration order reaches JSON files,
    /// stdout tables, or event logs.
    pub const ARTIFACT_PATHS: [&str; 4] = [
        "crates/bench/src/",
        "crates/proto/src/chaos.rs",
        "crates/proto/src/replay.rs",
        "crates/trace/src/scenario.rs",
    ];

    /// Hot-path files where a panic wedges a shard/worker thread the
    /// chaos layer cannot deterministically recover. Entry points for
    /// the interprocedural `no-panic-hot-path` pass.
    pub const PANIC_HOT: [&str; 4] = [
        "crates/proto/src/node/engine.rs",
        "crates/proto/src/node/metrics.rs",
        "crates/proto/src/node/mod.rs",
        "crates/proto/src/pool.rs",
    ];

    /// The wire-speed data-path hot set: files whose per-request
    /// allocations show up directly in the req/s ceiling. Entry points
    /// for the interprocedural `no-hot-alloc` pass. Kept in lockstep
    /// with the DESIGN.md data-path section.
    pub const ALLOC_HOT: [&str; 3] = [
        "crates/proto/src/node/engine.rs",
        "crates/proto/src/node/mod.rs",
        "crates/proto/src/wire.rs",
    ];

    /// Union of the panic and alloc hot sets: the request path. The
    /// `lock-order` held-across-I/O check applies here.
    pub const HOT_PATH: [&str; 5] = [
        "crates/proto/src/node/engine.rs",
        "crates/proto/src/node/metrics.rs",
        "crates/proto/src/node/mod.rs",
        "crates/proto/src/pool.rs",
        "crates/proto/src/wire.rs",
    ];

    /// The durable-storage crate: everything that writes bytes the next
    /// process must be able to replay.
    pub const DURABLE_STORE: &str = "crates/hintlog/src/";
}

/// One finding, rendered as `{file}:{line}: [{rule}] {message}`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule name (one of [`rules::RULES`], or `allow-hygiene`).
    pub rule: String,
    /// Human-readable description.
    pub message: String,
    /// Whether an allow directive may waive this finding. Hygiene
    /// diagnostics set this false.
    pub allowable: bool,
    /// Alternate waive sites for interprocedural findings: the call
    /// sites of the reported chain (or the other edges of a lock
    /// cycle). An allow at any of them waives the finding too.
    pub also: Vec<(String, u32)>,
}

impl Diagnostic {
    /// Renders the diagnostic in the stable one-line format used by
    /// both the CLI and the fixture goldens.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Result of checking a tree.
#[derive(Debug)]
pub struct Report {
    /// Unallowed findings, sorted by (file, line, rule, message).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of findings waived by a well-formed allow directive.
    pub allows_honored: usize,
}

impl Report {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Directories never scanned, by name, at any depth.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "vendor"];

/// Repo-relative paths never scanned (the lint fixtures are violation
/// corpora by design).
const SKIP_PREFIXES: [&str; 1] = ["crates/lint/fixtures"];

fn collect_files(root: &Path, rel: &str, out: &mut Vec<String>) -> io::Result<()> {
    let dir = if rel.is_empty() {
        root.to_path_buf()
    } else {
        root.join(rel)
    };
    let mut entries: Vec<(String, bool)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        entries.push((name, entry.file_type()?.is_dir()));
    }
    entries.sort();
    for (name, is_dir) in entries {
        let child = if rel.is_empty() {
            name.clone()
        } else {
            format!("{rel}/{name}")
        };
        if is_dir {
            if SKIP_DIRS.contains(&name.as_str()) || SKIP_PREFIXES.contains(&child.as_str()) {
                continue;
            }
            collect_files(root, &child, out)?;
        } else if name.ends_with(".rs") {
            out.push(child);
        }
    }
    Ok(())
}

fn lex_tree(root: &Path) -> io::Result<BTreeMap<String, lexer::Lexed>> {
    let mut files = Vec::new();
    collect_files(root, "", &mut files)?;
    let mut lexed = BTreeMap::new();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        lexed.insert(rel, lexer::lex(&src));
    }
    Ok(lexed)
}

/// Parses the canonical lock ranking out of the tree's `LINTS.md`: the
/// backtick-quoted lock ids (containing `/`) between the
/// `<!-- lock-ranking:begin -->` and `<!-- lock-ranking:end -->`
/// markers, in declaration order. `None` when the tree has no ranking
/// (fixture trees usually don't), which skips the inversion check.
pub fn load_ranking(root: &Path) -> Option<Vec<String>> {
    let text = fs::read_to_string(root.join("LINTS.md")).ok()?;
    let mut inside = false;
    let mut ranking = Vec::new();
    for line in text.lines() {
        if line.contains("lock-ranking:begin") {
            inside = true;
            continue;
        }
        if line.contains("lock-ranking:end") {
            break;
        }
        if !inside {
            continue;
        }
        let mut rest = line;
        while let Some(a) = rest.find('`') {
            let tail = &rest[a + 1..];
            let Some(b) = tail.find('`') else { break };
            let id = &tail[..b];
            if id.contains('/') && !id.contains(char::is_whitespace) {
                ranking.push(id.to_string());
            }
            rest = &tail[b + 1..];
        }
    }
    if ranking.is_empty() {
        None
    } else {
        Some(ranking)
    }
}

/// Runs every rule over the `.rs` files under `root`, resolves allow
/// directives, and returns the surviving diagnostics sorted.
pub fn check_root(root: &Path) -> io::Result<Report> {
    let lexed = lex_tree(root)?;
    let files_scanned = lexed.len();

    let mut raw: Vec<Diagnostic> = Vec::new();
    for (rel, lx) in &lexed {
        rules::no_wall_clock(rel, lx, &mut raw);
        rules::no_ambient_rng(rel, lx, &mut raw);
        rules::ordered_iteration(rel, lx, &mut raw);
        rules::no_panic_hot_path(rel, lx, &mut raw);
        rules::no_hot_alloc(rel, lx, &mut raw);
        rules::fixed_width_records(rel, lx, &mut raw);
    }
    rules::wire_exhaustiveness(&lexed, &mut raw);
    rules::stats_registry(&lexed, &mut raw);

    // The interprocedural passes run over the symbol-table model.
    let model = model::Model::build(&lexed);
    let ranking = load_ranking(root);
    rules::no_panic_reachable(&model, &mut raw);
    rules::no_alloc_reachable(&model, &mut raw);
    rules::lock_order(&model, ranking.as_deref(), &mut raw);

    // Allow resolution: a well-formed directive (known rule, nonempty
    // reason) waives matching findings on its own line and the next.
    // Interprocedural findings carry alternate sites (`also`) — the
    // chain's call sites — and an allow at any of them counts.
    let mut survivors: Vec<Diagnostic> = Vec::new();
    let mut allows_honored = 0usize;
    let mut used: BTreeMap<(String, u32), bool> = BTreeMap::new();
    for d in raw {
        let mut sites = vec![(d.file.clone(), d.line)];
        sites.extend(d.also.iter().cloned());
        let waived = d.allowable
            && sites.iter().any(|(file, line)| {
                let Some(lx) = lexed.get(file) else {
                    return false;
                };
                lx.allows.iter().any(|a| {
                    let eligible = a.rule == d.rule
                        && rules::RULES.contains(&a.rule.as_str())
                        && a.reason.as_deref().is_some_and(|r| !r.trim().is_empty())
                        && (*line == a.line || *line == a.line + 1);
                    if eligible {
                        used.insert((file.clone(), a.line), true);
                    }
                    eligible
                })
            });
        if waived {
            allows_honored += 1;
        } else {
            survivors.push(d);
        }
    }

    // Hygiene diagnostics: malformed, unknown-rule, reason-less, and
    // unused directives. These cannot themselves be allowed.
    for (rel, lx) in &lexed {
        for m in &lx.malformed {
            survivors.push(Diagnostic {
                file: rel.clone(),
                line: m.line,
                rule: "allow-hygiene".into(),
                message: format!("malformed bh-lint directive: {}", m.detail),
                allowable: false,
                also: Vec::new(),
            });
        }
        for a in &lx.allows {
            if !rules::RULES.contains(&a.rule.as_str()) {
                survivors.push(Diagnostic {
                    file: rel.clone(),
                    line: a.line,
                    rule: "allow-hygiene".into(),
                    message: format!("allow names unknown rule `{}`", a.rule),
                    allowable: false,
                    also: Vec::new(),
                });
            } else if a.reason.as_deref().is_none_or(|r| r.trim().is_empty()) {
                survivors.push(Diagnostic {
                    file: rel.clone(),
                    line: a.line,
                    rule: "allow-hygiene".into(),
                    message: format!("allow({}) must carry a reason = \"...\"", a.rule),
                    allowable: false,
                    also: Vec::new(),
                });
            } else if !used.contains_key(&(rel.clone(), a.line)) {
                survivors.push(Diagnostic {
                    file: rel.clone(),
                    line: a.line,
                    rule: "allow-hygiene".into(),
                    message: format!(
                        "unused allow({}); nothing fires on this or the next line",
                        a.rule
                    ),
                    allowable: false,
                    also: Vec::new(),
                });
            }
        }
    }

    survivors.sort();
    Ok(Report {
        diagnostics: survivors,
        files_scanned,
        allows_honored,
    })
}

/// The two graphs the `graph` CLI subcommand dumps for operators.
#[derive(Debug)]
pub struct Graphs {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of functions in the symbol table.
    pub fns: usize,
    /// Approximate call graph; node ids are `{file}::{fn}`.
    pub call_graph: graph::DiGraph,
    /// Global lock-order graph; node ids are `{crate}/{receiver}`.
    pub lock_graph: graph::DiGraph,
}

/// Builds the call graph and lock-order graph for the tree under
/// `root`, without running the rules.
pub fn graph_root(root: &Path) -> io::Result<Graphs> {
    let lexed = lex_tree(root)?;
    let model = model::Model::build(&lexed);
    let mut call_graph = graph::DiGraph::default();
    for f in model.fns.iter().filter(|f| !f.in_test) {
        let from = format!("{}::{}", f.file, f.name);
        for c in &f.calls {
            for &t in model.resolve(&c.name) {
                let tf = &model.fns[t];
                call_graph.add_edge(
                    &from,
                    &format!("{}::{}", tf.file, tf.name),
                    graph::EdgeInfo {
                        file: f.file.clone(),
                        line: c.line,
                        detail: format!("`{}` calls `{}`", f.name, tf.name),
                    },
                );
            }
        }
    }
    let lock_graph = rules::lock_graph(&model);
    Ok(Graphs {
        files_scanned: lexed.len(),
        fns: model.fns.len(),
        call_graph,
        lock_graph,
    })
}
