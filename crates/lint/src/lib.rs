//! `bh-lint`: a repo-specific static analysis pass enforcing the
//! determinism and resilience invariants this reproduction rests on.
//!
//! Eight rules (see `LINTS.md` at the repo root):
//!
//! 1. `no-wall-clock` — `Instant::now`/`SystemTime::now` only in real
//!    I/O modules; simulation and bench code must be replayable.
//! 2. `no-ambient-rng` — RNGs are built from explicit seeds, never
//!    ambient entropy.
//! 3. `ordered-iteration` — no `HashMap`/`HashSet` in artifact-writing
//!    paths; iteration order must be defined.
//! 4. `no-panic-hot-path` — no `unwrap`/`expect`/`panic!` in proto
//!    shard/worker/pool code; errors are returned and counted.
//! 5. `wire-exhaustiveness` — every wire frame tag has an encoder arm,
//!    a decoder arm, and proptest coverage.
//! 6. `stats-registry` — every `NodeStats` field is backed by a
//!    registered obs metric, and the chaos dump iterates the registry.
//! 7. `no-hot-alloc` — no `.to_vec()` / `Vec::new()` / `BytesMut::new()`
//!    in the wire-speed data-path hot set; reuse scratch buffers and
//!    refcounted `Bytes` slices instead.
//! 8. `fixed-width-records` — on-disk `*Record` structs in the durable
//!    hint-log crate hold only fixed-width primitives/arrays, and
//!    snapshot/compaction functions visibly maintain the sorted-records
//!    invariant.
//!
//! Findings can be waived per line with
//! `// bh-lint: allow(<rule>, reason = "...")`, which covers its own
//! line and the next. A reason is mandatory; unused, reason-less,
//! unknown-rule, or malformed directives are themselves diagnostics
//! (rule `allow-hygiene`) and cannot be allowed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// One finding, rendered as `{file}:{line}: [{rule}] {message}`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule name (one of [`rules::RULES`], or `allow-hygiene`).
    pub rule: String,
    /// Human-readable description.
    pub message: String,
    /// Whether an allow directive may waive this finding. Hygiene
    /// diagnostics set this false.
    pub allowable: bool,
}

impl Diagnostic {
    /// Renders the diagnostic in the stable one-line format used by
    /// both the CLI and the fixture goldens.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Result of checking a tree.
#[derive(Debug)]
pub struct Report {
    /// Unallowed findings, sorted by (file, line, rule, message).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of findings waived by a well-formed allow directive.
    pub allows_honored: usize,
}

impl Report {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Directories never scanned, by name, at any depth.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "vendor"];

/// Repo-relative paths never scanned (the lint fixtures are violation
/// corpora by design).
const SKIP_PREFIXES: [&str; 1] = ["crates/lint/fixtures"];

fn collect_files(root: &Path, rel: &str, out: &mut Vec<String>) -> io::Result<()> {
    let dir = if rel.is_empty() {
        root.to_path_buf()
    } else {
        root.join(rel)
    };
    let mut entries: Vec<(String, bool)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        entries.push((name, entry.file_type()?.is_dir()));
    }
    entries.sort();
    for (name, is_dir) in entries {
        let child = if rel.is_empty() {
            name.clone()
        } else {
            format!("{rel}/{name}")
        };
        if is_dir {
            if SKIP_DIRS.contains(&name.as_str()) || SKIP_PREFIXES.contains(&child.as_str()) {
                continue;
            }
            collect_files(root, &child, out)?;
        } else if name.ends_with(".rs") {
            out.push(child);
        }
    }
    Ok(())
}

/// Runs every rule over the `.rs` files under `root`, resolves allow
/// directives, and returns the surviving diagnostics sorted.
pub fn check_root(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_files(root, "", &mut files)?;
    let mut lexed: BTreeMap<String, lexer::Lexed> = BTreeMap::new();
    for rel in &files {
        let src = fs::read_to_string(root.join(rel))?;
        lexed.insert(rel.clone(), lexer::lex(&src));
    }

    let mut raw: Vec<Diagnostic> = Vec::new();
    for (rel, lx) in &lexed {
        rules::no_wall_clock(rel, lx, &mut raw);
        rules::no_ambient_rng(rel, lx, &mut raw);
        rules::ordered_iteration(rel, lx, &mut raw);
        rules::no_panic_hot_path(rel, lx, &mut raw);
        rules::no_hot_alloc(rel, lx, &mut raw);
        rules::fixed_width_records(rel, lx, &mut raw);
    }
    rules::wire_exhaustiveness(&lexed, &mut raw);
    rules::stats_registry(&lexed, &mut raw);

    // Allow resolution: a well-formed directive (known rule, nonempty
    // reason) waives matching findings on its own line and the next.
    let mut survivors: Vec<Diagnostic> = Vec::new();
    let mut allows_honored = 0usize;
    let mut used: BTreeMap<(String, u32), bool> = BTreeMap::new();
    for d in raw {
        let lx = &lexed[&d.file];
        let waived = d.allowable
            && lx.allows.iter().any(|a| {
                let eligible = a.rule == d.rule
                    && rules::RULES.contains(&a.rule.as_str())
                    && a.reason.as_deref().is_some_and(|r| !r.trim().is_empty())
                    && (d.line == a.line || d.line == a.line + 1);
                if eligible {
                    used.insert((d.file.clone(), a.line), true);
                }
                eligible
            });
        if waived {
            allows_honored += 1;
        } else {
            survivors.push(d);
        }
    }

    // Hygiene diagnostics: malformed, unknown-rule, reason-less, and
    // unused directives. These cannot themselves be allowed.
    for (rel, lx) in &lexed {
        for m in &lx.malformed {
            survivors.push(Diagnostic {
                file: rel.clone(),
                line: m.line,
                rule: "allow-hygiene".into(),
                message: format!("malformed bh-lint directive: {}", m.detail),
                allowable: false,
            });
        }
        for a in &lx.allows {
            if !rules::RULES.contains(&a.rule.as_str()) {
                survivors.push(Diagnostic {
                    file: rel.clone(),
                    line: a.line,
                    rule: "allow-hygiene".into(),
                    message: format!("allow names unknown rule `{}`", a.rule),
                    allowable: false,
                });
            } else if a.reason.as_deref().is_none_or(|r| r.trim().is_empty()) {
                survivors.push(Diagnostic {
                    file: rel.clone(),
                    line: a.line,
                    rule: "allow-hygiene".into(),
                    message: format!("allow({}) must carry a reason = \"...\"", a.rule),
                    allowable: false,
                });
            } else if !used.contains_key(&(rel.clone(), a.line)) {
                survivors.push(Diagnostic {
                    file: rel.clone(),
                    line: a.line,
                    rule: "allow-hygiene".into(),
                    message: format!(
                        "unused allow({}); nothing fires on this or the next line",
                        a.rule
                    ),
                    allowable: false,
                });
            }
        }
    }

    survivors.sort();
    Ok(Report {
        diagnostics: survivors,
        files_scanned: files.len(),
        allows_honored,
    })
}
