//! Small deterministic directed-graph utilities shared by the
//! `lock-order` rule and the `graph` CLI subcommand: adjacency with
//! per-edge provenance, strongly-connected components, representative
//! cycle extraction, and DOT rendering.
//!
//! Everything iterates `BTreeMap`/`BTreeSet`, so diagnostics and dumps
//! are byte-stable across runs — the same property the fixture goldens
//! and CI byte-identity checks rely on elsewhere in the repo.

use std::collections::{BTreeMap, BTreeSet};

/// Where (and through what call chain) an edge was observed. Only the
/// first observation is kept; since edges are inserted in sorted file /
/// source order, the provenance is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeInfo {
    /// Repo-relative file of the acquisition/call that created the edge.
    pub file: String,
    /// 1-based line of that site.
    pub line: u32,
    /// Human-readable provenance (`in \`f\``, or a call chain).
    pub detail: String,
}

/// A directed graph over string node ids with per-edge provenance.
#[derive(Debug, Default)]
pub struct DiGraph {
    /// `(from, to)` → provenance of the first time the edge was seen.
    pub edges: BTreeMap<(String, String), EdgeInfo>,
}

impl DiGraph {
    /// Records `from -> to`; keeps the first provenance for an edge.
    pub fn add_edge(&mut self, from: &str, to: &str, info: EdgeInfo) {
        self.edges
            .entry((from.to_string(), to.to_string()))
            .or_insert(info);
    }

    /// All node ids, sorted.
    pub fn nodes(&self) -> BTreeSet<String> {
        let mut n = BTreeSet::new();
        for (a, b) in self.edges.keys() {
            n.insert(a.clone());
            n.insert(b.clone());
        }
        n
    }

    /// Sorted successor map.
    fn succ(&self) -> BTreeMap<&str, Vec<&str>> {
        let mut m: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (a, b) in self.edges.keys() {
            m.entry(a.as_str()).or_default().push(b.as_str());
        }
        m
    }

    /// Strongly-connected components that can deadlock: every SCC with
    /// more than one node, plus single nodes with a self-loop. Each
    /// component is sorted; components are sorted by first node.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let nodes: Vec<String> = self.nodes().into_iter().collect();
        let index: BTreeMap<&str, usize> = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let succ = self.succ();
        // Iterative Tarjan. The graphs here are tiny (tens of nodes),
        // but fixture trees should never be able to overflow the stack.
        let n = nodes.len();
        let mut idx = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs: Vec<Vec<String>> = Vec::new();
        for start in 0..n {
            if idx[start] != usize::MAX {
                continue;
            }
            // (node, next-successor position) call frames.
            let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
                if *pos == 0 {
                    idx[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                let succs = succ.get(nodes[v].as_str()).map_or(&[][..], |s| &s[..]);
                if *pos < succs.len() {
                    let w = index[succs[*pos]];
                    *pos += 1;
                    if idx[w] == usize::MAX {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(idx[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&mut (p, _)) = frames.last_mut() {
                        low[p] = low[p].min(low[v]);
                    }
                    if low[v] == idx[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(nodes[w].clone());
                            if w == v {
                                break;
                            }
                        }
                        comp.sort();
                        let cyclic = comp.len() > 1
                            || self.edges.contains_key(&(comp[0].clone(), comp[0].clone()));
                        if cyclic {
                            sccs.push(comp);
                        }
                    }
                }
            }
        }
        sccs.sort();
        sccs
    }

    /// A representative simple cycle through `comp` (a cyclic SCC from
    /// [`DiGraph::cycles`]): starts at the smallest node, always walks
    /// the smallest in-component successor, and ends back at the start.
    /// Returns the edge list of the cycle.
    pub fn cycle_edges(&self, comp: &[String]) -> Vec<(String, String)> {
        let set: BTreeSet<&str> = comp.iter().map(String::as_str).collect();
        let start = comp[0].as_str();
        let mut path: Vec<&str> = vec![start];
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        seen.insert(start);
        let mut cur = start;
        loop {
            let next = self
                .edges
                .keys()
                .filter(|(a, b)| a == cur && set.contains(b.as_str()))
                .map(|(_, b)| b.as_str())
                .find(|b| *b == start || !seen.contains(b));
            let Some(next) = next else {
                break;
            };
            if next == start {
                path.push(start);
                break;
            }
            path.push(next);
            seen.insert(next);
            cur = next;
        }
        path.windows(2)
            .map(|w| (w[0].to_string(), w[1].to_string()))
            .collect()
    }

    /// Renders the graph as a DOT digraph named `name`, one edge per
    /// line with the provenance site as the edge label.
    pub fn to_dot(&self, name: &str) -> String {
        let mut s = format!("digraph {name} {{\n");
        for node in self.nodes() {
            s.push_str(&format!("  \"{node}\";\n"));
        }
        for ((a, b), info) in &self.edges {
            s.push_str(&format!(
                "  \"{a}\" -> \"{b}\" [label=\"{}:{}\"];\n",
                info.file, info.line
            ));
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(file: &str, line: u32) -> EdgeInfo {
        EdgeInfo {
            file: file.into(),
            line,
            detail: String::new(),
        }
    }

    fn graph(edges: &[(&str, &str)]) -> DiGraph {
        let mut g = DiGraph::default();
        for (i, (a, b)) in edges.iter().enumerate() {
            g.add_edge(a, b, info("synthetic.rs", i as u32 + 1));
        }
        g
    }

    #[test]
    fn acyclic_graph_has_no_cycles() {
        let g = graph(&[("a", "b"), ("b", "c"), ("a", "c")]);
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn two_node_inversion_is_a_cycle() {
        let g = graph(&[("a", "b"), ("b", "a"), ("b", "c")]);
        assert_eq!(g.cycles(), vec![vec!["a".to_string(), "b".to_string()]]);
        let edges = g.cycle_edges(&["a".to_string(), "b".to_string()]);
        assert_eq!(
            edges,
            vec![
                ("a".to_string(), "b".to_string()),
                ("b".to_string(), "a".to_string())
            ]
        );
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = graph(&[("a", "a"), ("a", "b")]);
        assert_eq!(g.cycles(), vec![vec!["a".to_string()]]);
        assert_eq!(
            g.cycle_edges(&["a".to_string()]),
            vec![("a".to_string(), "a".to_string())]
        );
    }

    #[test]
    fn three_node_rotation_is_one_component() {
        let g = graph(&[("a", "b"), ("b", "c"), ("c", "a"), ("d", "a")]);
        assert_eq!(
            g.cycles(),
            vec![vec!["a".to_string(), "b".to_string(), "c".to_string()]]
        );
        let comp = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        assert_eq!(g.cycle_edges(&comp).len(), 3);
    }

    #[test]
    fn disjoint_cycles_are_separate_components() {
        let g = graph(&[("a", "b"), ("b", "a"), ("x", "y"), ("y", "x")]);
        assert_eq!(
            g.cycles(),
            vec![
                vec!["a".to_string(), "b".to_string()],
                vec!["x".to_string(), "y".to_string()],
            ]
        );
    }

    #[test]
    fn first_edge_provenance_wins() {
        let mut g = DiGraph::default();
        g.add_edge("a", "b", info("one.rs", 1));
        g.add_edge("a", "b", info("two.rs", 2));
        let e = &g.edges[&("a".to_string(), "b".to_string())];
        assert_eq!((e.file.as_str(), e.line), ("one.rs", 1));
    }

    #[test]
    fn dot_output_lists_nodes_and_labeled_edges() {
        let g = graph(&[("a", "b")]);
        let dot = g.to_dot("locks");
        assert!(dot.starts_with("digraph locks {"));
        assert!(dot.contains("\"a\" -> \"b\" [label=\"synthetic.rs:1\"];"));
    }
}
