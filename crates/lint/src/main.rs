//! CLI for `bh-lint`:
//!
//! ```text
//! bh-lint check [--root DIR] [--emit-json]   # run the rules
//! bh-lint graph [--root DIR] [--dot] [--out DIR]   # dump the graphs
//! ```
//!
//! `check` exits 0 when the tree is clean, 1 when any unallowed
//! diagnostic survives, 2 on usage or I/O errors. With `--emit-json`
//! the findings go to stdout as a versioned Report envelope (the same
//! `schema_version`/`artifact`/`payload` head every harness artifact
//! ships, so `obs validate` covers it) and the human summary moves to
//! stderr.
//!
//! `graph` prints the approximate call graph and the global lock-order
//! graph as edge lists (or DOT files with `--dot`), for operators
//! auditing what the lock-order rule sees.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: bh-lint check [--root DIR] [--emit-json]\n       \
                     bh-lint graph [--root DIR] [--dot] [--out DIR]";

/// Escapes a string for a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as a versioned Report envelope.
fn report_json(report: &bh_lint::Report) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema_version\": 1,\n  \"artifact\": \"bh_lint_report\",\n");
    s.push_str("  \"payload\": {\n");
    s.push_str(&format!(
        "    \"files_scanned\": {},\n    \"allows_honored\": {},\n    \"clean\": {},\n",
        report.files_scanned,
        report.allows_honored,
        report.is_clean()
    ));
    s.push_str("    \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n      {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            json_escape(&d.rule),
            json_escape(&d.message)
        ));
    }
    if !report.diagnostics.is_empty() {
        s.push_str("\n    ");
    }
    s.push_str("]\n  }\n}\n");
    s
}

fn check(root: &Path, emit_json: bool) -> ExitCode {
    let report = match bh_lint::check_root(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bh-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if emit_json {
        print!("{}", report_json(&report));
    } else {
        for d in &report.diagnostics {
            println!("{}", d.render());
        }
    }
    if report.is_clean() {
        let summary = format!(
            "bh-lint: clean ({} files scanned, {} allows honored)",
            report.files_scanned, report.allows_honored
        );
        if emit_json {
            eprintln!("{summary}");
        } else {
            println!("{summary}");
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bh-lint: {} unallowed diagnostic(s) across {} files",
            report.diagnostics.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}

fn graph(root: &Path, dot: bool, out_dir: Option<PathBuf>) -> ExitCode {
    let graphs = match bh_lint::graph_root(root) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("bh-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if dot {
        let call = graphs.call_graph.to_dot("bh_lint_callgraph");
        let lock = graphs.lock_graph.to_dot("bh_lint_lockgraph");
        match out_dir {
            Some(dir) => {
                if let Err(e) = std::fs::create_dir_all(&dir)
                    .and_then(|()| std::fs::write(dir.join("bh-lint-callgraph.dot"), call))
                    .and_then(|()| std::fs::write(dir.join("bh-lint-lockgraph.dot"), lock))
                {
                    eprintln!("bh-lint: cannot write dot files to {}: {e}", dir.display());
                    return ExitCode::from(2);
                }
                println!(
                    "bh-lint: wrote bh-lint-callgraph.dot and bh-lint-lockgraph.dot to {}",
                    dir.display()
                );
            }
            None => {
                print!("{call}");
                print!("{lock}");
            }
        }
    } else {
        println!(
            "# call graph: {} fns across {} files, {} edges",
            graphs.fns,
            graphs.files_scanned,
            graphs.call_graph.edges.len()
        );
        for ((a, b), info) in &graphs.call_graph.edges {
            println!("{a} -> {b}  ({}:{})", info.file, info.line);
        }
        println!(
            "# lock-order graph: {} locks, {} edges, {} cycle(s)",
            graphs.lock_graph.nodes().len(),
            graphs.lock_graph.edges.len(),
            graphs.lock_graph.cycles().len()
        );
        for ((a, b), info) in &graphs.lock_graph.edges {
            println!("{a} -> {b}  ({}:{} {})", info.file, info.line, info.detail);
        }
    }
    // A cyclic lock graph is an error even when only dumping: operators
    // (and CI's artifact step) should not need to eyeball the dot file.
    let cycles = graphs.lock_graph.cycles();
    if cycles.is_empty() {
        ExitCode::SUCCESS
    } else {
        for comp in &cycles {
            eprintln!("bh-lint: lock-order cycle through {}", comp.join(", "));
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut cmd: Option<&str> = None;
    let mut emit_json = false;
    let mut dot = false;
    let mut out_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" if cmd.is_none() => cmd = Some("check"),
            "graph" if cmd.is_none() => cmd = Some("graph"),
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--emit-json" if cmd == Some("check") => emit_json = true,
            "--dot" if cmd == Some("graph") => dot = true,
            "--out" if cmd == Some("graph") => match it.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--out needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    match cmd {
        Some("check") => check(&root, emit_json),
        Some("graph") => graph(&root, dot, out_dir),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
