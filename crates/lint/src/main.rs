//! CLI for `bh-lint`: `cargo run -p bh-lint -- check [--root DIR]`.
//!
//! Exits 0 when the tree is clean, 1 when any unallowed diagnostic
//! survives, 2 on usage or I/O errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: bh-lint check [--root DIR]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut cmd = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" if cmd.is_none() => cmd = Some("check"),
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if cmd != Some("check") {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let report = match bh_lint::check_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bh-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for d in &report.diagnostics {
        println!("{}", d.render());
    }
    if report.is_clean() {
        println!(
            "bh-lint: clean ({} files scanned, {} allows honored)",
            report.files_scanned, report.allows_honored
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bh-lint: {} unallowed diagnostic(s) across {} files",
            report.diagnostics.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
