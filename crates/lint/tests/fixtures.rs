//! Fixture self-tests: each rule has a violation corpus under
//! `fixtures/<rule>/` that mirrors the repo layout (the path-scoped
//! rules key on repo-relative paths), and an `expected.txt` golden of
//! the diagnostics it must produce. A final meta-test pins the real
//! tree clean, so CI fails the moment a violation lands anywhere.

use std::path::{Path, PathBuf};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// Checks a fixture tree against its golden and returns the report for
/// extra per-fixture assertions.
fn check_fixture(name: &str) -> bh_lint::Report {
    let root = fixture_root(name);
    let report = bh_lint::check_root(&root).expect("scan fixture tree");
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.render()).collect();
    let golden = std::fs::read_to_string(root.join("expected.txt")).expect("read golden");
    let expected: Vec<String> = golden
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(str::to_string)
        .collect();
    assert!(
        !expected.is_empty(),
        "{name}: the golden must list at least one diagnostic"
    );
    assert_eq!(
        rendered, expected,
        "{name}: diagnostics diverge from expected.txt"
    );
    report
}

#[test]
fn no_wall_clock_fixture_matches_golden() {
    let report = check_fixture("no-wall-clock");
    // The netpoll file is on the allowlist and contributes nothing.
    assert_eq!(report.files_scanned, 2);
}

#[test]
fn no_ambient_rng_fixture_matches_golden() {
    check_fixture("no-ambient-rng");
}

#[test]
fn ordered_iteration_fixture_matches_golden() {
    let report = check_fixture("ordered-iteration");
    // The non-artifact file's HashMap is not flagged.
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.file == "crates/bench/src/report.rs"));
}

#[test]
fn no_panic_hot_path_fixture_matches_golden() {
    let report = check_fixture("no-panic-hot-path");
    // The #[cfg(test)] module's unwrap is not flagged.
    assert!(report.diagnostics.iter().all(|d| d.line < 20));
}

#[test]
fn wire_exhaustiveness_fixture_matches_golden() {
    check_fixture("wire-exhaustiveness");
}

#[test]
fn stats_registry_fixture_matches_golden() {
    check_fixture("stats-registry");
}

#[test]
fn no_hot_alloc_fixture_matches_golden() {
    let report = check_fixture("no-hot-alloc");
    // The allowed tail-copy is honored; the out-of-hot-set file and the
    // #[cfg(test)] module contribute nothing.
    assert_eq!(report.allows_honored, 1);
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.file == "crates/proto/src/node/engine.rs"));
}

#[test]
fn fixed_width_records_fixture_matches_golden() {
    let report = check_fixture("fixed-width-records");
    // The allowed Vec field is honored; the out-of-crate file, the
    // sorting compactor, and the #[cfg(test)] module contribute nothing.
    assert_eq!(report.allows_honored, 1);
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.file == "crates/hintlog/src/lib.rs"));
}

#[test]
fn lock_order_fixture_matches_golden() {
    let report = check_fixture("lock-order");
    // The seeded cycle is reported once with both acquisition sites —
    // the direct edge and the cross-file helper chain — and the
    // group-commit fsync is waived by its allow.
    assert_eq!(report.allows_honored, 1);
    let cycle = report
        .diagnostics
        .iter()
        .find(|d| d.message.contains("lock-order cycle"))
        .expect("cycle diagnostic");
    assert!(cycle
        .message
        .contains("via `flush_backlog` -> `refresh_peers`"));
}

#[test]
fn lock_order_ranking_fixture_matches_golden() {
    let report = check_fixture("lock-order-ranking");
    // A single-edge graph has no cycle; only the declared-ranking
    // inversion fires.
    assert!(report
        .diagnostics
        .iter()
        .all(|d| !d.message.contains("cycle")));
}

#[test]
fn no_panic_hot_path_interproc_fixture_matches_golden() {
    let report = check_fixture("no-panic-hot-path-interproc");
    // The cross-file unwrap the file-scoped rule cannot see is the only
    // survivor, reported at the leaf with the full chain. The two
    // seeded allows — one at a chain call site in engine.rs, one at
    // the leaf itself — are both honored, and the depth-5 chain stays
    // below the pass's horizon.
    assert_eq!(report.allows_honored, 2);
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.file != "crates/proto/src/deep.rs"));
}

#[test]
fn no_hot_alloc_interproc_fixture_matches_golden() {
    let report = check_fixture("no-hot-alloc-interproc");
    // The cold-path Vec::new in the bench crate is unreachable from the
    // hot set and contributes nothing.
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.file == "crates/proto/src/framing.rs"));
}

#[test]
fn lock_order_fixture_graph_has_the_seeded_cycle() {
    let graphs = bh_lint::graph_root(&fixture_root("lock-order")).expect("graph fixture tree");
    assert_eq!(graphs.lock_graph.cycles().len(), 1);
}

#[test]
fn allow_hygiene_fixture_matches_golden() {
    let report = check_fixture("allow-hygiene");
    // The one well-formed directive in the fixture is honored.
    assert_eq!(report.allows_honored, 1);
}

/// The meta-test: the real tree must be clean. This is the same check
/// CI runs via `cargo run -p bh-lint -- check`, pinned here so plain
/// `cargo test` catches violations too.
#[test]
fn repo_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = bh_lint::check_root(&root).expect("scan repo tree");
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.render()).collect();
    assert!(
        report.is_clean(),
        "the repo tree has unallowed lint findings:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "repo scan looks implausibly small"
    );
    // The acceptance bar for the lock-order pass: the real tree's
    // global lock graph is cycle-free, not merely allowed.
    let graphs = bh_lint::graph_root(&root).expect("graph repo tree");
    assert!(
        graphs.lock_graph.cycles().is_empty(),
        "the repo's global lock-order graph has a cycle"
    );
}
