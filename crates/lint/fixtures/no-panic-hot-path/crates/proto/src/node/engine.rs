//! Fixture: panicking constructs in the request hot path (must be
//! flagged), with a `#[cfg(test)]` module as negative control.

pub fn serve(job: Option<u64>) -> u64 {
    let v = job.unwrap();
    if v == 0 {
        panic!("zero job");
    }
    v
}

pub fn lookup(slot: Option<u64>) -> u64 {
    slot.expect("slot must be populated")
}

pub fn fine_fallback(slot: Option<u64>) -> u64 {
    // Negative control: `unwrap_or_else` is the sanctioned pattern.
    slot.unwrap_or_else(|| 0)
}

#[cfg(test)]
mod tests {
    // Negative control: tests may unwrap freely.
    #[test]
    fn unwrap_is_fine_here() {
        let v: Option<u64> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
