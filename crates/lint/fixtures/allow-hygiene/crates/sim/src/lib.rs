//! Fixture: every way an allow directive can go wrong, plus one
//! well-formed directive as a positive control.

// bh-lint: allow(no-such-rule, reason = "the rule name is bogus")
pub fn unknown_rule() {}

// bh-lint: allow(no-ambient-rng)
pub fn missing_reason() -> u64 {
    thread_rng()
}

// bh-lint: allow(no-ambient-rng, reason = "nothing fires nearby")
pub fn unused_allow() {}

// bh-lint: allowify(gibberish)
pub fn malformed() {}

pub fn honored() -> u64 {
    // bh-lint: allow(no-ambient-rng, reason = "positive control: waives the call below")
    thread_rng()
}
