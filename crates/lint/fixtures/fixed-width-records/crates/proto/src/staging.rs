//! Negative control: the same shapes outside `crates/hintlog/src/` are
//! in-memory staging types, not on-disk layouts, and must not be
//! flagged.

pub struct StagedRecord {
    pub url: String,
    pub bytes: usize,
}

pub fn snapshot_counters(staged: &[StagedRecord]) -> usize {
    staged.iter().map(|s| s.bytes).sum()
}
