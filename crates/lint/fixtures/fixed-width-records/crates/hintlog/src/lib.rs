//! Fixture: durable-storage violations in the hint-log crate (must be
//! flagged), with a fixed-width record, a sorting compactor, a reasoned
//! allow, and a `#[cfg(test)]` module as negative controls.

/// Flagged twice: a growable container and a platform-width integer
/// have no stable on-disk byte layout.
pub struct BadRecord {
    pub url: String,
    pub offset: usize,
    pub crc: u32,
}

/// Negative control: fixed-width primitives and arrays of them.
pub struct GoodRecord {
    pub key: u64,
    pub digest: [u8; 16],
    pub live: bool,
}

pub struct Cursor {
    // Negative control: not a `*Record` struct, layout is in-memory only.
    pub records: Vec<GoodRecord>,
}

/// Negative control: a reasoned allow waives the finding below it.
pub struct SparseRecord {
    // bh-lint: allow(fixed-width-records, reason = "fixture: demonstrates a waived layout field")
    pub slots: Vec<u64>,
    pub count: u32,
}

/// Flagged: rewrites the snapshot without ever sorting the records.
pub fn write_snapshot(records: &[GoodRecord], out: &mut Vec<u8>) {
    for r in records {
        out.extend_from_slice(&r.key.to_le_bytes());
    }
}

/// Negative control: the compactor sorts before it writes.
pub fn compact_live(records: &mut Vec<GoodRecord>) {
    records.sort_unstable_by_key(|r| r.key);
    records.dedup_by_key(|r| r.key);
}

#[cfg(test)]
mod tests {
    // Negative control: test scaffolding may hold any shape.
    pub struct ScratchRecord {
        pub name: String,
    }

    pub fn snapshot_for_test(r: &ScratchRecord) -> usize {
        r.name.len()
    }
}
