//! Fixture: a `NodeStats` counter that never reaches the chaos dump
//! (must be flagged).

/// Per-node counters.
pub struct NodeStats {
    /// Total requests served.
    pub requests: u64,
    /// Hits from the local store.
    pub local_hits: u64,
    /// Service-path failures — missing from the dump below.
    pub service_errors: u64,
}
