//! Fixture: a `NodeStats` field whose metric name is never registered
//! as a string literal (must be flagged), alongside a chaos dump that
//! hand-copies fields instead of iterating the registry.

/// Per-node counters, a typed view over the obs registry snapshot.
pub struct NodeStats {
    /// Total requests served.
    pub requests: u64,
    /// Hits from the local store.
    pub local_hits: u64,
    /// Service-path failures — never registered below.
    pub service_errors: u64,
}

/// Declares the metrics backing the view above.
pub fn register(r: &mut Vec<(&'static str, u64)>) {
    r.push(("requests", 0));
    r.push(("local_hits", 0));
}
