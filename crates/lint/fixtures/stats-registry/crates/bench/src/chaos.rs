//! Fixture: the chaos dump hand-copies stats fields instead of
//! iterating the registry via `metric_snapshots`.

pub struct Report {
    pub requests: u64,
    pub local_hits: u64,
}

pub fn dump(requests: u64, local_hits: u64) -> Report {
    Report {
        requests,
        local_hits,
    }
}
