//! Reply framing: copies the body — fine for cold callers, flagged
//! when reached from the request loop.

/// Builds the reply frame by copying the body.
pub fn encode_reply(body: &[u8]) -> Vec<u8> {
    body.to_vec()
}
