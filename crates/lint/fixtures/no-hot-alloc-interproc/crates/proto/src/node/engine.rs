//! Interprocedural allocation fixture: the per-request copy hides in a
//! cross-file framing helper the file-scoped token rule cannot see.

use crate::framing::encode_reply;

/// Request loop: reaches `encode_reply`'s `to_vec` one call away.
pub fn handle_request(body: &[u8]) {
    encode_reply(body);
}
