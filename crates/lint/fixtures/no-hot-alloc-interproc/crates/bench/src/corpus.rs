//! Cold-path allocation: not reachable from the hot set, not flagged.

/// Builds a corpus buffer; growth from capacity zero is fine off the
/// request path.
pub fn build_corpus() -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"corpus");
    out
}
