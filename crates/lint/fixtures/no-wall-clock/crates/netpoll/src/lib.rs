//! Fixture negative control: netpoll is real I/O and is on the
//! allowlist, so this `Instant::now()` must NOT be flagged.

use std::time::Instant;

pub fn poll_deadline() -> Instant {
    Instant::now()
}
