//! Fixture: wall-clock reads in a deterministic crate (must be flagged).

use std::time::{Instant, SystemTime};

pub fn evict_stamp() -> Instant {
    Instant::now()
}

pub fn wall_stamp() -> SystemTime {
    SystemTime::now()
}

pub fn hidden_in_string() -> &'static str {
    // Inside a literal: the lexer must not see an ident here.
    "Instant::now()"
}
