//! Fixture negative control: this path writes no artifacts, so its
//! `HashMap` must NOT be flagged.

use std::collections::HashMap;

pub fn scratch() -> HashMap<u64, u64> {
    HashMap::new()
}
