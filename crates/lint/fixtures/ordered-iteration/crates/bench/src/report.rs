//! Fixture: unordered collections in an artifact-writing path (must be
//! flagged — iteration order leaks into JSON artifacts).

use std::collections::{HashMap, HashSet};

pub fn tally(keys: &[u64]) -> HashMap<u64, u64> {
    let mut seen: HashSet<u64> = HashSet::new();
    let mut out = HashMap::new();
    for k in keys {
        if seen.insert(*k) {
            out.insert(*k, 1);
        }
    }
    out
}
