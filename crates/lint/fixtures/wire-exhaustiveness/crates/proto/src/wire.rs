//! Fixture: a wire enum with a missing tag const, a tag skipped by the
//! encoder, and an orphaned tag const.

/// Tag for [`Message::Get`].
pub const T_GET: u8 = 1;
/// Tag for [`Message::GetReply`].
pub const T_GET_REPLY: u8 = 2;
/// Tag for [`Message::Hint`].
pub const T_HINT: u8 = 3;
/// Orphan: no `Message` variant maps to this tag.
pub const T_RETIRED: u8 = 9;

/// The fixture wire protocol.
pub enum Message {
    /// Request an object.
    Get {
        /// Object key.
        key: u64,
    },
    /// Reply with the object body.
    GetReply {
        /// Object bytes.
        body: Vec<u8>,
    },
    /// Advertise an object — its tag is never encoded or decoded.
    Hint {
        /// Object key.
        key: u64,
    },
    /// Tear down — has no tag const at all.
    Goodbye,
}

impl Message {
    /// Encodes the frame (forgetting `T_HINT`).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Message::Get { .. } => vec![T_GET],
            Message::GetReply { .. } => vec![T_GET_REPLY],
            Message::Hint { .. } => vec![0],
            Message::Goodbye => vec![0],
        }
    }

    /// Decodes a frame (also forgetting `T_HINT`).
    pub fn decode(buf: &[u8]) -> Option<Message> {
        match buf.first()? {
            &T_GET => Some(Message::Get { key: 0 }),
            &T_GET_REPLY => Some(Message::GetReply { body: vec![] }),
            _ => None,
        }
    }
}
