//! Fixture proptests: cover `Get` and `GetReply` but not `Hint` or
//! `Goodbye`.

#[test]
fn roundtrip_get() {
    let m = Message::Get { key: 1 };
    let _ = m.encode();
}

#[test]
fn roundtrip_get_reply() {
    let m = Message::GetReply { body: vec![1] };
    let _ = m.encode();
}
