//! Cross-file helper: acquires the peers lock. Callers holding `store`
//! close the seeded cycle in engine.rs.

use super::engine::Inner;

/// Refreshes peer liveness under the peers lock.
pub fn refresh_peers(inner: &Inner) {
    inner.peers.lock().refresh_all();
}
