//! Seeded lock-order violations: a two-lock cycle (one edge direct, one
//! through a cross-file helper) and blocking I/O behind a lock.

use super::membership::refresh_peers;

pub struct Inner;

/// Direct edge: acquires `store` with `peers` held.
pub fn worker_loop(inner: &Inner) {
    let peers = inner.peers.lock();
    inner.store.lock().touch(1);
    peers.mark();
}

/// Interprocedural edge: calls a helper that acquires `peers` while
/// `store` is held — closing the cycle.
pub fn flush_backlog(inner: &Inner) {
    let store = inner.store.lock();
    refresh_peers(inner);
    store.mark();
}

/// Blocking I/O with a lock held: every request on `trace` waits out
/// the socket write behind it.
pub fn deliver(inner: &Inner, sock: &mut TcpStream) {
    let trace = inner.trace.lock();
    sock.write_all(trace.frame());
}

/// The intended exception: group commit fsyncs under the log lock by
/// design, waived with a reasoned allow.
pub fn persist(inner: &Inner, file: &mut File) {
    let log = inner.log.lock();
    log.stage_all();
    // bh-lint: allow(lock-order, reason = "group commit: only the flush tick takes the log lock, so nothing queues behind the fsync")
    file.sync_all();
}
