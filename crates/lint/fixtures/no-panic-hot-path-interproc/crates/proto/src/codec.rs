//! Frame codec helpers: `read_len` unwraps — fine for cold callers,
//! flagged when reached from the hot set.

/// Decodes one frame header.
pub fn decode_frame(buf: &[u8]) -> u32 {
    read_len(buf)
}

/// Panics on a short buffer; hot-path callers must not reach this.
pub fn read_len(buf: &[u8]) -> u32 {
    let head: [u8; 4] = buf[..4].try_into().unwrap();
    u32::from_le_bytes(head)
}
