//! Epoch bookkeeping: both helpers panic by design. One is waived at
//! its call site in engine.rs, the other at the panic itself.

/// Rotates the epoch counter; panics if time runs backwards. The allow
/// lives at the engine.rs call site.
pub fn rotate_epoch(now: u64) {
    if now < last_seen(now) {
        panic!("epoch clock ran backwards");
    }
}

/// Advances the epoch; the expect is waived here at the leaf.
pub fn advance_epoch(now: u64) -> u64 {
    // bh-lint: allow(no-panic-hot-path, reason = "checked arithmetic on a monotonic counter; overflow means the host clock is broken")
    now.checked_add(1).expect("epoch overflow")
}

fn last_seen(now: u64) -> u64 {
    now
}
