//! A helper chain one hop past the panic pass's depth cap: `hop5`'s
//! unwrap is five calls from the engine entry and must not be flagged.

pub fn hop1(buf: &[u8]) {
    hop2(buf);
}

pub fn hop2(buf: &[u8]) {
    hop3(buf);
}

pub fn hop3(buf: &[u8]) {
    hop4(buf);
}

pub fn hop4(buf: &[u8]) {
    hop5(buf);
}

/// Five calls deep — past the bound.
pub fn hop5(buf: &[u8]) {
    let _ = buf.first().unwrap();
}
