//! Interprocedural panic-reachability fixture: the entry points are
//! clean under the file-scoped token rule — every panic hides in a
//! cross-file helper.

use crate::codec::decode_frame;
use crate::deep::hop1;
use crate::epoch::{advance_epoch, rotate_epoch};

/// Reaches `read_len`'s unwrap two calls away — flagged with the chain.
pub fn worker_loop(buf: &[u8]) {
    decode_frame(buf);
}

/// Waived at the call site: the allow rides the chain's first hop and
/// covers the finding reported at the leaf.
pub fn flush_tick(now: u64) {
    // bh-lint: allow(no-panic-hot-path, reason = "epoch rotation panics on a backwards clock by design; the supervisor restarts the tick thread")
    rotate_epoch(now);
}

/// Waived at the leaf: the helper carries its own allow.
pub fn rebalance(now: u64) {
    advance_epoch(now);
}

/// Depth-bound negative: the unwrap at the end of this chain is five
/// calls away, past the pass's depth cap — out of scope by contract.
pub fn audit_pass(buf: &[u8]) {
    hop1(buf);
}
