//! Seeded ranking inversion: acquires `state` with `shards` held, but
//! the fixture LINTS.md ranks `state` first. The graph is a single
//! edge — no cycle — so only the inversion check fires.

pub struct Inner;

/// Demotes a shard: takes the shard guard, then flips global state —
/// backwards relative to the declared ranking.
pub fn demote_shard(inner: &Inner, idx: usize) {
    let shard = inner.shards.lock();
    inner.state.lock().bump_epoch();
    shard.mark_cold(idx);
}
