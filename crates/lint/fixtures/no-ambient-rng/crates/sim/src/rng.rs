//! Fixture: ambient entropy sources (must be flagged wherever they
//! appear — there is no allowlist for this rule).

pub fn ambient() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn os_entropy() -> u64 {
    let rng = rand::rngs::OsRng;
    rng.gen()
}

pub fn seeded_from_entropy() -> u64 {
    let rng = SmallRng::from_entropy();
    rng.gen()
}

pub fn fine_explicit_seed() -> u64 {
    // Negative control: explicit seeding is the sanctioned pattern.
    let rng = SmallRng::seed_from_u64(42);
    rng.gen()
}

pub fn fine_in_literal() -> &'static str {
    // Negative control: a string literal is not an identifier.
    "thread_rng"
}
