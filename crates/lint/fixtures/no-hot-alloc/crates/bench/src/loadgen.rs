//! Negative control: the same allocations outside the hot set are not
//! the data path's problem and must not be flagged.

pub fn collect(frames: &[&[u8]]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for f in frames {
        out.push(f.to_vec());
    }
    out
}
