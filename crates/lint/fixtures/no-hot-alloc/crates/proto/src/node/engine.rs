//! Fixture: per-request allocations in the wire-speed hot set (must be
//! flagged), with scratch-buffer reuse, an allow directive, `vec![]`,
//! and a `#[cfg(test)]` module as negative controls.

pub fn send_frame(frame: &[u8], out: &mut Vec<Vec<u8>>) {
    // Flagged: copies the frame on every reply.
    out.push(frame.to_vec());
}

pub fn encode_reply(body: &[u8]) -> Vec<u8> {
    // Flagged: grows from capacity zero inside the request loop.
    let mut scratch = Vec::new();
    scratch.extend_from_slice(body);
    scratch
}

pub fn buffer_tail(frame: &[u8], sent: usize, out: &mut Vec<Vec<u8>>) {
    // Negative control: a reasoned allow waives the finding below it.
    // bh-lint: allow(no-hot-alloc, reason = "only the unsent tail of a short write is copied")
    out.push(frame[sent..].to_vec());
}

pub fn preallocated() -> Vec<u8> {
    // Negative controls: with_capacity and the vec! macro are legal.
    let mut scratch = Vec::with_capacity(4096);
    scratch.extend_from_slice(&vec![0u8; 16]);
    scratch
}

#[cfg(test)]
mod tests {
    // Negative control: tests may allocate freely.
    #[test]
    fn copies_are_fine_here() {
        let frame = [1u8, 2, 3];
        let copy = frame.to_vec();
        let empty: Vec<u8> = Vec::new();
        assert_eq!(copy.len() + empty.len(), 3);
    }
}
