//! The self-configuring metadata hierarchy in the simulator (§3.1.3).
//!
//! The main strategy simulator models hint propagation abstractly (each
//! observer learns its nearest copy after a delay). This module realizes
//! the *mechanism* under it: the virtual metadata trees embedded across the
//! L1 nodes with the Plaxton algorithm. It routes each hint update from
//! the node where the copy status changed toward the object's root,
//! counting per-node message load, so the paper's three §3.1.3 claims are
//! measurable:
//!
//! * **load distribution** — each node roots ≈1/n of the objects;
//! * **locality** — low-level hops are short;
//! * **fault tolerance** — node departures disturb few table entries and
//!   routing still converges.

use crate::topology::Topology;
use bh_plaxton::{NodeSpec, PlaxtonTree};
use serde::{Deserialize, Serialize};

/// The embedded metadata hierarchy over a topology's L1 nodes.
#[derive(Debug)]
pub struct MetadataHierarchy {
    tree: PlaxtonTree,
    /// Messages handled per tree node (update forwarding load).
    load: Vec<u64>,
    /// Total hop count across all routed updates.
    total_hops: u64,
    /// Updates routed.
    updates: u64,
}

impl MetadataHierarchy {
    /// Embeds virtual trees over the topology's L1 nodes. Node positions
    /// cluster by L2 group (nodes sharing an L2 are near each other), so
    /// the embedding sees the same locality structure the cost model prices.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no L1 nodes (cannot happen for validated
    /// workload specs).
    pub fn new(topo: &Topology, arity_bits: u32) -> Self {
        let specs: Vec<NodeSpec> = (0..topo.l1_count())
            .map(|i| {
                let group = topo.l2_of(i);
                let within = i % topo.l1s_per_l2();
                NodeSpec::from_address(
                    &format!("10.{}.{}.1:3128", group, within),
                    // Groups 10 units apart; members 1 unit apart.
                    (group as f64 * 10.0 + within as f64, group as f64 * 10.0),
                )
            })
            .collect();
        let tree = PlaxtonTree::build(specs, arity_bits).expect("valid node set");
        let n = tree.len();
        MetadataHierarchy {
            tree,
            load: vec![0; n],
            total_hops: 0,
            updates: 0,
        }
    }

    /// Routes one hint update from `from_l1` toward the root for
    /// `object_key`, accumulating per-node load. Returns the hop count
    /// (path length − 1).
    pub fn route_update(&mut self, from_l1: u32, object_key: u64) -> usize {
        let path = self.tree.route(from_l1 as usize, object_key);
        for &node in &path {
            if node >= self.load.len() {
                self.load.resize(node + 1, 0);
            }
            self.load[node] += 1;
        }
        self.updates += 1;
        let hops = path.len().saturating_sub(1);
        self.total_hops += hops as u64;
        hops
    }

    /// The root node for an object (where its hint state aggregates).
    pub fn root_of(&self, object_key: u64) -> usize {
        self.tree.root_of(object_key)
    }

    /// Removes a node (failure / departure); returns repaired table entries.
    ///
    /// # Errors
    ///
    /// Propagates [`bh_plaxton::PlaxtonError`] for unknown/dead nodes.
    pub fn remove_node(&mut self, node: usize) -> Result<usize, bh_plaxton::PlaxtonError> {
        self.tree.remove_node(node)
    }

    /// Summary statistics of the routing load observed so far.
    pub fn stats(&self) -> MetadataStats {
        let handled: u64 = self.load.iter().sum();
        let busiest = self.load.iter().copied().max().unwrap_or(0);
        let n = self.load.len().max(1) as f64;
        MetadataStats {
            updates: self.updates,
            mean_hops: if self.updates == 0 {
                0.0
            } else {
                self.total_hops as f64 / self.updates as f64
            },
            busiest_node_share: if handled == 0 {
                0.0
            } else {
                busiest as f64 / handled as f64
            },
            load_imbalance: if handled == 0 {
                0.0
            } else {
                busiest as f64 / (handled as f64 / n)
            },
        }
    }
}

/// Routing-load summary for the metadata hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetadataStats {
    /// Updates routed.
    pub updates: u64,
    /// Mean hops per update.
    pub mean_hops: f64,
    /// Fraction of all messages handled by the busiest node.
    pub busiest_node_share: f64,
    /// Busiest node's load relative to the mean (1.0 = perfectly even).
    pub load_imbalance: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_trace::WorkloadSpec;

    fn topo() -> Topology {
        Topology::from_spec(&WorkloadSpec::dec()) // 64 L1s
    }

    #[test]
    fn routes_bounded_and_counted() {
        let mut md = MetadataHierarchy::new(&topo(), 2);
        for obj in 0..500u64 {
            let key = bh_md5::md5(obj.to_le_bytes()).low64();
            let hops = md.route_update((obj % 64) as u32, key);
            assert!(hops <= 16, "route too long: {hops}");
        }
        let s = md.stats();
        assert_eq!(s.updates, 500);
        assert!(s.mean_hops >= 1.0, "updates from non-root nodes must hop");
    }

    #[test]
    fn no_single_node_hotspot() {
        // §3.1.3 "Load distribution": different objects use different
        // virtual trees, so no node sees a constant fraction of all updates
        // the way a centralized directory would (100%).
        let mut md = MetadataHierarchy::new(&topo(), 2);
        let mut rng = bh_simcore::rng::Xoshiro256::seed_from_u64(5);
        for obj in 0..4_000u64 {
            let key = bh_md5::md5(obj.to_le_bytes()).low64();
            md.route_update(rng.below(64) as u32, key);
        }
        let s = md.stats();
        assert!(
            s.busiest_node_share < 0.30,
            "busiest node handles {:.2} of traffic — hotspot",
            s.busiest_node_share
        );
    }

    #[test]
    fn survives_node_departures() {
        let mut md = MetadataHierarchy::new(&topo(), 2);
        let changed = md.remove_node(7).expect("remove");
        assert!(changed > 0, "departure should repair some entries");
        // Routing still works from every surviving node.
        for obj in 0..100u64 {
            let key = bh_md5::md5(obj.to_le_bytes()).low64();
            let from = if obj % 64 == 7 { 8 } else { obj % 64 };
            md.route_update(from as u32, key);
        }
        assert!(md.stats().updates == 100);
    }

    #[test]
    fn roots_deterministic() {
        let a = MetadataHierarchy::new(&topo(), 2);
        let b = MetadataHierarchy::new(&topo(), 2);
        for obj in 0..200u64 {
            let key = bh_md5::md5(obj.to_le_bytes()).low64();
            assert_eq!(a.root_of(key), b.root_of(key));
        }
    }
}
