//! Reproductions of every simulation experiment in the paper's evaluation.
//!
//! Each function regenerates one table or figure and returns a serializable
//! result; the `bh-bench` experiment binaries print them in the paper's
//! format and archive them as JSON. See `DESIGN.md` §3 for the index.

use crate::metrics::Metrics;

use crate::sim::{SimConfig, SimReport, Simulator};
use crate::strategies::{HintConfig, HintHierarchy, StrategyKind};
use crate::topology::Topology;
use bh_cache::{ClassRates, ClassifyingCache};
use bh_netmodel::CostModel;
use bh_simcore::{ByteSize, SimDuration};
use bh_trace::{MaterializedTrace, TraceCache, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Serializes a sweep-axis value: finite numbers as floats, the
/// unlimited/infinite point as the string `"inf"` (JSON has no infinity).
fn axis_value(x: f64) -> serde::Value {
    if x.is_finite() {
        serde::Value::Float(x)
    } else {
        serde::Value::Str("inf".to_string())
    }
}

/// Inverse of [`axis_value`].
fn axis_from(v: &serde::Value) -> Result<f64, serde::DeError> {
    match v {
        serde::Value::Str(s) if s == "inf" => Ok(f64::INFINITY),
        other => f64::deserialize(other),
    }
}

/// Figure 2: per-read and per-byte miss-class breakdown for a single global
/// shared cache, as a function of cache size.
#[derive(Debug, Clone)]
pub struct MissBreakdownPoint {
    /// Cache size in GB (f64::INFINITY for the unlimited point).
    pub cache_gb: f64,
    /// Per-read rate of each class (fractions of all requests).
    pub read_rates: ClassRates,
    /// Per-byte rate of each class.
    pub byte_rates: ClassRates,
    /// Total per-read miss ratio.
    pub total_miss_ratio: f64,
}

impl Serialize for MissBreakdownPoint {
    fn serialize(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("cache_gb".to_string(), axis_value(self.cache_gb)),
            ("read_rates".to_string(), self.read_rates.serialize()),
            ("byte_rates".to_string(), self.byte_rates.serialize()),
            (
                "total_miss_ratio".to_string(),
                self.total_miss_ratio.serialize(),
            ),
        ])
    }
}

impl Deserialize for MissBreakdownPoint {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::DeError> {
        let ty = "MissBreakdownPoint";
        Ok(MissBreakdownPoint {
            cache_gb: axis_from(serde::field(v, ty, "cache_gb")?)?,
            read_rates: ClassRates::deserialize(serde::field(v, ty, "read_rates")?)?,
            byte_rates: ClassRates::deserialize(serde::field(v, ty, "byte_rates")?)?,
            total_miss_ratio: f64::deserialize(serde::field(v, ty, "total_miss_ratio")?)?,
        })
    }
}

/// Runs the Figure 2 sweep for one workload.
///
/// `sizes_gb` lists the x-axis points; warm-up follows the paper (the
/// counters reset after `warmup_fraction` of requests so the breakdown
/// reflects steady state). The trace comes from the process-wide
/// [`TraceCache`].
pub fn miss_breakdown(
    spec: &WorkloadSpec,
    seed: u64,
    sizes_gb: &[f64],
    warmup_fraction: f64,
) -> Vec<MissBreakdownPoint> {
    let trace = TraceCache::get(spec, seed);
    sizes_gb
        .iter()
        .map(|&gb| miss_breakdown_point(&trace, gb, warmup_fraction))
        .collect()
}

/// One Figure 2 point: the breakdown at a single cache size, replayed from
/// a materialized trace.
pub fn miss_breakdown_point(
    trace: &MaterializedTrace,
    size_gb: f64,
    warmup_fraction: f64,
) -> MissBreakdownPoint {
    let capacity = if size_gb.is_finite() {
        ByteSize::from_mb((size_gb * 1024.0) as u64)
    } else {
        ByteSize::MAX
    };
    let mut cache = ClassifyingCache::new(capacity);
    let warmup_until = (trace.spec().requests as f64 * warmup_fraction) as u64;
    for (i, r) in trace.iter().enumerate() {
        if i as u64 == warmup_until {
            cache.reset_counters();
        }
        match r.class {
            bh_trace::RequestClass::Error => {
                cache.access_error(r.size);
            }
            bh_trace::RequestClass::Uncachable => {
                cache.access(r.object.key(), r.size, r.version, false);
            }
            bh_trace::RequestClass::Cacheable => {
                cache.access(r.object.key(), r.size, r.version, true);
            }
        }
    }
    MissBreakdownPoint {
        cache_gb: size_gb,
        read_rates: cache.rates(),
        byte_rates: cache.byte_rates(),
        total_miss_ratio: cache.miss_ratio(),
    }
}

/// Figure 3: cumulative hit and byte-hit ratios at each level of an
/// infinite three-level hierarchy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SharingResult {
    /// Workload name.
    pub workload: String,
    /// Cumulative request hit ratio at L1 / L2 / L3.
    pub hit_ratio: [f64; 3],
    /// Cumulative byte hit ratio at L1 / L2 / L3.
    pub byte_hit_ratio: [f64; 3],
}

/// Runs the Figure 3 experiment for one workload (trace via the
/// process-wide [`TraceCache`]).
pub fn sharing(spec: &WorkloadSpec, seed: u64) -> SharingResult {
    sharing_trace(&TraceCache::get(spec, seed))
}

/// [`sharing`] over an already-materialized trace.
pub fn sharing_trace(trace: &MaterializedTrace) -> SharingResult {
    let spec = trace.spec();
    let sim = Simulator::new(SimConfig::infinite(spec));
    let tb = bh_netmodel::TestbedModel::new();
    let models: Vec<&dyn CostModel> = vec![&tb];
    let r = sim.run_trace(trace, StrategyKind::DataHierarchy, &models);
    let m = &r.metrics;
    let total = m.cacheable.max(1) as f64;
    let total_bytes = m.total_bytes.max(1) as f64;
    let l1 = m.l1_hits as f64;
    let l2 = l1 + m.l2_hits as f64;
    let l3 = l2 + m.l3_hits as f64;
    let b1 = m.l1_hit_bytes as f64;
    let b2 = b1 + m.l2_hit_bytes as f64;
    let b3 = b2 + m.l3_hit_bytes as f64;
    SharingResult {
        workload: spec.name.to_string(),
        hit_ratio: [l1 / total, l2 / total, l3 / total],
        byte_hit_ratio: [b1 / total_bytes, b2 / total_bytes, b3 / total_bytes],
    }
}

/// One point of the Figure 5 (hint-cache size) or Figure 6 (propagation
/// delay) sweeps.
#[derive(Debug, Clone)]
pub struct HintSweepPoint {
    /// The swept value (MB for Figure 5, minutes for Figure 6;
    /// f64::INFINITY for the unbounded / zero-delay reference).
    pub x: f64,
    /// Global hit ratio achieved.
    pub hit_ratio: f64,
    /// Remote (peer) hits as a fraction of cacheable requests.
    pub remote_hit_fraction: f64,
    /// False-positive probes per cacheable request.
    pub false_positive_rate: f64,
}

impl Serialize for HintSweepPoint {
    fn serialize(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("x".to_string(), axis_value(self.x)),
            ("hit_ratio".to_string(), self.hit_ratio.serialize()),
            (
                "remote_hit_fraction".to_string(),
                self.remote_hit_fraction.serialize(),
            ),
            (
                "false_positive_rate".to_string(),
                self.false_positive_rate.serialize(),
            ),
        ])
    }
}

impl Deserialize for HintSweepPoint {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::DeError> {
        let ty = "HintSweepPoint";
        Ok(HintSweepPoint {
            x: axis_from(serde::field(v, ty, "x")?)?,
            hit_ratio: f64::deserialize(serde::field(v, ty, "hit_ratio")?)?,
            remote_hit_fraction: f64::deserialize(serde::field(v, ty, "remote_hit_fraction")?)?,
            false_positive_rate: f64::deserialize(serde::field(v, ty, "false_positive_rate")?)?,
        })
    }
}

fn run_hint_config(trace: &MaterializedTrace, config: HintConfig) -> Metrics {
    let sim = Simulator::new(SimConfig {
        space: crate::space::SpaceConfig::infinite(),
        hint_delay: config.delay,
        warmup_fraction: 0.10,
    });
    let topo = Topology::from_spec(trace.spec());
    let mut strategy = HintHierarchy::new(topo, config, trace.seed());
    let tb = bh_netmodel::TestbedModel::new();
    let models: Vec<&dyn CostModel> = vec![&tb];
    sim.run_with_trace(trace, &mut strategy, &models, false)
        .metrics
}

/// Figure 5: hit rate vs hint-cache size (16-byte records, 4-way sets).
/// The trace comes from the process-wide [`TraceCache`].
pub fn hint_size_sweep(spec: &WorkloadSpec, seed: u64, sizes_mb: &[f64]) -> Vec<HintSweepPoint> {
    let trace = TraceCache::get(spec, seed);
    sizes_mb
        .iter()
        .map(|&mb| hint_size_point(&trace, mb))
        .collect()
}

/// One Figure 5 point at the given hint-store size (MB).
pub fn hint_size_point(trace: &MaterializedTrace, size_mb: f64) -> HintSweepPoint {
    let store = if size_mb.is_finite() {
        ByteSize::from_mb_f64(size_mb)
    } else {
        ByteSize::MAX
    };
    let m = run_hint_config(
        trace,
        HintConfig {
            store_capacity: store,
            ..HintConfig::default()
        },
    );
    sweep_point(size_mb, &m)
}

/// Figure 6: hit rate vs hint propagation delay in minutes.
/// The trace comes from the process-wide [`TraceCache`].
pub fn hint_delay_sweep(spec: &WorkloadSpec, seed: u64, delays_min: &[f64]) -> Vec<HintSweepPoint> {
    let trace = TraceCache::get(spec, seed);
    delays_min
        .iter()
        .map(|&mins| hint_delay_point(&trace, mins))
        .collect()
}

/// One Figure 6 point at the given propagation delay (minutes).
pub fn hint_delay_point(trace: &MaterializedTrace, delay_min: f64) -> HintSweepPoint {
    // A real (non-oracle) store is required for delay to matter. Size it to
    // comfortably index every distinct object the workload will create
    // (4× slack over the expected distinct count at 16 B/record), so
    // capacity never confounds the delay effect. The store array is
    // allocated eagerly per node — sizing to the workload keeps Figure 6
    // runnable at any scale.
    let spec = trace.spec();
    let distinct = (spec.requests as f64 * spec.p_new).max(1024.0);
    let store = ByteSize::from_bytes((distinct * 16.0 * 4.0) as u64);
    let m = run_hint_config(
        trace,
        HintConfig {
            delay: SimDuration::from_secs_f64(delay_min * 60.0),
            store_capacity: if delay_min == 0.0 {
                ByteSize::MAX
            } else {
                store
            },
            ..HintConfig::default()
        },
    );
    sweep_point(delay_min, &m)
}

fn sweep_point(x: f64, m: &Metrics) -> HintSweepPoint {
    let cacheable = m.cacheable.max(1) as f64;
    HintSweepPoint {
        x,
        hit_ratio: m.hit_ratio(),
        remote_hit_fraction: (m.remote_hits_l2 + m.remote_hits_l3) as f64 / cacheable,
        false_positive_rate: m.false_positives as f64 / cacheable,
    }
}

/// Table 5: average location-hint update load at the root.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UpdateLoadResult {
    /// Updates/second a centralized directory receives.
    pub centralized_rate: f64,
    /// Updates/second the filtering hierarchy's root receives.
    pub hierarchy_rate: f64,
}

/// Runs the Table 5 comparison (no warm-up: load is averaged over the whole
/// trace, as in the paper). The trace comes from the process-wide
/// [`TraceCache`].
pub fn update_load(spec: &WorkloadSpec, seed: u64) -> UpdateLoadResult {
    update_load_trace(&TraceCache::get(spec, seed))
}

/// [`update_load`] over an already-materialized trace.
pub fn update_load_trace(trace: &MaterializedTrace) -> UpdateLoadResult {
    let sim = Simulator::new(SimConfig::infinite(trace.spec()).with_warmup(0.0));
    let tb = bh_netmodel::TestbedModel::new();
    let models: Vec<&dyn CostModel> = vec![&tb];
    let r = sim.run_trace(trace, StrategyKind::HintHierarchy, &models);
    UpdateLoadResult {
        centralized_rate: r.metrics.directory_update_rate(),
        hierarchy_rate: r.metrics.root_update_rate(),
    }
}

/// Figure 8 / Table 6: the response-time comparison matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResponseTimeResult {
    /// Workload name.
    pub workload: String,
    /// True for Figure 8(b)'s space-constrained arrangement.
    pub space_constrained: bool,
    /// `(strategy label, model name, mean response ms)` for every cell.
    pub cells: Vec<(String, String, f64)>,
}

impl ResponseTimeResult {
    /// The mean response time for `(strategy, model)`, if present.
    pub fn cell(&self, strategy: &str, model: &str) -> Option<f64> {
        self.cells
            .iter()
            .find(|(s, m, _)| s == strategy && m == model)
            .map(|(_, _, v)| *v)
    }

    /// Table 6's ratio: hierarchy response time / hint response time.
    pub fn speedup(&self, model: &str) -> Option<f64> {
        Some(self.cell("Hierarchy", model)? / self.cell("Hints", model)?)
    }
}

/// The three strategies compared in every Figure 8 panel.
pub const FIGURE8_KINDS: [StrategyKind; 3] = [
    StrategyKind::DataHierarchy,
    StrategyKind::CentralDirectory,
    StrategyKind::HintHierarchy,
];

/// Runs Figure 8 for one workload and space regime across the three
/// standard strategies. The trace comes from the process-wide
/// [`TraceCache`].
pub fn response_time_matrix(
    spec: &WorkloadSpec,
    seed: u64,
    constrained: bool,
    models: &[&dyn CostModel],
) -> ResponseTimeResult {
    response_time_matrix_trace(&TraceCache::get(spec, seed), constrained, models)
}

/// [`response_time_matrix`] over an already-materialized trace.
pub fn response_time_matrix_trace(
    trace: &MaterializedTrace,
    constrained: bool,
    models: &[&dyn CostModel],
) -> ResponseTimeResult {
    let cells = FIGURE8_KINDS
        .iter()
        .flat_map(|&kind| response_time_cells(trace, constrained, kind, models))
        .collect();
    ResponseTimeResult {
        workload: trace.spec().name.to_string(),
        space_constrained: constrained,
        cells,
    }
}

/// One strategy's row of the Figure 8 matrix:
/// `(strategy label, model name, mean response ms)` per model — the unit of
/// parallelism for the suite scheduler.
pub fn response_time_cells(
    trace: &MaterializedTrace,
    constrained: bool,
    kind: StrategyKind,
    models: &[&dyn CostModel],
) -> Vec<(String, String, f64)> {
    let spec = trace.spec();
    let config = if constrained {
        SimConfig::constrained(spec)
    } else {
        SimConfig::infinite(spec)
    };
    let r = Simulator::new(config).run_trace(trace, kind, models);
    r.metrics
        .response
        .iter()
        .map(|(name, stats)| (kind.label().to_string(), name.clone(), stats.mean()))
        .collect()
}

/// Figures 10 & 11: the push-algorithm comparison (response time,
/// efficiency, bandwidth) on a space-constrained configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PushComparisonRow {
    /// Strategy label (Figure 10's bar names).
    pub strategy: String,
    /// `(model name, mean response ms)`.
    pub response_ms: Vec<(String, f64)>,
    /// Fraction of pushed bytes later used (Figure 11a).
    pub efficiency: f64,
    /// Push bandwidth, KB/s (Figure 11b).
    pub push_bw_kbps: f64,
    /// Demand bandwidth, KB/s (Figure 11b).
    pub demand_bw_kbps: f64,
    /// Local-hit fraction of cacheable requests.
    pub l1_hit_fraction: f64,
}

/// Runs the Figure 10/11 experiment for one workload. The trace comes from
/// the process-wide [`TraceCache`].
pub fn push_comparison(
    spec: &WorkloadSpec,
    seed: u64,
    models: &[&dyn CostModel],
) -> Vec<PushComparisonRow> {
    let trace = TraceCache::get(spec, seed);
    StrategyKind::FIGURE10
        .iter()
        .map(|&kind| push_row(&trace, kind, models))
        .collect()
}

/// One Figure 10/11 row: a single push strategy on the space-constrained
/// configuration — the unit of parallelism for the suite scheduler.
pub fn push_row(
    trace: &MaterializedTrace,
    kind: StrategyKind,
    models: &[&dyn CostModel],
) -> PushComparisonRow {
    let sim = Simulator::new(SimConfig::constrained(trace.spec()));
    let r: SimReport = sim.run_trace(trace, kind, models);
    let m = &r.metrics;
    PushComparisonRow {
        strategy: kind.label().to_string(),
        response_ms: m
            .response
            .iter()
            .map(|(n, s)| (n.clone(), s.mean()))
            .collect(),
        efficiency: m.push_efficiency(),
        push_bw_kbps: m.push_bandwidth_kbps(),
        demand_bw_kbps: m.demand_bandwidth_kbps(),
        l1_hit_fraction: if m.cacheable == 0 {
            0.0
        } else {
            m.l1_hits as f64 / m.cacheable as f64
        },
    }
}

/// [`push_row`] with a process-wide memo, priced under the canonical
/// Max / Min / Testbed model set.
///
/// Figures 10 and 11 run the *same* seven push simulations on the same
/// space-constrained configuration — only the cost-model set differs, and
/// cost models are pure observers priced in one pass (`sim.rs`), so the
/// superset row serves both. Keyed by `(spec fingerprint, seed, kind)`;
/// concurrent requests for the same key compute once and share the result.
/// The memo holds a handful of small rows per (workload, seed), so it is
/// unbounded.
pub fn push_row_cached(trace: &MaterializedTrace, kind: StrategyKind) -> Arc<PushComparisonRow> {
    type Slot = Arc<OnceLock<Arc<PushComparisonRow>>>;
    type SlotMap = HashMap<(u64, u64, StrategyKind), Slot>;
    static CACHE: OnceLock<Mutex<SlotMap>> = OnceLock::new();
    let key = (trace.spec().fingerprint(), trace.seed(), kind);
    let slot = {
        let mut map = CACHE
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("push-row cache poisoned");
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(OnceLock::new())))
    };
    Arc::clone(slot.get_or_init(|| {
        let max = bh_netmodel::RousskovModel::max();
        let min = bh_netmodel::RousskovModel::min();
        let tb = bh_netmodel::TestbedModel::new();
        let models: Vec<&dyn CostModel> = vec![&max, &min, &tb];
        Arc::new(push_row(trace, kind, &models))
    }))
}

/// §3.3's configuration comparison: proxy-level hints (Figure 4-a) vs
/// client-level hints (Figure 4-b), priced by skipping the L1 leg.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HintPlacementResult {
    /// Mean response via the proxy configuration, per model.
    pub proxy_ms: Vec<(String, f64)>,
    /// Mean response via the client configuration, per model.
    pub client_ms: Vec<(String, f64)>,
}

/// Runs the proxy-vs-client hint placement comparison.
pub fn hint_placement(
    spec: &WorkloadSpec,
    seed: u64,
    models: &[&dyn CostModel],
) -> HintPlacementResult {
    let trace = TraceCache::get(spec, seed);
    let sim = Simulator::new(SimConfig::infinite(spec));
    let proxy = sim.run_trace(&trace, StrategyKind::HintHierarchy, models);
    // Same outcome stream, client-direct pricing.
    let client_models: Vec<ClientDirect<'_>> = models.iter().map(|m| ClientDirect(*m)).collect();
    let client_refs: Vec<&dyn CostModel> =
        client_models.iter().map(|m| m as &dyn CostModel).collect();
    let client = sim.run_trace(&trace, StrategyKind::HintHierarchy, &client_refs);
    HintPlacementResult {
        proxy_ms: proxy
            .metrics
            .response
            .iter()
            .map(|(n, s)| (n.clone(), s.mean()))
            .collect(),
        client_ms: client
            .metrics
            .response
            .iter()
            .map(|(n, s)| (n.clone(), s.mean()))
            .collect(),
    }
}

/// A cost-model adapter that prices remote and server fetches from the
/// client (Figure 4-b), skipping the L1 proxy leg.
#[derive(Clone, Copy)]
pub struct ClientDirect<'a>(pub &'a dyn CostModel);

impl std::fmt::Debug for ClientDirect<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ClientDirect({})", self.0.name())
    }
}

impl CostModel for ClientDirect<'_> {
    fn hierarchy_hit(&self, level: bh_netmodel::Level, size: ByteSize) -> SimDuration {
        self.0.hierarchy_hit(level, size)
    }
    fn hierarchy_miss(&self, size: ByteSize) -> SimDuration {
        self.0.hierarchy_miss(size)
    }
    fn remote_fetch(&self, d: bh_netmodel::RemoteDistance, size: ByteSize) -> SimDuration {
        self.0.remote_fetch_from_client(d, size)
    }
    fn server_fetch(&self, size: ByteSize) -> SimDuration {
        self.0.server_fetch_from_client(size)
    }
    fn false_positive_penalty(&self, d: bh_netmodel::RemoteDistance) -> SimDuration {
        self.0.false_positive_penalty(d)
    }
    fn directory_lookup(&self) -> SimDuration {
        self.0.directory_lookup()
    }
    fn name(&self) -> &str {
        self.0.name()
    }
}

/// Ablation: hierarchical filtering on/off — what the root would see if
/// every update were forwarded (Table 5 companion).
pub use self::update_load as table5;

/// §3.3's client-hint trade-off: response time of the client-level
/// configuration as a function of its false-negative rate, against the
/// proxy-level baseline. The paper's claim: the alternate configuration
/// wins while the false-negative rate stays below ~50%.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClientHintTradeoff {
    /// Proxy-configuration mean response per model.
    pub proxy_ms: Vec<(String, f64)>,
    /// `(false_negative_rate, per-model mean response)` for the client
    /// configuration.
    pub client_points: Vec<(f64, Vec<(String, f64)>)>,
}

impl ClientHintTradeoff {
    /// The largest swept false-negative rate at which the client
    /// configuration still beats the proxy configuration under `model`.
    pub fn crossover_fn_rate(&self, model: &str) -> Option<f64> {
        let proxy = self.proxy_ms.iter().find(|(n, _)| n == model)?.1;
        self.client_points
            .iter()
            .filter(|(_, ms)| {
                ms.iter()
                    .find(|(n, _)| n == model)
                    .is_some_and(|(_, v)| *v < proxy)
            })
            .map(|(fnr, _)| *fnr)
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }
}

/// Runs the §3.3 client-hint sweep.
pub fn client_hint_tradeoff(
    spec: &WorkloadSpec,
    seed: u64,
    fn_rates: &[f64],
    models: &[&dyn CostModel],
) -> ClientHintTradeoff {
    use crate::strategies::{ClientHintConfig, ClientHints};
    let trace = TraceCache::get(spec, seed);
    let sim = Simulator::new(SimConfig::infinite(spec));
    let proxy = sim.run_trace(&trace, StrategyKind::HintHierarchy, models);
    let client_models: Vec<ClientDirect<'_>> = models.iter().map(|m| ClientDirect(*m)).collect();
    let client_refs: Vec<&dyn CostModel> =
        client_models.iter().map(|m| m as &dyn CostModel).collect();
    let client_points = fn_rates
        .iter()
        .map(|&fnr| {
            let topo = Topology::from_spec(spec);
            let mut strategy = ClientHints::new(
                topo,
                ClientHintConfig {
                    false_negative_rate: fnr,
                    ..ClientHintConfig::default()
                },
            );
            let r = sim.run_with_trace(&trace, &mut strategy, &client_refs, false);
            (
                fnr,
                r.metrics
                    .response
                    .iter()
                    .map(|(n, s)| (n.clone(), s.mean()))
                    .collect(),
            )
        })
        .collect();
    ClientHintTradeoff {
        proxy_ms: proxy
            .metrics
            .response
            .iter()
            .map(|(n, s)| (n.clone(), s.mean()))
            .collect(),
        client_points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_netmodel::TestbedModel;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::small().with_requests(5_000)
    }

    #[test]
    fn miss_breakdown_rates_sum_to_one_and_capacity_shrinks_with_size() {
        let pts = miss_breakdown(&spec(), 3, &[0.01, f64::INFINITY], 0.1);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            let sum = p.read_rates.sum();
            assert!((sum - 1.0).abs() < 1e-9, "read rates sum {sum}");
        }
        let cap = |p: &MissBreakdownPoint| p.read_rates.get(bh_cache::MissClass::Capacity);
        assert!(cap(&pts[0]) >= cap(&pts[1]));
        assert_eq!(cap(&pts[1]), 0.0, "infinite cache has no capacity misses");
    }

    #[test]
    fn sharing_monotone_up_the_hierarchy() {
        let s = sharing(&spec(), 3);
        assert!(s.hit_ratio[0] <= s.hit_ratio[1]);
        assert!(s.hit_ratio[1] <= s.hit_ratio[2]);
        assert!(s.byte_hit_ratio[0] <= s.byte_hit_ratio[2]);
        assert!(
            s.hit_ratio[2] > 0.2,
            "L3 should capture substantial sharing"
        );
    }

    #[test]
    fn hint_size_sweep_monotone() {
        let pts = hint_size_sweep(&spec(), 3, &[0.001, 0.1, f64::INFINITY]);
        assert!(pts[0].hit_ratio <= pts[1].hit_ratio + 0.02);
        assert!(pts[1].hit_ratio <= pts[2].hit_ratio + 0.02);
        assert!(pts[2].remote_hit_fraction > 0.0);
    }

    #[test]
    fn hint_delay_sweep_degrades() {
        let pts = hint_delay_sweep(&spec(), 3, &[0.0, 1000.0]);
        assert!(
            pts[1].hit_ratio <= pts[0].hit_ratio + 0.01,
            "huge delay should not improve hit rate: {} vs {}",
            pts[1].hit_ratio,
            pts[0].hit_ratio
        );
    }

    #[test]
    fn update_load_hierarchy_filters() {
        let r = update_load(&spec(), 3);
        assert!(r.centralized_rate > r.hierarchy_rate, "{r:?}");
    }

    #[test]
    fn response_matrix_has_speedup() {
        let tb = TestbedModel::new();
        let models: Vec<&dyn CostModel> = vec![&tb];
        let r = response_time_matrix(&spec(), 3, false, &models);
        let speedup = r.speedup("Testbed").expect("cells present");
        assert!(speedup > 1.0, "hints should win, speedup {speedup}");
    }

    #[test]
    fn push_comparison_rows_complete() {
        let tb = TestbedModel::new();
        let models: Vec<&dyn CostModel> = vec![&tb];
        let rows = push_comparison(&spec(), 3, &models);
        assert_eq!(rows.len(), 7);
        let ideal = rows.iter().find(|r| r.strategy == "Push-ideal").unwrap();
        let hints = rows.iter().find(|r| r.strategy == "Hints").unwrap();
        let r = |row: &PushComparisonRow| row.response_ms[0].1;
        assert!(r(ideal) <= r(hints) + 1e-9, "ideal must lower-bound hints");
        let push_all = rows.iter().find(|r| r.strategy == "Push-all").unwrap();
        assert!(push_all.push_bw_kbps > 0.0);
        assert!(push_all.l1_hit_fraction >= hints.l1_hit_fraction);
    }

    #[test]
    fn client_placement_cheaper() {
        let tb = TestbedModel::new();
        let models: Vec<&dyn CostModel> = vec![&tb];
        let r = hint_placement(&spec(), 3, &models);
        assert!(r.client_ms[0].1 <= r.proxy_ms[0].1);
    }

    #[test]
    fn client_hint_tradeoff_crosses_over() {
        let tb = TestbedModel::new();
        let models: Vec<&dyn CostModel> = vec![&tb];
        let r = client_hint_tradeoff(&spec(), 3, &[0.0, 0.25, 0.5, 0.75, 1.0], &models);
        // Perfect client hints must beat the proxy config; hopeless client
        // hints must lose to it.
        let ms = |i: usize| r.client_points[i].1[0].1;
        let proxy = r.proxy_ms[0].1;
        assert!(
            ms(0) < proxy,
            "fnr=0 client {:.0} vs proxy {:.0}",
            ms(0),
            proxy
        );
        assert!(
            ms(4) > proxy,
            "fnr=1 client {:.0} vs proxy {:.0}",
            ms(4),
            proxy
        );
        // Response time must rise with the false-negative rate.
        assert!(ms(0) < ms(2) && ms(2) < ms(4));
        // Some operating point must favor the client configuration (the
        // paper's crossover is ~50% on DEC; the exact point is workload-
        // dependent — the shape is what must hold).
        let crossover = r.crossover_fn_rate("Testbed").expect("fnr=0 must win");
        assert!(crossover >= 0.0);
    }
}
