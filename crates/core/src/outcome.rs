//! Request outcomes — the model-independent description of the path a
//! request took, priced later by a [`bh_netmodel::CostModel`].

use bh_netmodel::{CostModel, Level, RemoteDistance};
use bh_simcore::{ByteSize, SimDuration};
use serde::{Deserialize, Serialize};

/// The path one request took through the cache system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPath {
    /// Hit in the client's own L1 proxy.
    L1Hit,
    /// Hit at a higher level of a *data* hierarchy, reached (and answered)
    /// through every level in between.
    HierarchyHit(Level),
    /// Full data-hierarchy traversal ending at the origin server.
    HierarchyMiss,
    /// Hint architecture: local hints named a peer with a copy; direct
    /// cache-to-cache fetch from `distance`.
    RemoteHit {
        /// How far the supplying peer is.
        distance: RemoteDistance,
    },
    /// Hint architecture: request went straight to the origin server.
    /// `false_positive` carries the distance of a peer that was probed
    /// in vain first (the hint was wrong).
    ServerFetch {
        /// A wasted probe preceding the server fetch, if any.
        false_positive: Option<RemoteDistance>,
    },
    /// Directory architecture: lookup round trip, then a remote fetch.
    DirectoryRemoteHit {
        /// How far the supplying peer is.
        distance: RemoteDistance,
    },
    /// Directory architecture: lookup round trip, then the origin server.
    DirectoryServerFetch,
}

impl AccessPath {
    /// Whether the request was served from some cache.
    pub fn is_hit(self) -> bool {
        matches!(
            self,
            AccessPath::L1Hit
                | AccessPath::HierarchyHit(_)
                | AccessPath::RemoteHit { .. }
                | AccessPath::DirectoryRemoteHit { .. }
        )
    }

    /// Whether the request was served from the client's own L1.
    pub fn is_local_hit(self) -> bool {
        matches!(self, AccessPath::L1Hit)
    }

    /// Prices this path under `model` for an object of `size`.
    pub fn price(self, model: &dyn CostModel, size: ByteSize) -> SimDuration {
        match self {
            AccessPath::L1Hit => model.hierarchy_hit(Level::L1, size),
            AccessPath::HierarchyHit(level) => model.hierarchy_hit(level, size),
            AccessPath::HierarchyMiss => model.hierarchy_miss(size),
            AccessPath::RemoteHit { distance } => model.remote_fetch(distance, size),
            AccessPath::ServerFetch { false_positive } => {
                let mut t = model.server_fetch(size);
                if let Some(d) = false_positive {
                    t += model.false_positive_penalty(d);
                }
                t
            }
            AccessPath::DirectoryRemoteHit { distance } => {
                model.directory_lookup() + model.remote_fetch(distance, size)
            }
            AccessPath::DirectoryServerFetch => model.directory_lookup() + model.server_fetch(size),
        }
    }

    /// The ideal-push transformation (§4.1.1's best case): every hit to a
    /// distant cache becomes a local L1 hit; misses are unchanged.
    pub fn idealized(self) -> AccessPath {
        match self {
            AccessPath::HierarchyHit(_)
            | AccessPath::RemoteHit { .. }
            | AccessPath::DirectoryRemoteHit { .. } => AccessPath::L1Hit,
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_netmodel::RousskovModel;

    const SZ: ByteSize = ByteSize::from_kb(8);

    #[test]
    fn hit_predicates() {
        assert!(AccessPath::L1Hit.is_hit());
        assert!(AccessPath::L1Hit.is_local_hit());
        assert!(AccessPath::HierarchyHit(Level::L3).is_hit());
        assert!(!AccessPath::HierarchyMiss.is_hit());
        assert!(AccessPath::RemoteHit {
            distance: RemoteDistance::SameL2
        }
        .is_hit());
        assert!(!AccessPath::ServerFetch {
            false_positive: None
        }
        .is_hit());
        assert!(!AccessPath::DirectoryServerFetch.is_hit());
    }

    #[test]
    fn pricing_matches_model() {
        let m = RousskovModel::min();
        assert_eq!(AccessPath::L1Hit.price(&m, SZ).as_millis_f64(), 163.0);
        assert_eq!(
            AccessPath::HierarchyHit(Level::L2)
                .price(&m, SZ)
                .as_millis_f64(),
            271.0
        );
        assert_eq!(
            AccessPath::HierarchyMiss.price(&m, SZ).as_millis_f64(),
            981.0
        );
        assert_eq!(
            AccessPath::RemoteHit {
                distance: RemoteDistance::SameL3
            }
            .price(&m, SZ)
            .as_millis_f64(),
            411.0
        );
        assert_eq!(
            AccessPath::ServerFetch {
                false_positive: None
            }
            .price(&m, SZ)
            .as_millis_f64(),
            641.0
        );
    }

    #[test]
    fn false_positive_costs_extra() {
        let m = RousskovModel::min();
        let clean = AccessPath::ServerFetch {
            false_positive: None,
        }
        .price(&m, SZ);
        let probed = AccessPath::ServerFetch {
            false_positive: Some(RemoteDistance::SameL2),
        }
        .price(&m, SZ);
        assert!(probed > clean);
    }

    #[test]
    fn directory_pays_lookup() {
        let m = RousskovModel::min();
        let plain = AccessPath::RemoteHit {
            distance: RemoteDistance::SameL2,
        }
        .price(&m, SZ);
        let dir = AccessPath::DirectoryRemoteHit {
            distance: RemoteDistance::SameL2,
        }
        .price(&m, SZ);
        assert!(dir > plain);
    }

    #[test]
    fn idealized_promotes_distant_hits_only() {
        assert_eq!(
            AccessPath::HierarchyHit(Level::L3).idealized(),
            AccessPath::L1Hit
        );
        assert_eq!(
            AccessPath::RemoteHit {
                distance: RemoteDistance::SameL3
            }
            .idealized(),
            AccessPath::L1Hit
        );
        assert_eq!(
            AccessPath::HierarchyMiss.idealized(),
            AccessPath::HierarchyMiss
        );
        assert_eq!(
            AccessPath::ServerFetch {
                false_positive: None
            }
            .idealized(),
            AccessPath::ServerFetch {
                false_positive: None
            }
        );
    }
}
