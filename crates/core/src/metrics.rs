//! Simulation metrics: everything the paper's evaluation section reports.

use crate::outcome::AccessPath;
use bh_netmodel::{Level, RemoteDistance};
use bh_simcore::stats::OnlineStats;
use bh_simcore::{ByteSize, SimTime};
use serde::{Deserialize, Serialize};

/// Counters and response-time accumulators for one simulation run.
///
/// Response times are accumulated per cost model (the same outcome stream
/// is priced under several models at once, as in Figure 8's Testbed / Min /
/// Max groups).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Total requests seen after warm-up (all classes).
    pub requests: u64,
    /// Cacheable requests measured.
    pub cacheable: u64,
    /// Uncachable requests (excluded from response-time stats, §2.2.2).
    pub uncachable: u64,
    /// Error requests (likewise excluded).
    pub errors: u64,
    /// Requests skipped during warm-up.
    pub warmup_skipped: u64,

    /// Hits in the client's own L1.
    pub l1_hits: u64,
    /// Data-hierarchy hits at L2.
    pub l2_hits: u64,
    /// Data-hierarchy hits at L3.
    pub l3_hits: u64,
    /// Hint/directory remote hits from a same-L2 peer.
    pub remote_hits_l2: u64,
    /// Hint/directory remote hits from an L3-distance peer.
    pub remote_hits_l3: u64,
    /// Requests that ended at the origin server.
    pub server_fetches: u64,
    /// Server fetches preceded by a wasted probe (false-positive hints).
    pub false_positives: u64,
    /// Server fetches where a fresh copy existed somewhere but the local
    /// hint cache did not know it (false negatives).
    pub false_negatives: u64,
    /// Remote fetches that went to a farther copy than the nearest one
    /// available (suboptimal positives — stale hints, §3.1.1).
    pub suboptimal_positives: u64,

    /// Bytes served from any cache.
    pub hit_bytes: u64,
    /// Bytes served from the client's own L1.
    pub l1_hit_bytes: u64,
    /// Bytes served from data-hierarchy L2 caches.
    pub l2_hit_bytes: u64,
    /// Bytes served from data-hierarchy L3 caches.
    pub l3_hit_bytes: u64,
    /// Bytes served by peer caches via hints/directory.
    pub remote_hit_bytes: u64,
    /// Total bytes of measured cacheable requests.
    pub total_bytes: u64,

    /// Hint updates arriving at the metadata root (Table 5, hierarchy row).
    pub root_updates: u64,
    /// Total copy add/drop events (what a centralized directory would
    /// receive — Table 5, centralized row).
    pub directory_updates: u64,

    /// Push-caching: copies pushed.
    pub pushes: u64,
    /// Push-caching: bytes pushed.
    pub pushed_bytes: u64,
    /// Push-caching: pushed copies later used by a local hit.
    pub pushed_used: u64,
    /// Push-caching: bytes of pushed copies later used.
    pub pushed_used_bytes: u64,
    /// Bytes fetched on demand (from peers or the server).
    pub demand_bytes: u64,

    /// Measured window (for per-second rates).
    pub window_start: SimTime,
    /// End of the measured window.
    pub window_end: SimTime,

    /// Per-model mean response time over measured cacheable requests.
    pub response: Vec<(String, OnlineStats)>,
}

impl Metrics {
    /// Creates empty metrics with one response accumulator per model name.
    pub fn new(model_names: &[&str]) -> Self {
        Metrics {
            response: model_names
                .iter()
                .map(|n| (n.to_string(), OnlineStats::new()))
                .collect(),
            window_start: SimTime::MAX,
            ..Metrics::default()
        }
    }

    /// Records a priced, measured cacheable request.
    pub fn record(&mut self, path: AccessPath, size: ByteSize, at: SimTime) {
        self.requests += 1;
        self.cacheable += 1;
        self.total_bytes += size.as_bytes();
        if self.window_start == SimTime::MAX {
            self.window_start = at;
        }
        self.window_end = at;
        match path {
            AccessPath::L1Hit | AccessPath::HierarchyHit(Level::L1) => {
                self.l1_hits += 1;
                self.l1_hit_bytes += size.as_bytes();
            }
            AccessPath::HierarchyHit(Level::L2) => {
                self.l2_hits += 1;
                self.l2_hit_bytes += size.as_bytes();
            }
            AccessPath::HierarchyHit(Level::L3) => {
                self.l3_hits += 1;
                self.l3_hit_bytes += size.as_bytes();
            }
            AccessPath::HierarchyMiss => self.server_fetches += 1,
            AccessPath::RemoteHit { distance } | AccessPath::DirectoryRemoteHit { distance } => {
                self.remote_hit_bytes += size.as_bytes();
                match distance {
                    RemoteDistance::SameL2 => self.remote_hits_l2 += 1,
                    RemoteDistance::SameL3 => self.remote_hits_l3 += 1,
                }
            }
            AccessPath::ServerFetch { false_positive } => {
                self.server_fetches += 1;
                if false_positive.is_some() {
                    self.false_positives += 1;
                }
            }
            AccessPath::DirectoryServerFetch => self.server_fetches += 1,
        }
        if path.is_hit() {
            self.hit_bytes += size.as_bytes();
        }
    }

    /// Adds the priced response time for model slot `model_idx`.
    ///
    /// # Panics
    ///
    /// Panics if `model_idx` is out of range.
    pub fn record_response(&mut self, model_idx: usize, millis: f64) {
        self.response[model_idx].1.record(millis);
    }

    /// Total cache hits (any level, any peer).
    pub fn hits(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.l3_hits + self.remote_hits_l2 + self.remote_hits_l3
    }

    /// Request hit ratio over measured cacheable requests.
    pub fn hit_ratio(&self) -> f64 {
        if self.cacheable == 0 {
            0.0
        } else {
            self.hits() as f64 / self.cacheable as f64
        }
    }

    /// Byte hit ratio over measured cacheable requests.
    pub fn byte_hit_ratio(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.hit_bytes as f64 / self.total_bytes as f64
        }
    }

    /// Mean response time in ms under the model named `name`.
    pub fn mean_response_ms(&self, name: &str) -> Option<f64> {
        self.response
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.mean())
    }

    /// Push efficiency: fraction of pushed bytes later used (Figure 11a).
    pub fn push_efficiency(&self) -> f64 {
        if self.pushed_bytes == 0 {
            0.0
        } else {
            self.pushed_used_bytes as f64 / self.pushed_bytes as f64
        }
    }

    /// The measured window length in seconds (0 if fewer than two records).
    pub fn window_secs(&self) -> f64 {
        if self.window_start == SimTime::MAX {
            0.0
        } else {
            self.window_end
                .saturating_since(self.window_start)
                .as_secs_f64()
        }
    }

    /// Push bandwidth in KB/s over the measured window (Figure 11b).
    pub fn push_bandwidth_kbps(&self) -> f64 {
        let w = self.window_secs();
        if w == 0.0 {
            0.0
        } else {
            self.pushed_bytes as f64 / 1024.0 / w
        }
    }

    /// Demand-fetch bandwidth in KB/s over the measured window (Figure 11b).
    pub fn demand_bandwidth_kbps(&self) -> f64 {
        let w = self.window_secs();
        if w == 0.0 {
            0.0
        } else {
            self.demand_bytes as f64 / 1024.0 / w
        }
    }

    /// Root hint-update load in updates/s (Table 5).
    pub fn root_update_rate(&self) -> f64 {
        let w = self.window_secs();
        if w == 0.0 {
            0.0
        } else {
            self.root_updates as f64 / w
        }
    }

    /// Centralized-directory update load in updates/s (Table 5).
    pub fn directory_update_rate(&self) -> f64 {
        let w = self.window_secs();
        if w == 0.0 {
            0.0
        } else {
            self.directory_updates as f64 / w
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb(n: u64) -> ByteSize {
        ByteSize::from_kb(n)
    }

    #[test]
    fn record_classifies_paths() {
        let mut m = Metrics::new(&["Testbed"]);
        let t = SimTime::from_secs(1);
        m.record(AccessPath::L1Hit, kb(10), t);
        m.record(AccessPath::HierarchyHit(Level::L2), kb(10), t);
        m.record(AccessPath::HierarchyHit(Level::L3), kb(10), t);
        m.record(AccessPath::HierarchyMiss, kb(10), t);
        m.record(
            AccessPath::RemoteHit {
                distance: RemoteDistance::SameL2,
            },
            kb(10),
            t,
        );
        m.record(
            AccessPath::RemoteHit {
                distance: RemoteDistance::SameL3,
            },
            kb(10),
            t,
        );
        m.record(
            AccessPath::ServerFetch {
                false_positive: Some(RemoteDistance::SameL2),
            },
            kb(10),
            t,
        );
        assert_eq!(m.l1_hits, 1);
        assert_eq!(m.l2_hits, 1);
        assert_eq!(m.l3_hits, 1);
        assert_eq!(m.remote_hits_l2, 1);
        assert_eq!(m.remote_hits_l3, 1);
        assert_eq!(m.server_fetches, 2);
        assert_eq!(m.false_positives, 1);
        assert_eq!(m.hits(), 5);
        assert!((m.hit_ratio() - 5.0 / 7.0).abs() < 1e-12);
        assert!((m.byte_hit_ratio() - 5.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn response_accumulators_per_model() {
        let mut m = Metrics::new(&["Min", "Max"]);
        m.record_response(0, 100.0);
        m.record_response(1, 500.0);
        m.record_response(0, 200.0);
        assert_eq!(m.mean_response_ms("Min"), Some(150.0));
        assert_eq!(m.mean_response_ms("Max"), Some(500.0));
        assert_eq!(m.mean_response_ms("Nope"), None);
    }

    #[test]
    fn push_efficiency_and_bandwidth() {
        let mut m = Metrics::new(&[]);
        m.record(AccessPath::L1Hit, kb(1), SimTime::from_secs(0));
        m.record(AccessPath::L1Hit, kb(1), SimTime::from_secs(100));
        m.pushed_bytes = 300 * 1024;
        m.pushed_used_bytes = 100 * 1024;
        m.demand_bytes = 600 * 1024;
        assert!((m.push_efficiency() - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.push_bandwidth_kbps() - 3.0).abs() < 1e-9);
        assert!((m.demand_bandwidth_kbps() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::new(&["X"]);
        assert_eq!(m.hit_ratio(), 0.0);
        assert_eq!(m.byte_hit_ratio(), 0.0);
        assert_eq!(m.window_secs(), 0.0);
        assert_eq!(m.push_efficiency(), 0.0);
        assert_eq!(m.root_update_rate(), 0.0);
    }

    #[test]
    fn update_rates_use_window() {
        let mut m = Metrics::new(&[]);
        m.record(AccessPath::L1Hit, kb(1), SimTime::from_secs(0));
        m.record(AccessPath::L1Hit, kb(1), SimTime::from_secs(10));
        m.root_updates = 19;
        m.directory_updates = 57;
        assert!((m.root_update_rate() - 1.9).abs() < 1e-9);
        assert!((m.directory_update_rate() - 5.7).abs() < 1e-9);
    }
}
