//! The Beyond Hierarchies distributed-cache strategy simulator — the
//! paper's primary contribution, reproduced end to end.
//!
//! This crate ties the substrates together into trace-driven simulations of
//! four families of cache organizations:
//!
//! * [`strategies::DataHierarchy`] — the traditional Harvest/Squid-style
//!   three-level data-cache hierarchy (the paper's baseline);
//! * [`strategies::CentralDirectory`] — a CRISP-style centralized location
//!   directory with direct cache-to-cache transfers;
//! * [`strategies::HintHierarchy`] — the paper's architecture: data stays at
//!   the leaves, a metadata hierarchy propagates compact location hints,
//!   requests consult the *local* hint cache and go directly to the nearest
//!   copy (or straight to the server — misses are never slowed down);
//! * [`push`] — push-caching layered on the hint architecture: update push,
//!   hierarchical push-on-miss (push-1 / push-half / push-all), and the
//!   ideal-push upper bound.
//!
//! [`sim::Simulator`] drives any strategy over a workload and prices each
//! request outcome under one or more [`bh_netmodel::CostModel`]s
//! simultaneously (the outcome stream is model-independent; only the
//! pricing differs, exactly as in the paper's Figure 8). The
//! [`experiments`] module packages every table and figure of the paper's
//! evaluation as a reproducible function.
//!
//! # Examples
//!
//! ```
//! use bh_core::sim::{SimConfig, Simulator};
//! use bh_core::strategies::StrategyKind;
//! use bh_netmodel::{CostModel, TestbedModel};
//! use bh_trace::WorkloadSpec;
//!
//! let spec = WorkloadSpec::small().with_requests(5_000);
//! let config = SimConfig::infinite(&spec);
//! let testbed = TestbedModel::new();
//! let models: Vec<&dyn CostModel> = vec![&testbed];
//! let report = Simulator::new(config).run(&spec, 42, StrategyKind::HintHierarchy, &models);
//! assert!(report.metrics.cacheable > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod metadata;
pub mod metrics;
pub mod outcome;
pub mod push;
pub mod sim;
pub mod space;
pub mod strategies;
pub mod topology;

pub use metrics::Metrics;
pub use outcome::AccessPath;
pub use sim::{SimConfig, SimReport, Simulator};
pub use space::SpaceConfig;
pub use topology::Topology;
