//! ICP-style multicast-query baseline (§3.1.1's contrast case).
//!
//! Instead of maintaining hint state, a cache *polls* its neighbors on
//! demand: on an L1 miss it multicasts a query to nearby caches and waits
//! for the answers before deciding where to go. The paper's argument
//! against this design is that (a) queries add latency to every lookup
//! (hints answer locally), (b) sharing is limited to the queried
//! neighborhood unless searches are staged through multiple hops, and (c)
//! misses are slowed down — the query wait is pure overhead when nobody
//! has the object. This strategy implements the one-level variant (query
//! the L2 siblings, like Squid's ICP): wider sharing would need a second
//! staged query, making misses even slower.

use super::{RequestCtx, Strategy};
use crate::outcome::AccessPath;
use crate::topology::{NodeIdx, Topology};
use bh_cache::LruCache;
use bh_netmodel::RemoteDistance;
use bh_simcore::ByteSize;

/// The multicast-query strategy. Data lives at L1s only (as in the hint
/// architecture); location is discovered by polling.
#[derive(Debug)]
pub struct IcpMulticast {
    topo: Topology,
    caches: Vec<LruCache>,
    /// Queries sent (one per polled sibling) — the overhead Table 5's
    /// hint-update counts compare against.
    queries_sent: u64,
}

impl IcpMulticast {
    /// Builds the system with `node_capacity` bytes per L1.
    pub fn new(topo: Topology, node_capacity: ByteSize) -> Self {
        IcpMulticast {
            caches: (0..topo.l1_count())
                .map(|_| LruCache::new(node_capacity))
                .collect(),
            queries_sent: 0,
            topo,
        }
    }

    /// Total ICP queries sent so far.
    pub fn queries_sent(&self) -> u64 {
        self.queries_sent
    }

    fn poll_siblings(&mut self, l1: NodeIdx, key: u64, version: u32) -> Option<NodeIdx> {
        let siblings: Vec<NodeIdx> = self.topo.l2_siblings(l1).filter(|&s| s != l1).collect();
        self.queries_sent += siblings.len() as u64;
        siblings
            .into_iter()
            .find(|&s| self.caches[s as usize].contains_fresh(key, version))
    }
}

impl Strategy for IcpMulticast {
    fn on_request(&mut self, ctx: &RequestCtx) -> AccessPath {
        // Consistency: stale local copies invalidate on access.
        if self.caches[ctx.l1 as usize]
            .get(ctx.key, ctx.version)
            .is_some()
        {
            return AccessPath::L1Hit;
        }
        // Multicast to the L2 neighborhood and wait for replies — modeled
        // as a directory-lookup-class round trip added to whatever follows
        // (the pricing happens via the Directory* paths, which carry
        // exactly that extra round trip).
        let outcome = match self.poll_siblings(ctx.l1, ctx.key, ctx.version) {
            Some(peer) => AccessPath::DirectoryRemoteHit {
                distance: self.topo.distance(ctx.l1, peer),
            },
            // Nobody nearby has it: the query wait was wasted, and the
            // request proceeds to the server (sharing beyond the
            // neighborhood is invisible to ICP).
            None => AccessPath::DirectoryServerFetch,
        };
        self.caches[ctx.l1 as usize].insert(ctx.key, ctx.size, ctx.version);
        outcome
    }

    fn name(&self) -> &'static str {
        "icp-multicast"
    }

    fn finalize(&mut self, metrics: &mut crate::metrics::Metrics) {
        metrics.directory_updates = self.queries_sent;
    }
}

/// The neighborhood a multicast reaches: kept for documentation parity
/// with the paper's discussion (one staged hop = the L2 group).
pub const MULTICAST_SCOPE: RemoteDistance = RemoteDistance::SameL2;

#[cfg(test)]
mod tests {
    use super::*;
    use bh_simcore::SimTime;
    use bh_trace::WorkloadSpec;

    fn ctx(l1: u32, key: u64, version: u32) -> RequestCtx {
        RequestCtx {
            time: SimTime::ZERO,
            client: bh_trace::ClientId(l1 * 256),
            l1,
            key,
            size: ByteSize::from_kb(10),
            version,
        }
    }

    fn system() -> IcpMulticast {
        IcpMulticast::new(Topology::from_spec(&WorkloadSpec::small()), ByteSize::MAX)
    }

    #[test]
    fn finds_copies_in_l2_neighborhood_only() {
        let mut m = system();
        assert_eq!(
            m.on_request(&ctx(0, 1, 0)),
            AccessPath::DirectoryServerFetch
        );
        // Sibling (node 1 shares L2 group 0): found by polling.
        assert_eq!(
            m.on_request(&ctx(1, 1, 0)),
            AccessPath::DirectoryRemoteHit {
                distance: RemoteDistance::SameL2
            }
        );
        // Node 2 is in L2 group 1: the copy at nodes 0/1 is invisible.
        assert_eq!(
            m.on_request(&ctx(2, 1, 0)),
            AccessPath::DirectoryServerFetch
        );
    }

    #[test]
    fn multicast_scope_is_the_l2_group() {
        assert_eq!(MULTICAST_SCOPE, RemoteDistance::SameL2);
    }

    #[test]
    fn query_overhead_counted() {
        let mut m = system();
        m.on_request(&ctx(0, 1, 0)); // polls 1 sibling
        m.on_request(&ctx(0, 1, 0)); // local hit: no poll
        m.on_request(&ctx(2, 2, 0)); // polls 1 sibling
        assert_eq!(m.queries_sent(), 2);
    }

    #[test]
    fn version_bump_invalidates() {
        let mut m = system();
        m.on_request(&ctx(0, 1, 0));
        m.on_request(&ctx(1, 1, 0));
        // Version bumps: both copies stale; sibling poll must not return a
        // stale copy.
        assert_eq!(
            m.on_request(&ctx(1, 1, 2)),
            AccessPath::DirectoryServerFetch
        );
    }

    #[test]
    fn multicast_never_beats_hints_on_far_sharing() {
        // Cross-L2 reuse is a guaranteed miss for ICP but a remote hit for
        // hints: run both on the same stream and compare remote hits.
        use crate::strategies::{HintConfig, HintHierarchy};
        let spec = WorkloadSpec::small().with_requests(5_000);
        let topo = Topology::from_spec(&spec);
        let mut icp = IcpMulticast::new(topo.clone(), ByteSize::MAX);
        let mut hints = HintHierarchy::new(topo, HintConfig::default(), 3);
        let (mut icp_remote, mut hint_remote) = (0u64, 0u64);
        for r in bh_trace::TraceGenerator::new(&spec, 3) {
            if !r.is_cacheable() {
                continue;
            }
            let c = RequestCtx {
                time: r.time,
                client: r.client,
                l1: spec.l1_group_of(r.client),
                key: r.object.key(),
                size: r.size,
                version: r.version,
            };
            if matches!(icp.on_request(&c), AccessPath::DirectoryRemoteHit { .. }) {
                icp_remote += 1;
            }
            if matches!(hints.on_request(&c), AccessPath::RemoteHit { .. }) {
                hint_remote += 1;
            }
        }
        assert!(
            hint_remote > icp_remote,
            "hints ({hint_remote}) must find more remote copies than ICP ({icp_remote})"
        );
    }
}
