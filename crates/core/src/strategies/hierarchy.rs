//! The traditional three-level data-cache hierarchy (§2.1) — the baseline.
//!
//! Requests climb L1 → L2 → L3 → server; data flows back down the same
//! path, and **every cache along the path stores a copy** (hierarchical
//! double caching). Hits at high levels pay store-and-forward costs for
//! every traversed level; misses pay the full traversal before even
//! reaching the server — the two behaviours the paper's design principles
//! single out.

use super::{RequestCtx, Strategy};
use crate::outcome::AccessPath;
use crate::topology::Topology;
use bh_cache::LruCache;
use bh_netmodel::Level;
use bh_simcore::ByteSize;

/// The Harvest/Squid-style data hierarchy.
#[derive(Debug)]
pub struct DataHierarchy {
    topo: Topology,
    l1: Vec<LruCache>,
    l2: Vec<LruCache>,
    l3: LruCache,
}

impl DataHierarchy {
    /// Builds the hierarchy with `node_capacity` bytes at every node
    /// (the paper's space-constrained runs give each node 5 GB).
    pub fn new(topo: Topology, node_capacity: ByteSize) -> Self {
        DataHierarchy {
            l1: (0..topo.l1_count())
                .map(|_| LruCache::new(node_capacity))
                .collect(),
            l2: (0..topo.l2_count())
                .map(|_| LruCache::new(node_capacity))
                .collect(),
            l3: LruCache::new(node_capacity),
            topo,
        }
    }

    /// Read access to an L1 cache (for tests and inspection).
    pub fn l1_cache(&self, idx: usize) -> &LruCache {
        &self.l1[idx]
    }

    /// Read access to the root cache.
    pub fn l3_cache(&self) -> &LruCache {
        &self.l3
    }
}

impl Strategy for DataHierarchy {
    fn on_request(&mut self, ctx: &RequestCtx) -> AccessPath {
        let l1 = ctx.l1 as usize;
        let l2 = self.topo.l2_of(ctx.l1) as usize;

        if self.l1[l1].get(ctx.key, ctx.version).is_some() {
            return AccessPath::L1Hit;
        }
        if self.l2[l2].get(ctx.key, ctx.version).is_some() {
            // Data flows down; the L1 caches a copy.
            self.l1[l1].insert(ctx.key, ctx.size, ctx.version);
            return AccessPath::HierarchyHit(Level::L2);
        }
        if self.l3.get(ctx.key, ctx.version).is_some() {
            self.l2[l2].insert(ctx.key, ctx.size, ctx.version);
            self.l1[l1].insert(ctx.key, ctx.size, ctx.version);
            return AccessPath::HierarchyHit(Level::L3);
        }
        // Full miss: fetched through the hierarchy from the server, cached
        // at every level on the way down.
        self.l3.insert(ctx.key, ctx.size, ctx.version);
        self.l2[l2].insert(ctx.key, ctx.size, ctx.version);
        self.l1[l1].insert(ctx.key, ctx.size, ctx.version);
        AccessPath::HierarchyMiss
    }

    fn name(&self) -> &'static str {
        "data-hierarchy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_simcore::SimTime;
    use bh_trace::WorkloadSpec;

    fn ctx(l1: u32, key: u64, version: u32) -> RequestCtx {
        RequestCtx {
            time: SimTime::ZERO,
            client: bh_trace::ClientId(l1 * 256),
            l1,
            key,
            size: ByteSize::from_kb(10),
            version,
        }
    }

    fn hierarchy() -> DataHierarchy {
        // small(): 4 L1 groups, 2 L1s per L2.
        DataHierarchy::new(Topology::from_spec(&WorkloadSpec::small()), ByteSize::MAX)
    }

    #[test]
    fn miss_then_progressively_closer_hits() {
        let mut h = hierarchy();
        // First access anywhere: full miss.
        assert_eq!(h.on_request(&ctx(0, 42, 0)), AccessPath::HierarchyMiss);
        // Same node again: L1 hit.
        assert_eq!(h.on_request(&ctx(0, 42, 0)), AccessPath::L1Hit);
        // Sibling under the same L2: L2 hit.
        assert_eq!(
            h.on_request(&ctx(1, 42, 0)),
            AccessPath::HierarchyHit(Level::L2)
        );
        // And now that sibling has it locally.
        assert_eq!(h.on_request(&ctx(1, 42, 0)), AccessPath::L1Hit);
        // Node in a different L2 group: L3 hit.
        assert_eq!(
            h.on_request(&ctx(2, 42, 0)),
            AccessPath::HierarchyHit(Level::L3)
        );
    }

    #[test]
    fn version_bump_invalidates_whole_path() {
        let mut h = hierarchy();
        h.on_request(&ctx(0, 7, 0));
        assert_eq!(h.on_request(&ctx(0, 7, 0)), AccessPath::L1Hit);
        // The object was modified: every cached copy is stale.
        assert_eq!(h.on_request(&ctx(0, 7, 1)), AccessPath::HierarchyMiss);
        assert_eq!(h.on_request(&ctx(0, 7, 1)), AccessPath::L1Hit);
    }

    #[test]
    fn copies_at_every_level_consume_space() {
        let mut h = hierarchy();
        h.on_request(&ctx(0, 1, 0));
        assert_eq!(h.l1_cache(0).len(), 1);
        assert_eq!(h.l3_cache().len(), 1);
    }

    #[test]
    fn capacity_pressure_evicts_lru_at_l1() {
        let topo = Topology::from_spec(&WorkloadSpec::small());
        let mut h = DataHierarchy::new(topo, ByteSize::from_kb(20));
        h.on_request(&ctx(0, 1, 0));
        h.on_request(&ctx(0, 2, 0));
        h.on_request(&ctx(0, 3, 0)); // evicts 1 from L1 (and L2/L3 similarly)
        assert_eq!(h.l1_cache(0).len(), 2);
        assert!(h.l1_cache(0).peek(1).is_none());
    }
}
